//! Soundness differential for property-licensed rewrites.
//!
//! The property pass (keys, functional dependencies, duplicate-freeness)
//! licenses rewrites that are *only* valid when its inferences are sound:
//! δ-elimination over provably duplicate-free input, keyed-γ
//! simplification. This test generates random plans over relations with
//! random declared keys — instances are forced to *satisfy* the declared
//! keys, exactly as the enforcement path guarantees for live data — and
//! checks that the key-aware optimizer's output computes the same
//! multi-set as the canonical plan on every engine {reference, physical,
//! parallel} × partition count {1, 3}.
//!
//! Alongside the random sweep, a pinned regression holds the line on the
//! paper's Theorem 3.3: δ does **not** distribute over ⊎ except for
//! disjoint operands, so a union of two keyed (hence duplicate-free)
//! relations is *not* duplicate-free and the δ above it must survive
//! optimization.

use std::collections::BTreeSet;
use std::sync::Arc;

use mera::analyze::KeyEnv;
use mera::core::prelude::*;
use mera::eval::Engine;
use mera::expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use mera::opt::Optimizer;
use proptest::prelude::*;

/// Attribute sets a relation may declare as its key (1-based, over the
/// two-column schemas below). Index 0 means "no key".
const KEY_CHOICES: [&[usize]; 4] = [&[], &[1], &[2], &[1, 2]];

/// Builds a two-relation database where each relation satisfies its
/// chosen key: rows colliding on the key columns keep only the first,
/// and keyed relations get multiplicity 1 (the bag-model key bound).
fn build_db(rows: &[(i64, i64, u64)], key_r: &[usize], key_s: &[usize]) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let r_rows: Vec<(Tuple, u64)> = rows.iter().map(|&(k, v, m)| (tuple![k, v], m)).collect();
    let s_rows: Vec<(Tuple, u64)> = rows
        .iter()
        .rev()
        .map(|&(k, v, m)| (tuple![v % 4, k], m.min(3)))
        .collect();
    for (name, raw, key) in [("r", r_rows, key_r), ("s", s_rows, key_s)] {
        let rel_schema = Arc::clone(db.schema().get(name).expect("declared"));
        let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
        let counted = raw.into_iter().filter_map(|(t, m)| {
            if key.is_empty() {
                return Some((t, m));
            }
            let point: Vec<Value> = key.iter().map(|&a| t.values()[a - 1].clone()).collect();
            seen.insert(point).then_some((t, 1))
        });
        db.replace(
            name,
            Relation::from_counted(rel_schema, counted).expect("typed"),
        )
        .expect("replace");
    }
    db
}

/// Random plan shapes biased toward the operators the property pass
/// reasons about: δ, γ, joins and unions over the (possibly) keyed scans.
fn build_expr(shape: u8, c: i64) -> RelExpr {
    let r = RelExpr::scan("r");
    let s = RelExpr::scan("s");
    match shape % 10 {
        0 => r.distinct(),
        1 => r
            .select(ScalarExpr::attr(1).eq(ScalarExpr::int(c)))
            .distinct(),
        2 => r.project(&[1]).distinct(),
        3 => r
            .join(s, ScalarExpr::attr(1).eq(ScalarExpr::attr(3)))
            .distinct(),
        4 => r.union(s).distinct(),
        5 => r.group_by(&[1], Aggregate::Sum, 2),
        6 => r
            .select(ScalarExpr::attr(2).cmp(CmpOp::Ge, ScalarExpr::int(c)))
            .group_by(&[1, 2], Aggregate::Cnt, 1),
        7 => r.difference(s).distinct(),
        8 => r
            .join(s, ScalarExpr::attr(2).eq(ScalarExpr::attr(3)))
            .project(&[1, 3])
            .distinct()
            .group_by(&[1], Aggregate::Cnt, 2),
        _ => r.intersect(s).distinct(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Optimized ≡ canonical on key-satisfying instances, across engines
    /// and partition counts.
    #[test]
    fn key_licensed_rewrites_preserve_semantics(
        rows in proptest::collection::vec(((0i64..5), (0i64..8), (1u64..4)), 0..10),
        key_r in 0usize..4,
        key_s in 0usize..4,
        shape in 0u8..10,
        c in 0i64..5,
    ) {
        let db = build_db(&rows, KEY_CHOICES[key_r], KEY_CHOICES[key_s]);
        let mut env = KeyEnv::new();
        for (name, key) in [("r", KEY_CHOICES[key_r]), ("s", KEY_CHOICES[key_s])] {
            if !key.is_empty() {
                env.declare(name, key.to_vec());
            }
        }
        let e = build_expr(shape, c);
        let optimized = Optimizer::standard()
            .with_keys(env)
            .optimize(&e, db.schema())
            .expect("optimizes")
            .expr;

        let canonical = Engine::reference().run(&e, &db).expect("canonical evaluates");
        for (engine_name, engine) in [
            ("reference", Engine::reference()),
            ("physical", Engine::physical()),
            ("parallel(1)", Engine::parallel().with_partitions(1)),
            ("parallel(3)", Engine::parallel().with_partitions(3)),
        ] {
            let got = engine.run(&optimized, &db).expect("optimized evaluates");
            prop_assert_eq!(
                &got, &canonical,
                "{} diverges on {} optimized to {}", engine_name, e, optimized
            );
        }
    }
}

/// Theorem 3.3's forbidden direction, pinned: keys on both operands do
/// not make their union duplicate-free, so `δ(r ⊎ s)` must keep its δ —
/// and the engines must still report the overlap collapsed to 1.
#[test]
fn distinct_over_union_of_keyed_relations_is_not_eliminated() {
    // r and s overlap at (1, 1): the union holds it with multiplicity 2
    let rows = [(1, 1, 1), (2, 3, 1)];
    let db = build_db(&rows, &[1], &[1, 2]);
    // make the overlap real regardless of the s-side derivation
    let mut db = db;
    let s_schema = Arc::clone(db.schema().get("s").expect("declared"));
    db.replace(
        "s",
        Relation::from_counted(s_schema, [(tuple![1i64, 1i64], 1), (tuple![9i64, 9i64], 1)])
            .expect("typed"),
    )
    .expect("replace");

    let mut env = KeyEnv::new();
    env.declare("r", vec![1]);
    env.declare("s", vec![1]);
    let e = RelExpr::scan("r").union(RelExpr::scan("s")).distinct();
    let optimized = Optimizer::standard()
        .with_keys(env)
        .optimize(&e, db.schema())
        .expect("optimizes")
        .expr;

    fn has_distinct(e: &RelExpr) -> bool {
        matches!(e, RelExpr::Distinct(_)) || e.children().iter().any(|c| has_distinct(c))
    }
    assert!(
        has_distinct(&optimized),
        "δ over ⊎ of overlapping keyed relations must survive (Theorem 3.3), got {optimized}"
    );

    let result = Engine::reference().run(&optimized, &db).expect("evaluates");
    let overlap = result
        .iter()
        .find(|(t, _)| t.values() == [Value::Int(1), Value::Int(1)])
        .map(|(_, m)| m);
    assert_eq!(overlap, Some(1), "δ must collapse the overlap to 1");
}

/// The licensed direction, for contrast: δ over a *single* keyed scan is
/// eliminated, and the plans still agree.
#[test]
fn distinct_over_single_keyed_scan_is_eliminated() {
    let rows = [(1, 1, 1), (2, 3, 1), (4, 0, 1)];
    let db = build_db(&rows, &[1], &[]);
    let mut env = KeyEnv::new();
    env.declare("r", vec![1]);
    let e = RelExpr::scan("r").distinct();
    let optimized = Optimizer::standard()
        .with_keys(env)
        .optimize(&e, db.schema())
        .expect("optimizes")
        .expr;
    assert!(
        !matches!(optimized, RelExpr::Distinct(_)),
        "keyed scan licenses δ-elimination, got {optimized}"
    );
    assert_eq!(
        Engine::reference().run(&optimized, &db).expect("runs"),
        Engine::reference().run(&e, &db).expect("runs"),
    );
}
