//! Golden-file tests for diagnostic rendering.
//!
//! Each case builds an intentionally bad (or suspicious) program over the
//! paper's beer/brewery schema, runs the program analyzer, and compares
//! the *exact* rendered output against `tests/golden/<name>.txt`. The
//! rendering is part of the analyzer's contract — codes are stable and
//! messages are deterministic — so any change here must be deliberate.
//!
//! To regenerate a golden file after an intentional change, run with
//! `MERA_BLESS=1` and commit the rewritten files.

use mera::analyze::render;
use mera::core::prelude::*;
use mera::expr::{Aggregate, RelExpr, ScalarExpr};
use mera::txn::{Program, Statement};

fn beer_db() -> Database {
    Database::new(mera::beer_schema())
}

fn check(name: &str, golden: &str, program: &Program) {
    let db = beer_db();
    let diags = mera::txn::exec::analyze_program(&db, program);
    let actual = render(&diags);
    if std::env::var_os("MERA_BLESS").is_some() {
        let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    assert_eq!(
        actual, golden,
        "\n-- rendered diagnostics for `{name}` diverge from golden file --\n\
         actual:\n{actual}\n"
    );
}

/// Compares an already-rendered diagnostic string against its golden
/// file — for diagnostics produced outside the program analyzer (the
/// key-constraint path reports at declaration and commit time).
fn check_rendered(name: &str, golden: &str, actual: &str) {
    if std::env::var_os("MERA_BLESS").is_some() {
        let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    assert_eq!(
        actual, golden,
        "\n-- rendered diagnostics for `{name}` diverge from golden file --\n\
         actual:\n{actual}\n"
    );
}

/// A manager over the beer schema with `key beer(name)` declared.
fn keyed_beer_manager() -> mera::txn::TransactionManager {
    let mgr = mera::txn::TransactionManager::new(mera::beer_schema());
    let p = Program::single(Statement::insert(
        "beer",
        RelExpr::values(
            Relation::from_tuples(
                std::sync::Arc::new(Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ])),
                vec![tuple!["Grolsch", "Grolsche", 5.0]],
            )
            .expect("typed literal"),
        ),
    ));
    let (outcome, _) = mgr.execute(&p).expect("seed insert");
    assert!(outcome.is_committed());
    mgr.declare_key("beer", &[1]).expect("key declares");
    mgr
}

#[test]
fn key_violation_at_commit() {
    // inserting a second 'Grolsch' exceeds the per-key-point bound; the
    // commit aborts with the E0401 diagnostic before anything installs
    let mgr = keyed_beer_manager();
    let p = Program::single(Statement::insert(
        "beer",
        RelExpr::values(
            Relation::from_tuples(
                std::sync::Arc::new(Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ])),
                vec![tuple!["Grolsch", "Grolsche", 6.5]],
            )
            .expect("typed literal"),
        ),
    ));
    let (outcome, _) = mgr.execute(&p).expect("transaction runs");
    let mera::txn::Outcome::Aborted(mera::txn::AbortReason::KeyViolation(diag)) = outcome else {
        panic!("violating insert must abort on the key, got {outcome:?}");
    };
    check_rendered(
        "key_violation_at_commit",
        include_str!("golden/key_violation_at_commit.txt"),
        &render(&[diag]),
    );
}

#[test]
fn key_on_view_is_rejected() {
    // keys constrain base relations; a materialized view's contents are
    // derived, so declaring a key on one is refused with E0402
    let mgr = keyed_beer_manager();
    mgr.create_view(
        "strong",
        RelExpr::scan("beer").select(ScalarExpr::bool(true)),
    )
    .expect("view defines");
    let err = mgr
        .declare_key("strong", &[1])
        .expect_err("key on a view must be rejected");
    let mera::txn::DeclareKeyError::Rejected(diag) = err else {
        panic!("expected a diagnostic rejection, got {err:?}");
    };
    check_rendered(
        "key_on_view",
        include_str!("golden/key_on_view.txt"),
        &render(&[diag]),
    );
}

#[test]
fn duplicate_key_declaration_is_rejected() {
    // the same attribute set declared twice: E0403 names the extant key
    let mgr = keyed_beer_manager();
    let err = mgr
        .declare_key("beer", &[1])
        .expect_err("re-declaration must be rejected");
    let mera::txn::DeclareKeyError::Rejected(diag) = err else {
        panic!("expected a diagnostic rejection, got {err:?}");
    };
    check_rendered(
        "duplicate_key_declaration",
        include_str!("golden/duplicate_key_declaration.txt"),
        &render(&[diag]),
    );
}

#[test]
fn unresolved_attribute() {
    // π_%5 over arity-3 beer
    let p = Program::single(Statement::query(RelExpr::scan("beer").project(&[5])));
    check(
        "unresolved_attribute",
        include_str!("golden/unresolved_attribute.txt"),
        &p,
    );
}

#[test]
fn unknown_relation() {
    let p = Program::new()
        .then(Statement::query(RelExpr::scan("nosuch")))
        .then(Statement::insert("alehouse", RelExpr::scan("beer")));
    check(
        "unknown_relation",
        include_str!("golden/unknown_relation.txt"),
        &p,
    );
}

#[test]
fn type_mismatched_extended_projection() {
    // name * 2 (str × int) and alcperc + name (real + str) are both
    // ill-typed; every clash is reported, not just the first
    let p = Program::single(Statement::query(RelExpr::scan("beer").ext_project(vec![
        ScalarExpr::attr(1).mul(ScalarExpr::int(2)),
        ScalarExpr::attr(3).add(ScalarExpr::attr(1)),
    ])));
    check(
        "type_mismatched_extended_projection",
        include_str!("golden/type_mismatched_extended_projection.txt"),
        &p,
    );
}

#[test]
fn incompatible_union_operands() {
    // beer (str, str, real) ⊎ brewery (str, str, str)
    let p = Program::single(Statement::query(
        RelExpr::scan("beer").union(RelExpr::scan("brewery")),
    ));
    check(
        "incompatible_union_operands",
        include_str!("golden/incompatible_union_operands.txt"),
        &p,
    );
}

#[test]
fn partial_aggregates() {
    // stmt 0: AVG over beer, empty *right now* — E0102 against live state
    // stmt 1: MIN over a σ_false, provably empty under any state — E0102
    // stmt 2: insert a literal, then AVG is provably safe — no diagnostic
    let p = Program::new()
        .then(Statement::query(RelExpr::scan("beer").group_by(
            &[],
            Aggregate::Avg,
            3,
        )))
        .then(Statement::query(
            RelExpr::scan("beer")
                .select(ScalarExpr::bool(false))
                .group_by(&[], Aggregate::Min, 3),
        ))
        .then(Statement::insert(
            "brewery",
            RelExpr::values(
                Relation::from_tuples(
                    std::sync::Arc::new(Schema::named(&[
                        ("name", DataType::Str),
                        ("city", DataType::Str),
                        ("country", DataType::Str),
                    ])),
                    vec![tuple!["StJames", "Dublin", "IE"]],
                )
                .expect("typed literal"),
            ),
        ))
        .then(Statement::query(RelExpr::scan("brewery").group_by(
            &[],
            Aggregate::Max,
            2,
        )));
    check(
        "partial_aggregates",
        include_str!("golden/partial_aggregates.txt"),
        &p,
    );
}

#[test]
fn update_changes_schema() {
    // dropping to a single attribute violates structure preservation
    let p = Program::single(Statement::update(
        "beer",
        RelExpr::scan("beer"),
        vec![ScalarExpr::attr(1)],
    ));
    check(
        "update_changes_schema",
        include_str!("golden/update_changes_schema.txt"),
        &p,
    );
}

#[test]
fn temporaries_and_shadowing() {
    // stmt 0: shadowing the database relation `beer` — E0006
    // stmt 1: a legal temporary
    // stmt 2: DML targeting the temporary — E0002 with a note
    let p = Program::new()
        .then(Statement::assign("beer", RelExpr::scan("brewery")))
        .then(Statement::assign("strong", RelExpr::scan("beer")))
        .then(Statement::delete("strong", RelExpr::scan("strong")));
    check(
        "temporaries_and_shadowing",
        include_str!("golden/temporaries_and_shadowing.txt"),
        &p,
    );
}
