//! Experiment E9 — the §4.3 atomicity property under systematic fault
//! injection: for a program of n statements and every fault point
//! `0..=n`, the resulting state is either the full effect (`T(D) =
//! D_{t.n}`) or the original (`T(D) = D`) — never anything in between.

use std::sync::Arc;

use mera::core::prelude::*;
use mera::expr::{Aggregate, RelExpr, ScalarExpr};
use mera::txn::{Outcome, Program, Statement, TransactionManager};
use proptest::prelude::*;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "acct",
            Schema::named(&[("owner", DataType::Str), ("amount", DataType::Int)]),
        )
        .expect("fresh")
}

fn deposit(owner: &str, amount: i64) -> Statement {
    let s = Arc::new(Schema::named(&[
        ("owner", DataType::Str),
        ("amount", DataType::Int),
    ]));
    let rel = Relation::from_tuples(s, vec![tuple![owner, amount]]).expect("typed");
    Statement::insert("acct", RelExpr::values(rel))
}

/// A program built from flat selectors: deposits, deletes, updates,
/// assignments and queries in arbitrary order.
fn build_program(ops: &[(u8, i64)]) -> Program {
    let mut p = Program::new();
    for (i, &(op, v)) in ops.iter().enumerate() {
        let stmt = match op % 5 {
            0 => deposit("a", v),
            1 => deposit("b", v),
            2 => Statement::delete(
                "acct",
                RelExpr::scan("acct")
                    .select(ScalarExpr::attr(2).cmp(mera::expr::CmpOp::Lt, ScalarExpr::int(v))),
            ),
            3 => Statement::update(
                "acct",
                RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::str("a"))),
                vec![
                    ScalarExpr::attr(1),
                    ScalarExpr::attr(2).add(ScalarExpr::int(v)),
                ],
            ),
            _ => Statement::assign(
                format!("t{i}"),
                RelExpr::scan("acct").group_by(&[1], Aggregate::Cnt, 1),
            ),
        };
        p = p.then(stmt);
    }
    p
}

proptest! {
    /// All-or-nothing: for every fault point, the database equals either
    /// the pre-state or the full post-state.
    #[test]
    fn atomicity_under_fault_injection(
        ops in proptest::collection::vec((0u8..5, 0i64..10), 1..8),
        seed in proptest::collection::vec((0u8..2, 1i64..10), 0..4),
    ) {
        let program = build_program(&ops);
        // seed some initial data through a committed transaction
        let mgr = TransactionManager::new(schema());
        let mut seed_p = Program::new();
        for &(who, amount) in &seed {
            seed_p = seed_p.then(deposit(if who == 0 { "a" } else { "b" }, amount));
        }
        if !seed_p.is_empty() {
            let (o, _) = mgr.execute(&seed_p).expect("seed commits");
            prop_assert!(o.is_committed());
        }
        let pre = mgr.snapshot();

        // the full effect, computed on an independent manager
        let oracle = TransactionManager::new(schema());
        if !seed_p.is_empty() {
            oracle.execute(&seed_p).expect("seed commits");
        }
        let (oracle_outcome, _) = oracle.execute(&program).expect("runs");
        let full = oracle.snapshot();

        for fault_at in 0..=program.len() {
            // a fresh manager in the pre-state each time
            let m = TransactionManager::new(schema());
            if !seed_p.is_empty() {
                m.execute(&seed_p).expect("seed commits");
            }
            let (outcome, transition) = if fault_at < program.len() {
                m.execute_with_fault(&program, fault_at).expect("runs")
            } else {
                m.execute(&program).expect("runs")
            };
            let acct = m.snapshot().relation("acct").expect("present").clone();
            match outcome {
                Outcome::Aborted(_) => {
                    prop_assert_eq!(
                        &acct,
                        pre.relation("acct").expect("present"),
                        "aborted at {} but state is neither pre nor post",
                        fault_at
                    );
                    prop_assert!(transition.is_identity());
                }
                Outcome::Committed(_) => {
                    prop_assert!(oracle_outcome.is_committed());
                    prop_assert_eq!(&acct, full.relation("acct").expect("present"));
                    prop_assert_eq!(fault_at, program.len(), "fault must abort");
                }
            }
        }
    }

    /// Durability: replaying the redo log always reconstructs the exact
    /// relation contents, whatever mix of commits and aborts happened.
    #[test]
    fn recovery_reconstructs_state(
        txns in proptest::collection::vec(
            (proptest::collection::vec((0u8..5, 0i64..10), 1..5), proptest::bool::ANY),
            0..6
        ),
    ) {
        let mgr = TransactionManager::new(schema());
        for (ops, inject_fault) in &txns {
            let program = build_program(ops);
            if *inject_fault && !program.is_empty() {
                let _ = mgr.execute_with_fault(&program, 0).expect("runs");
            } else {
                let _ = mgr.execute(&program).expect("runs");
            }
        }
        let recovered = TransactionManager::recover(schema(), &mgr.log()).expect("recovers");
        let replayed = recovered.snapshot();
        let live = mgr.snapshot();
        prop_assert_eq!(
            replayed.relation("acct").expect("present"),
            live.relation("acct").expect("present")
        );
    }
}

/// Isolation by serial execution: concurrent transfer transactions keep
/// the invariant Σ amounts constant.
#[test]
fn serial_isolation_preserves_invariants() {
    let mgr = Arc::new(TransactionManager::new(schema()));
    // seed: two accounts with 1000 each
    let (o, _) = mgr
        .execute(
            &Program::new()
                .then(deposit("a", 1000))
                .then(deposit("b", 1000)),
        )
        .expect("seed");
    assert!(o.is_committed());

    let transfer = |from: &str, to: &str, amount: i64| -> Program {
        // delete the old rows, insert adjusted ones — a classic
        // read-modify-write expressed in the algebra
        Program::new()
            .then(Statement::assign(
                "old_from",
                RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::str(from))),
            ))
            .then(Statement::update(
                "acct",
                RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::str(from))),
                vec![
                    ScalarExpr::attr(1),
                    ScalarExpr::attr(2).sub(ScalarExpr::int(amount)),
                ],
            ))
            .then(Statement::update(
                "acct",
                RelExpr::scan("acct").select(ScalarExpr::attr(1).eq(ScalarExpr::str(to))),
                vec![
                    ScalarExpr::attr(1),
                    ScalarExpr::attr(2).add(ScalarExpr::int(amount)),
                ],
            ))
    };

    let threads: Vec<_> = (0..6)
        .map(|i| {
            let mgr = Arc::clone(&mgr);
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let p = if i % 2 == 0 {
                        transfer("a", "b", 7)
                    } else {
                        transfer("b", "a", 5)
                    };
                    mgr.execute(&p).expect("commits");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no panics");
    }

    // Σ amounts is invariant under transfers
    let snapshot = mgr.snapshot();
    let acct = snapshot.relation("acct").expect("present");
    let total: i64 = acct
        .iter()
        .map(|(t, m)| t.attr(2).expect("amount").as_int().expect("int") * m as i64)
        .sum();
    assert_eq!(total, 2000);
}
