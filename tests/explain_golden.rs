//! Golden-file tests for EXPLAIN plan rendering.
//!
//! Each case loads a small deterministic database through one of the
//! front doors (XRA session, transaction manager, SQL), renders a plan
//! with `explain`, and compares the *exact* output against
//! `tests/golden/<name>.txt`. The rendering is part of the planner's
//! observability contract: the join order, the access-path labels and the
//! estimate column are what a user debugging a slow plan reads, so any
//! change here must be deliberate.
//!
//! To regenerate a golden file after an intentional change, run with
//! `MERA_BLESS=1` and commit the rewritten files.

use mera::lang::{RunResult, Session};
use mera::sql::{explain_sql, run_sql};
use mera::txn::TransactionManager;

fn check(name: &str, golden: &str, actual: &str) {
    if std::env::var_os("MERA_BLESS").is_some() {
        let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    assert_eq!(
        actual, golden,
        "\n-- rendered plan for `{name}` diverges from golden file --\n\
         actual:\n{actual}\n"
    );
}

/// A session with a star-ish workload: a fact table (`orders`) and two
/// small dimension tables, statistics maintained by the inserts, and
/// indexes on the dimension keys.
fn loaded_session() -> Session {
    let mut session = Session::new();
    let results = session
        .run_script(
            "relation orders (cust: int, item: int, amount: int);\n\
             relation customers (id: int, region: str);\n\
             relation items (id: int, kind: str);\n\
             insert(customers, values (int, str) {(1, 'north'), (2, 'south')});\n\
             insert(items, values (int, str) {(1, 'ale'), (2, 'lager'), (3, 'stout')});\n\
             insert(orders, values (int, int, int) {\n\
               (1, 1, 10), (1, 2, 5), (1, 3, 1), (2, 1, 7),\n\
               (2, 2, 9), (2, 3, 20), (1, 1, 2), (2, 1, 4)\n\
             });",
        )
        .expect("script runs");
    assert!(results.iter().all(|r| matches!(r, RunResult::Committed(_))));
    session.create_index("customers", &[1]).expect("index");
    session.create_index("items", &[1]).expect("index");
    session.create_index("orders", &[1]).expect("index");
    session
}

#[test]
fn point_select_takes_index_lookup() {
    let session = loaded_session();
    let actual = session
        .explain("select[%1 = 2](customers)")
        .expect("explains");
    check(
        "explain_point_select",
        include_str!("golden/explain_point_select.txt"),
        &actual,
    );
}

#[test]
fn unindexed_select_scans_and_filters() {
    let session = loaded_session();
    let actual = session.explain("select[%3 > 5](orders)").expect("explains");
    check(
        "explain_scan_filter",
        include_str!("golden/explain_scan_filter.txt"),
        &actual,
    );
}

#[test]
fn star_join_orders_and_access_paths() {
    let session = loaded_session();
    // written dimension-first (a deliberately bad order); the cost model
    // reorders around the selective fact-side restriction and probes the
    // dimension indexes
    let actual = session
        .explain(
            "join[(%1 = %6)](join[(%2 = %4)](\
               select[%3 > 5](orders), items), customers)",
        )
        .expect("explains");
    check(
        "explain_star_join",
        include_str!("golden/explain_star_join.txt"),
        &actual,
    );
}

#[test]
fn small_probe_side_takes_index_nested_loop() {
    let session = loaded_session();
    // two customer rows probing the indexed eight-row fact table: the
    // cost model skips the hash build and hints the index path
    let actual = session
        .explain("join[(%1 = %3)](customers, orders)")
        .expect("explains");
    check(
        "explain_index_nl_join",
        include_str!("golden/explain_index_nl_join.txt"),
        &actual,
    );
}

#[test]
fn sql_front_door_explains_joins() {
    let mgr = TransactionManager::new(mera::beer_schema());
    run_sql(
        &mgr,
        "INSERT INTO beer VALUES \
         ('Grolsch', 'Grolsche', 5.0), \
         ('Heineken', 'Heineken', 5.0), \
         ('Amstel', 'Heineken', 5.1), \
         ('Bock', 'Grolsche', 6.5), \
         ('Guinness', 'StJames', 4.2)",
    )
    .expect("inserts");
    run_sql(
        &mgr,
        "INSERT INTO brewery VALUES \
         ('Grolsche', 'Enschede', 'NL'), \
         ('Heineken', 'Amsterdam', 'NL'), \
         ('StJames', 'Dublin', 'IE')",
    )
    .expect("inserts");
    mgr.create_index("brewery", &[1]).expect("index");
    let actual = explain_sql(
        &mgr,
        "SELECT country, AVG(alcperc) FROM beer, brewery \
         WHERE beer.brewery = brewery.name GROUP BY country",
    )
    .expect("explains");
    check(
        "explain_sql_join",
        include_str!("golden/explain_sql_join.txt"),
        &actual,
    );
}

#[test]
fn declared_key_annotates_plan_and_licenses_distinct_elimination() {
    // `key customers(id)` makes the scan provably duplicate-free; the
    // plan section shows the `[key: …, set]` tag at every node that
    // preserves it, and the δ written in the query is gone from the tree
    let mut session = loaded_session();
    session
        .run_script("key customers (id);")
        .expect("key declaration");
    let actual = session
        .explain("unique(select[%2 = 'north'](customers))")
        .expect("explains");
    assert!(
        !actual.contains("distinct"),
        "keyed input must license δ-elimination:\n{actual}"
    );
    check(
        "explain_keyed_distinct",
        include_str!("golden/explain_keyed_distinct.txt"),
        &actual,
    );
}

#[test]
fn sql_primary_key_annotates_plan_and_absorbs_distinct() {
    // the SQL front door's PRIMARY KEY feeds the same property pass: the
    // DISTINCT in the query is provably redundant and the rendered plan
    // carries the key annotation instead of a unique operator
    let mgr = TransactionManager::new(mera::core::prelude::DatabaseSchema::new());
    run_sql(
        &mgr,
        "CREATE TABLE member (name STR, town STR, PRIMARY KEY (name))",
    )
    .expect("create table");
    run_sql(
        &mgr,
        "INSERT INTO member VALUES \
         ('dick', 'enschede'), ('peter', 'hengelo'), ('maurice', 'enschede')",
    )
    .expect("inserts");
    let actual = explain_sql(&mgr, "SELECT DISTINCT name, town FROM member").expect("explains");
    assert!(
        !actual.contains("distinct"),
        "PRIMARY KEY must absorb DISTINCT:\n{actual}"
    );
    check(
        "explain_sql_primary_key",
        include_str!("golden/explain_sql_primary_key.txt"),
        &actual,
    );
}

#[test]
fn estimates_stay_within_2x_of_actuals_on_the_star_schema() {
    // the acceptance bound from the statistics design: on this workload
    // (exact counters, unsaturated sketches) estimates land within 2× of
    // the actual cardinalities at every operator the tree reports
    let session = loaded_session();
    let out = session
        .explain("join[(%1 = %4)](orders, customers)")
        .expect("explains");
    let (mut est_out, mut actual_out) = (None, None);
    for line in out.lines() {
        if let Some(rest) = line.strip_prefix("output: ") {
            let mut parts = rest.split_whitespace();
            actual_out = parts.next().and_then(|s| s.parse::<f64>().ok());
            est_out = rest
                .split("estimated ")
                .nth(1)
                .and_then(|s| s.trim_end_matches(')').parse::<f64>().ok());
        }
    }
    let (est, actual) = (est_out.expect("estimate"), actual_out.expect("actual"));
    assert!(actual > 0.0);
    assert!(
        est <= actual * 2.0 && est >= actual / 2.0,
        "estimate {est} not within 2x of actual {actual}:\n{out}"
    );
}
