//! Cross-crate integration: the same queries through every path —
//! algebra API, optimizer, both engines, the XRA language and the SQL
//! front-end — must agree on the paper's worked examples.

use mera::core::prelude::*;
use mera::eval::{eval, execute};
use mera::expr::{Aggregate, RelExpr, ScalarExpr};
use mera::lang::{Lowerer, Session};
use mera::opt::{reorder_joins, CatalogStats, Optimizer};
use mera::setalg::eval_set;
use mera::sql::{parse_sql, run_sql, translate, Translated};
use mera::txn::TransactionManager;

/// Example 3.1 through five different paths.
#[test]
fn example_3_1_five_ways_agree() {
    let db = mera::beer_database();

    // 1. algebra builder + reference evaluator
    let algebra = RelExpr::scan("beer")
        .join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        )
        .select(ScalarExpr::attr(6).eq(ScalarExpr::str("NL")))
        .project(&[1]);
    let reference = eval(&algebra, &db).expect("reference evaluates");

    // 2. physical engine
    let physical = execute(&algebra, &db).expect("physical executes");
    assert_eq!(physical, reference);

    // 3. optimizer + physical engine
    let optimized = Optimizer::standard()
        .optimize(&algebra, db.schema())
        .expect("optimizes");
    let via_optimizer = execute(&optimized.expr, &db).expect("optimized executes");
    assert_eq!(via_optimizer, reference);

    // 4. XRA language
    let lowerer = Lowerer::new(db.schema());
    let parsed =
        mera::lang::parse_rel("project[%1](select[country = 'NL'](join[%2 = %4](beer, brewery)))")
            .expect("parses");
    let via_lang =
        eval(&lowerer.lower_rel(&parsed).expect("lowers"), &db).expect("lowered form evaluates");
    assert_eq!(via_lang, reference);

    // 5. SQL
    let sql = parse_sql(
        "SELECT beer.name FROM beer, brewery \
         WHERE beer.brewery = brewery.name AND country = 'NL'",
    )
    .expect("parses");
    let Translated::Query(sq) = translate(&sql, db.schema()).expect("translates") else {
        panic!("expected a query");
    };
    let via_sql = eval(&sq, &db).expect("sql form evaluates");
    assert_eq!(via_sql, reference);

    // the headline fact: duplicates are preserved
    assert_eq!(reference.multiplicity(&tuple!["Bock"]), 2);
    assert_eq!(reference.len(), 5);
}

/// Example 3.2 through the SQL text the paper prints, compared against
/// the algebra forms and the set-semantics baseline.
#[test]
fn example_3_2_sql_algebra_and_baseline() {
    let db = mera::beer_database();
    let join = RelExpr::scan("beer").join(
        RelExpr::scan("brewery"),
        ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
    );
    let direct = join.clone().group_by(&[6], Aggregate::Avg, 3);
    let reduced = join.project(&[3, 6]).group_by(&[2], Aggregate::Avg, 1);

    let want = eval(&direct, &db).expect("direct evaluates");
    assert_eq!(eval(&reduced, &db).expect("reduced evaluates"), want);

    // SQL text from the paper
    let sql = parse_sql(
        "SELECT country, AVG(alcperc) FROM beer, brewery \
         WHERE beer.brewery = brewery.name GROUP BY country",
    )
    .expect("parses");
    let Translated::Query(sq) = translate(&sql, db.schema()).expect("translates") else {
        panic!("expected a query");
    };
    assert_eq!(eval(&sq, &db).expect("evaluates"), want);

    // the set-semantics baseline diverges on the reduced form
    assert_eq!(eval_set(&direct, &db).expect("set direct"), want); // no dups before γ here
    assert_ne!(eval_set(&reduced, &db).expect("set reduced"), want);
}

/// A full session: schema DDL, loading, querying, transactions, abort.
#[test]
fn xra_session_full_lifecycle() {
    let mut session = Session::new();
    let results = session
        .run_script(
            "relation beer (name: str, brewery: str, alcperc: real);\n\
             relation brewery (name: str, city: str, country: str);\n\
             begin\n\
               insert(beer, values (str, str, real) {\n\
                 ('Grolsch','Grolsche',5.0), ('Heineken','Heineken',5.0),\n\
                 ('Amstel','Heineken',5.1), ('Guinness','StJames',4.2),\n\
                 ('Bock','Grolsche',6.5), ('Bock','Heineken',6.3)\n\
               });\n\
               insert(brewery, values (str, str, str) {\n\
                 ('Grolsche','Enschede','NL'), ('Heineken','Amsterdam','NL'),\n\
                 ('StJames','Dublin','IE')\n\
               });\n\
             end;\n\
             -- per-country average, with a temporary\n\
             begin\n\
               joined = join[%2 = %4](beer, brewery);\n\
               ?groupby[(%6), AVG, %3](joined);\n\
             end;",
        )
        .expect("script runs");
    assert_eq!(results.len(), 2);
    let mera::lang::RunResult::Committed(outs) = &results[1] else {
        panic!("report transaction committed");
    };
    let nl = (5.0 + 5.0 + 5.1 + 6.5 + 6.3) / 5.0;
    assert_eq!(outs[0].multiplicity(&tuple!["NL", nl]), 1);

    // the temporary did not leak
    assert!(session.query("joined").is_err());

    // aborted transaction leaves everything intact
    let before = session.database().clone();
    let results = session
        .run_script(
            "begin\n\
               delete(beer, beer);\n\
               ?groupby[(), MIN, %3](beer);\n\
             end;",
        )
        .expect("script lowers");
    assert!(matches!(results[0], mera::lang::RunResult::Aborted(_)));
    assert_eq!(
        session.database().relation("beer").expect("present"),
        before.relation("beer").expect("present")
    );
}

/// The SQL manager path end-to-end, including DML.
#[test]
fn sql_manager_lifecycle() {
    let mgr = TransactionManager::new(mera::beer_schema());
    run_sql(
        &mgr,
        "INSERT INTO beer VALUES ('A','X',4.0), ('B','X',5.0), ('B','X',5.0)",
    )
    .expect("insert");
    // bag counting: B appears twice
    let out = run_sql(&mgr, "SELECT COUNT(*) FROM beer")
        .expect("runs")
        .expect("output");
    assert_eq!(out.multiplicity(&tuple![3_i64]), 1);
    run_sql(
        &mgr,
        "UPDATE beer SET alcperc = alcperc + 1.0 WHERE name = 'B'",
    )
    .expect("update");
    let out = run_sql(&mgr, "SELECT DISTINCT alcperc FROM beer")
        .expect("runs")
        .expect("output");
    assert!(out.contains(&tuple![6.0_f64]));
    run_sql(&mgr, "DELETE FROM beer WHERE name = 'B'").expect("delete");
    let out = run_sql(&mgr, "SELECT COUNT(*) FROM beer")
        .expect("runs")
        .expect("output");
    assert_eq!(out.multiplicity(&tuple![1_i64]), 1);
}

/// Join reordering on the beer schema preserves the worked results.
#[test]
fn join_reordering_on_beer_database() {
    let db = mera::beer_database();
    let stats = CatalogStats::from_database(&db).expect("analyze");
    // a 3-way chain: beer ⋈ brewery ⋈ beer (self-join on brewery name)
    let e = RelExpr::scan("beer")
        .join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        )
        .join(
            RelExpr::scan("beer"),
            ScalarExpr::attr(4).eq(ScalarExpr::attr(8)),
        );
    let reordered = reorder_joins(&e, &stats, db.schema()).expect("reorders");
    assert_eq!(
        eval(&reordered, &db).expect("reordered evaluates"),
        eval(&e, &db).expect("original evaluates")
    );
}

/// Optimizer, reference and physical engines agree on a grid of shapes
/// over the beer database (a compact sanity matrix).
#[test]
fn engine_matrix_on_beer_database() {
    let db = mera::beer_database();
    let exprs = vec![
        RelExpr::scan("beer").project(&[3]),
        RelExpr::scan("beer").project(&[3]).distinct(),
        RelExpr::scan("beer")
            .select(ScalarExpr::attr(3).cmp(mera::expr::CmpOp::Gt, ScalarExpr::real(5.0)))
            .union(RelExpr::scan("beer")),
        RelExpr::scan("beer").difference(
            RelExpr::scan("beer").select(ScalarExpr::attr(2).eq(ScalarExpr::str("Heineken"))),
        ),
        RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .select(
                ScalarExpr::attr(2)
                    .eq(ScalarExpr::attr(4))
                    .and(ScalarExpr::attr(6).eq(ScalarExpr::str("NL"))),
            )
            .group_by(&[6], Aggregate::Cnt, 1),
        RelExpr::scan("beer").group_by(&[2], Aggregate::Min, 3),
        RelExpr::scan("beer").group_by(&[], Aggregate::Sum, 3),
        RelExpr::scan("beer").ext_project(vec![
            ScalarExpr::attr(1),
            ScalarExpr::attr(3).mul(ScalarExpr::real(2.0)),
        ]),
    ];
    let opt = Optimizer::standard();
    for e in exprs {
        let want = eval(&e, &db).expect("reference evaluates");
        assert_eq!(execute(&e, &db).expect("physical"), want, "physical: {e}");
        let optimized = opt.optimize(&e, db.schema()).expect("optimizes");
        assert_eq!(
            execute(&optimized.expr, &db).expect("optimized"),
            want,
            "optimized {} -> {}",
            e,
            optimized.expr
        );
    }
}
