//! The transitive closure extension (paper §5): unit cases on known
//! graphs, engine agreement, language round-trip, and the closure laws as
//! property tests.

use std::sync::Arc;

use mera::core::prelude::*;
use mera::eval::{eval, execute};
use mera::expr::RelExpr;
use mera::lang::Session;
use proptest::prelude::*;

fn edge_db(edges: &[(i64, i64)]) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "edge",
            Schema::named(&[("src", DataType::Int), ("dst", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let s = Arc::clone(db.schema().get("edge").expect("declared"));
    db.replace(
        "edge",
        Relation::from_tuples(s, edges.iter().map(|&(a, b)| tuple![a, b])).expect("typed"),
    )
    .expect("replace");
    db
}

#[test]
fn path_graph_closes_to_all_descendant_pairs() {
    // 1 → 2 → 3 → 4
    let db = edge_db(&[(1, 2), (2, 3), (3, 4)]);
    let out = eval(&RelExpr::scan("edge").closure(), &db).expect("evaluates");
    let expected = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)];
    assert_eq!(out.len(), expected.len() as u64);
    for (a, b) in expected {
        assert_eq!(out.multiplicity(&tuple![a, b]), 1, "missing ({a},{b})");
    }
}

#[test]
fn cycles_terminate_with_multiplicity_one() {
    // a 3-cycle: every ordered pair (including self-loops via the cycle)
    let db = edge_db(&[(1, 2), (2, 3), (3, 1)]);
    let out = eval(&RelExpr::scan("edge").closure(), &db).expect("evaluates");
    assert_eq!(out.len(), 9); // 3×3 pairs, each exactly once
    for a in 1..=3_i64 {
        for b in 1..=3_i64 {
            assert_eq!(out.multiplicity(&tuple![a, b]), 1);
        }
    }
}

#[test]
fn duplicate_edges_do_not_multiply() {
    // the bag has the edge (1,2) three times; closure is δ-based
    let schema = DatabaseSchema::new()
        .with(
            "edge",
            Schema::named(&[("src", DataType::Int), ("dst", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let s = Arc::clone(db.schema().get("edge").expect("declared"));
    db.replace(
        "edge",
        Relation::from_counted(
            s,
            vec![(tuple![1_i64, 2_i64], 3), (tuple![2_i64, 3_i64], 1)],
        )
        .expect("typed"),
    )
    .expect("replace");
    let out = eval(&RelExpr::scan("edge").closure(), &db).expect("evaluates");
    assert_eq!(out.multiplicity(&tuple![1_i64, 2_i64]), 1);
    assert_eq!(out.multiplicity(&tuple![1_i64, 3_i64]), 1);
    assert_eq!(out.len(), 3);
}

#[test]
fn closure_schema_requirements() {
    // wrong arity
    let db = mera::beer_database();
    let bad = RelExpr::scan("beer").closure();
    assert!(eval(&bad, &db).is_err());
    // mismatched domains: (str, int)
    let schema = DatabaseSchema::new()
        .with(
            "m",
            Schema::named(&[("a", DataType::Str), ("b", DataType::Int)]),
        )
        .expect("fresh");
    let db = Database::new(schema);
    assert!(eval(&RelExpr::scan("m").closure(), &db).is_err());
}

#[test]
fn closure_through_the_language() {
    let mut session = Session::new();
    session
        .run_script(
            "relation parent (child: str, parent: str);\n\
             insert(parent, values (str, str) {\n\
               ('a','b'), ('b','c'), ('c','d')\n\
             });",
        )
        .expect("setup");
    // ancestors: the classic recursive query the paper's §5 points to
    let ancestors = session.query("closure(parent)").expect("queries");
    assert_eq!(ancestors.len(), 6);
    assert!(ancestors.contains(&tuple!["a", "d"]));
    // compose with the rest of the algebra
    let of_a = session
        .query("project[%2](select[%1 = 'a'](closure(parent)))")
        .expect("queries");
    assert_eq!(of_a.len(), 3);
}

proptest! {
    /// Closure laws on random graphs over a small node universe:
    /// idempotence, containment of δE, transitivity, and engine agreement.
    #[test]
    fn closure_laws(edges in proptest::collection::vec((0i64..6, 0i64..6), 0..15)) {
        let db = edge_db(&edges);
        let e = RelExpr::scan("edge");
        let closed = eval(&e.clone().closure(), &db).expect("reference closure");

        // both engines agree
        let physical = execute(&e.clone().closure(), &db).expect("physical closure");
        prop_assert_eq!(&physical, &closed);

        // contains δE
        let base = eval(&e.clone().distinct(), &db).expect("distinct");
        prop_assert!(base.is_submultiset(&closed).expect("same schema"));

        // idempotent: α(α(E)) = α(E)
        let twice = eval(&e.closure().closure(), &db).expect("double closure");
        prop_assert_eq!(&twice, &closed);

        // transitive: (a,b) ∈ α(E) ∧ (b,c) ∈ α(E) ⇒ (a,c) ∈ α(E)
        for (x, _) in closed.iter() {
            for (y, _) in closed.iter() {
                if x.attr(2).expect("dst") == y.attr(1).expect("src") {
                    let through = tuple![
                        x.attr(1).expect("src").clone(),
                        y.attr(2).expect("dst").clone()
                    ];
                    prop_assert!(
                        closed.contains(&through),
                        "missing transitive pair {through} in {closed}"
                    );
                }
            }
        }

        // duplicate-free
        prop_assert!(closed.iter().all(|(_, m)| m == 1));
    }
}
