//! Repo-level differential test: the durable engine against the volatile
//! [`TransactionManager`] — same programs, same outcomes, same final
//! state, and the durable one still has it after a "reboot".

use mera::core::prelude::*;
use mera::lang::Lowerer;
use mera::store::{DurableDb, DurableSession, MemStorage, StoreOptions};
use mera::txn::{Program, TransactionManager};

fn parse(db: &Database, text: &str) -> Program {
    let parsed = mera::lang::parse_program(text).expect("parses");
    let mut lowerer = Lowerer::new(db.schema());
    lowerer.lower_program(&parsed).expect("lowers")
}

#[test]
fn durable_engine_matches_transaction_manager() {
    let schema = mera::beer_schema();
    let programs = [
        "insert(beer, values (str, str, real) {('Grolsch', 'Grolsche', 5.0)})",
        "insert(beer, values (str, str, real) {('Bock', 'Grolsche', 6.5), ('Bock', 'Heineken', 6.3)})",
        "insert(brewery, values (str, str, str) {('Grolsche', 'Enschede', 'NL')})",
        "delete(beer, select[(%3 > 6.4)](beer))",
        "?project[%1](beer)",
    ];

    let mgr = TransactionManager::new(schema.clone());
    let storage = MemStorage::new();
    let mut durable =
        DurableDb::open(storage.clone(), schema, StoreOptions::default()).expect("open");

    for text in programs {
        let program = parse(durable.database(), text);
        let (outcome, _) = mgr.execute(&program).expect("volatile path");
        let durable_outputs = durable.execute(&program).expect("durable path");
        let volatile_outputs = outcome.outputs().expect("workload commits");
        assert_eq!(&durable_outputs, volatile_outputs, "outputs for {text}");
    }
    assert_eq!(durable.database(), &mgr.snapshot());

    // Reboot: only the durable engine survives, and it equals both.
    let expected = durable.database().clone();
    drop(durable);
    let recovered = DurableDb::open(
        MemStorage::from_image(storage.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("recovers");
    assert_eq!(recovered.database(), &expected);
    assert_eq!(recovered.database(), &mgr.snapshot());
}

#[test]
fn durable_session_runs_the_readme_script() {
    let storage = MemStorage::new();
    let db = DurableDb::open(
        storage.clone(),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("open");
    let mut session = DurableSession::new(db);
    session
        .run_script(
            "relation beer (name: str, brewery: str, alcperc: real);\n\
             begin insert(beer, values (str, str, real) {\n\
               ('Grolsch','Grolsche',5.0), ('Bock','Grolsche',6.5), ('Bock','Heineken',6.3)\n\
             }); end",
        )
        .expect("script commits");
    let expected = session.database().clone();
    drop(session);

    let recovered = DurableDb::open(
        MemStorage::from_image(storage.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("recovers");
    assert_eq!(recovered.database(), &expected);
    assert_eq!(
        recovered
            .database()
            .relation("beer")
            .expect("declared")
            .len(),
        3
    );
}
