//! Front-end differential tests: the same logical query expressed in SQL
//! and in XRA must evaluate to the same multi-set, and arbitrary garbage
//! must never panic any front-end.

use mera::eval::eval;
use mera::lang::{parse_rel, parse_script, Lowerer};
use mera::sql::{parse_sql, translate, Translated};
use proptest::prelude::*;

fn beer_queries() -> Vec<(&'static str, &'static str)> {
    // (SQL, XRA) pairs expressing the same query
    vec![
        ("SELECT name FROM beer", "project[name](beer)"),
        (
            "SELECT DISTINCT brewery FROM beer",
            "unique(project[brewery](beer))",
        ),
        (
            "SELECT name, alcperc FROM beer WHERE alcperc >= 5.0",
            "project[name, alcperc](select[alcperc >= 5.0](beer))",
        ),
        (
            "SELECT beer.name FROM beer, brewery \
             WHERE beer.brewery = brewery.name AND country = 'NL'",
            "project[%1](select[%6 = 'NL'](select[%2 = %4](beer times brewery)))",
        ),
        (
            "SELECT country, AVG(alcperc) FROM beer, brewery \
             WHERE beer.brewery = brewery.name GROUP BY country",
            "groupby[(%6), AVG, %3](select[%2 = %4](beer times brewery))",
        ),
        (
            "SELECT brewery, COUNT(*) FROM beer GROUP BY brewery",
            "groupby[(brewery), CNT, %1](beer)",
        ),
        (
            "SELECT brewery, MEDIAN(alcperc) FROM beer GROUP BY brewery",
            "groupby[(brewery), MEDIAN, alcperc](beer)",
        ),
        (
            "SELECT name, alcperc * 2.0 FROM beer",
            "project[name, alcperc * 2.0](beer)",
        ),
    ]
}

#[test]
fn sql_and_xra_agree_on_the_beer_database() {
    let db = mera::beer_database();
    for (sql, xra) in beer_queries() {
        let stmt = parse_sql(sql).unwrap_or_else(|e| panic!("SQL {sql:?}: {e}"));
        let Translated::Query(sq) =
            translate(&stmt, db.schema()).unwrap_or_else(|e| panic!("SQL {sql:?}: {e}"))
        else {
            panic!("expected a query for {sql:?}");
        };
        let lowerer = Lowerer::new(db.schema());
        let parsed = parse_rel(xra).unwrap_or_else(|e| panic!("XRA {xra:?}: {e}"));
        let xe = lowerer
            .lower_rel(&parsed)
            .unwrap_or_else(|e| panic!("XRA {xra:?}: {e}"));
        let sql_out = eval(&sq, &db).unwrap_or_else(|e| panic!("SQL eval {sql:?}: {e}"));
        let xra_out = eval(&xe, &db).unwrap_or_else(|e| panic!("XRA eval {xra:?}: {e}"));
        assert_eq!(sql_out, xra_out, "front-ends disagree on {sql:?} / {xra:?}");
    }
}

proptest! {
    /// Fuzz: the XRA lexer/parser and SQL parser return errors, never
    /// panic, on arbitrary input.
    #[test]
    fn parsers_never_panic(input in "\\PC{0,120}") {
        let _ = parse_rel(&input);
        let _ = parse_script(&input);
        let _ = parse_sql(&input);
    }

    /// Fuzz with token-shaped soup (more likely to get deep into the
    /// grammar than fully random characters).
    #[test]
    fn parsers_survive_token_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("select".to_owned()), Just("project".to_owned()),
                Just("join".to_owned()), Just("union".to_owned()),
                Just("values".to_owned()), Just("groupby".to_owned()),
                Just("closure".to_owned()), Just("begin".to_owned()),
                Just("end".to_owned()), Just("insert".to_owned()),
                Just("(".to_owned()), Just(")".to_owned()),
                Just("[".to_owned()), Just("]".to_owned()),
                Just("{".to_owned()), Just("}".to_owned()),
                Just(",".to_owned()), Just(";".to_owned()),
                Just("%1".to_owned()), Just("%2".to_owned()),
                Just("=".to_owned()), Just("'x'".to_owned()),
                Just("1".to_owned()), Just("1.5".to_owned()),
                Just("beer".to_owned()), Just("and".to_owned()),
            ],
            0..25
        ),
    ) {
        let input = words.join(" ");
        let _ = parse_rel(&input);
        let _ = parse_script(&input);
        let _ = parse_sql(&input);
    }

    /// Lowering against the beer schema errors gracefully on any parse
    /// that happens to succeed.
    #[test]
    fn lowering_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("select".to_owned()), Just("project".to_owned()),
                Just("[".to_owned()), Just("]".to_owned()),
                Just("(".to_owned()), Just(")".to_owned()),
                Just("%1".to_owned()), Just("%9".to_owned()),
                Just("=".to_owned()), Just("beer".to_owned()),
                Just("name".to_owned()), Just("nosuch".to_owned()),
                Just("1".to_owned()), Just("'NL'".to_owned()),
            ],
            0..20
        ),
    ) {
        let input = words.join(" ");
        if let Ok(parsed) = parse_rel(&input) {
            let db = mera::beer_database();
            let lowerer = Lowerer::new(db.schema());
            if let Ok(expr) = lowerer.lower_rel(&parsed) {
                // anything that lowers must also evaluate or error cleanly
                let _ = eval(&expr, &db);
            }
        }
    }
}
