//! Soundness of the static analyzer's acceptance: a plan that
//! `mera-analyze` accepts (no error-severity diagnostics) must never fail
//! with a *static* error class — unknown relation/attribute, out-of-range
//! index, schema or type mismatch — in **any** of the four engines.
//!
//! Runtime-only partial behaviour (`AVG` over an empty group, division by
//! zero, overflow) is allowed: the analyzer warns about what *may* fail
//! and rejects only what *must* fail.

use std::sync::Arc;

use mera::analyze::{analyze_plan, Card, CardEnv};
use mera::core::prelude::*;
use mera::eval::{Engine, IndexSet};
use mera::expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use proptest::prelude::*;

fn build_db(rows: Vec<(i64, i64, u64)>) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let rs = Arc::clone(db.schema().get("r").expect("declared"));
    db.replace(
        "r",
        Relation::from_counted(rs, rows.iter().map(|&(k, v, m)| (tuple![k, v], m))).expect("typed"),
    )
    .expect("replace");
    let ss = Arc::clone(db.schema().get("s").expect("declared"));
    db.replace(
        "s",
        Relation::from_counted(
            ss,
            rows.iter()
                .rev()
                .map(|&(k, v, m)| (tuple![v % 4, k], m.min(3))),
        )
        .expect("typed"),
    )
    .expect("replace");
    db
}

/// Builds a plan that is *sometimes* ill-formed: `attr`/`key` range over
/// values outside the valid `1..=2` attribute indexes, `rel` sometimes
/// names a relation that does not exist, and some shapes mix domains.
/// The analyzer's verdict — not this generator — decides which plans the
/// engines are asked to run.
fn build_expr(shape: u8, attr: usize, key: usize, rel: &str, c: i64) -> RelExpr {
    let r = RelExpr::scan("r");
    let s = RelExpr::scan("s");
    let x = RelExpr::scan(rel);
    match shape % 10 {
        0 => x.select(ScalarExpr::attr(attr).eq(ScalarExpr::int(c))),
        1 => r.join(x, ScalarExpr::attr(attr).eq(ScalarExpr::attr(key))),
        2 => x.project(&[attr, key]),
        3 => r.union(x.project(&[attr])),
        4 => x.group_by(&[key], Aggregate::Avg, attr),
        5 => x
            .select(ScalarExpr::bool(false))
            .group_by(&[], Aggregate::Min, attr),
        6 => x.ext_project(vec![
            ScalarExpr::attr(attr).add(ScalarExpr::attr(key)),
            ScalarExpr::attr(attr).mul(ScalarExpr::str("oops")),
        ]),
        7 => x.difference(s).distinct(),
        8 => x.project(&[attr, key]).closure(),
        _ => r
            .product(x)
            .select(ScalarExpr::attr(attr).cmp(CmpOp::Ge, ScalarExpr::int(c)))
            .group_by(&[key], Aggregate::Cnt, 1),
    }
}

/// Error classes the analyzer promises to have ruled out on acceptance.
fn is_static_class(e: &CoreError) -> bool {
    matches!(
        e,
        CoreError::UnknownRelation(_)
            | CoreError::UnknownAttribute(_)
            | CoreError::AttrIndexOutOfRange { .. }
            | CoreError::SchemaMismatch { .. }
            | CoreError::TupleSchemaMismatch { .. }
            | CoreError::TypeError(_)
            | CoreError::DuplicateAttrInList(_)
            | CoreError::DuplicateRelation(_)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn accepted_plans_never_hit_static_errors(
        rows in proptest::collection::vec(((0i64..5), (0i64..8), (1u64..4)), 0..8),
        shape in 0u8..10,
        // 1-based; the builders reject 0 by construction, and 3..5 are out
        // of range for the arity-2 test relations
        attr in 1usize..5,
        key in 1usize..5,
        scan_sel in 0u8..10,
        c in 0i64..5,
    ) {
        let db = build_db(rows);
        // mostly-known scans so acceptance is the common case
        let rel = if scan_sel < 8 { "s" } else { "nosuch" };
        let e = build_expr(shape, attr, key, rel, c);

        let cards: CardEnv = db
            .relation_names()
            .filter_map(|n| {
                let r = db.relation(n).ok()?;
                Some((n.to_owned(), Card::of_relation(r)))
            })
            .collect();
        let analysis = analyze_plan(&e, db.schema(), &cards);
        if !analysis.is_accepted() {
            // rejected plans are out of scope for the property (the
            // companion test below pins that rejection is not vacuous)
            return Ok(());
        }

        // an accepted plan types: schema inference must have succeeded
        prop_assert!(analysis.schema.is_some(), "accepted without a schema: {}", e);

        let mut indexes = IndexSet::new();
        indexes.create(&db, "r", &[1]).expect("index builds");
        let engines = [
            Engine::reference(),
            Engine::physical(),
            Engine::parallel().with_partitions(3),
            Engine::indexed(indexes),
        ];
        for engine in engines {
            if let Err(err) = engine.run(&e, &db) {
                prop_assert!(
                    !is_static_class(&err),
                    "analyzer accepted {} but an engine failed statically: {}",
                    e,
                    err
                );
            }
        }
    }
}

#[test]
fn rejection_is_not_vacuous() {
    // sanity for the property above: the generator does produce plans the
    // analyzer rejects, and plans it accepts, for fixed representative
    // parameters
    let db = build_db(vec![(1, 2, 1)]);
    let cards = CardEnv::new();
    let bad = build_expr(0, 4, 1, "s", 0); // %4 out of range
    assert!(!analyze_plan(&bad, db.schema(), &cards).is_accepted());
    let good = build_expr(0, 1, 1, "s", 0);
    assert!(analyze_plan(&good, db.schema(), &cards).is_accepted());
}
