//! Executable forms of the paper's theorems (experiments E1–E4).
//!
//! Each identity is checked both on the worked beer database and on
//! randomly generated multi-set databases; every check evaluates *both*
//! sides with the reference evaluator (the executable definitions) and
//! with the physical engine.

use std::sync::Arc;

use mera::core::prelude::*;
use mera::eval::{eval, execute};
use mera::expr::{CmpOp, RelExpr, ScalarExpr};
use proptest::prelude::*;

/// Both engines must produce the same relation for both sides.
fn assert_equivalent(a: &RelExpr, b: &RelExpr, db: &Database) {
    let ra = eval(a, db).expect("lhs evaluates");
    let rb = eval(b, db).expect("rhs evaluates");
    assert_eq!(ra, rb, "reference engine: {a}  vs  {b}");
    let pa = execute(a, db).expect("lhs executes");
    let pb = execute(b, db).expect("rhs executes");
    assert_eq!(pa, pb, "physical engine: {a}  vs  {b}");
    assert_eq!(ra, pa, "engines disagree on {a}");
}

fn random_db(r1: Vec<(i64, u64)>, r2: Vec<(i64, u64)>, r3: Vec<(i64, u64)>) -> Database {
    let schema = DatabaseSchema::new()
        .with("e1", Schema::named(&[("a", DataType::Int)]))
        .expect("fresh")
        .with("e2", Schema::named(&[("a", DataType::Int)]))
        .expect("fresh")
        .with("e3", Schema::named(&[("b", DataType::Int)]))
        .expect("fresh");
    let mut db = Database::new(schema);
    for (name, rows) in [("e1", r1), ("e2", r2), ("e3", r3)] {
        let s = Arc::clone(db.schema().get(name).expect("declared"));
        db.replace(
            name,
            Relation::from_counted(s, rows.into_iter().map(|(v, m)| (tuple![v], m)))
                .expect("typed"),
        )
        .expect("replace");
    }
    db
}

fn rows() -> impl Strategy<Value = Vec<(i64, u64)>> {
    proptest::collection::vec(((0i64..6), (1u64..4)), 0..6)
}

fn pred(c: i64) -> ScalarExpr {
    ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::int(c))
}

proptest! {
    /// Theorem 3.1, first identity: E₁ ∩ E₂ = E₁ − (E₁ − E₂). The paper
    /// proves this by the pointwise case split
    /// `max(0, m₁ − max(0, m₁ − m₂)) = min(m₁, m₂)`.
    #[test]
    fn thm_3_1_intersection_desugar(r1 in rows(), r2 in rows(), r3 in rows()) {
        let db = random_db(r1, r2, r3);
        let e1 = RelExpr::scan("e1");
        let e2 = RelExpr::scan("e2");
        let lhs = e1.clone().intersect(e2.clone());
        let rhs = e1.clone().difference(e1.difference(e2));
        assert_equivalent(&lhs, &rhs, &db);
    }

    /// Theorem 3.1, second identity: E₁ ⋈_φ E₂ = σ_φ(E₁ × E₂).
    #[test]
    fn thm_3_1_join_desugar(r1 in rows(), r2 in rows(), r3 in rows(), c in 0i64..6) {
        let db = random_db(r1, r2, r3);
        let phi = ScalarExpr::attr(1)
            .eq(ScalarExpr::attr(2))
            .and(ScalarExpr::attr(2).cmp(CmpOp::Le, ScalarExpr::int(c)));
        let lhs = RelExpr::scan("e1").join(RelExpr::scan("e3"), phi.clone());
        let rhs = RelExpr::scan("e1").product(RelExpr::scan("e3")).select(phi);
        assert_equivalent(&lhs, &rhs, &db);
    }

    /// Theorem 3.2, first law: σ_φ(E₁ ⊎ E₂) = σ_φE₁ ⊎ σ_φE₂.
    #[test]
    fn thm_3_2_selection_distributes_over_union(
        r1 in rows(), r2 in rows(), r3 in rows(), c in 0i64..6
    ) {
        let db = random_db(r1, r2, r3);
        let lhs = RelExpr::scan("e1").union(RelExpr::scan("e2")).select(pred(c));
        let rhs = RelExpr::scan("e1")
            .select(pred(c))
            .union(RelExpr::scan("e2").select(pred(c)));
        assert_equivalent(&lhs, &rhs, &db);
    }

    /// Theorem 3.2, second law: π_a(E₁ ⊎ E₂) = π_aE₁ ⊎ π_aE₂.
    #[test]
    fn thm_3_2_projection_distributes_over_union(r1 in rows(), r2 in rows(), r3 in rows()) {
        let db = random_db(r1, r2, r3);
        let lhs = RelExpr::scan("e1").union(RelExpr::scan("e2")).project(&[1, 1]);
        let rhs = RelExpr::scan("e1")
            .project(&[1, 1])
            .union(RelExpr::scan("e2").project(&[1, 1]));
        assert_equivalent(&lhs, &rhs, &db);
    }

    /// §3.3's caveat: δ does NOT distribute over ⊎, but the weaker
    /// δ(E₁ ⊎ E₂) = δ(δE₁ ⊎ δE₂) always holds.
    #[test]
    fn delta_union_weak_form_holds(r1 in rows(), r2 in rows(), r3 in rows()) {
        let db = random_db(r1, r2, r3);
        let lhs = RelExpr::scan("e1").union(RelExpr::scan("e2")).distinct();
        let rhs = RelExpr::scan("e1")
            .distinct()
            .union(RelExpr::scan("e2").distinct())
            .distinct();
        assert_equivalent(&lhs, &rhs, &db);
    }

    /// Theorem 3.3: ×, ⋈, ⊎ and ∩ are associative.
    #[test]
    fn thm_3_3_associativity(r1 in rows(), r2 in rows(), r3 in rows()) {
        let db = random_db(r1, r2, r3);
        let (e1, e2, e3) = (RelExpr::scan("e1"), RelExpr::scan("e2"), RelExpr::scan("e3"));
        // ⊎ and ∩ (same schema needed: e1, e2 share one)
        let lhs = e1.clone().union(e2.clone()).union(e2.clone());
        let rhs = e1.clone().union(e2.clone().union(e2.clone()));
        assert_equivalent(&lhs, &rhs, &db);
        let lhs = e1.clone().intersect(e2.clone()).intersect(e2.clone());
        let rhs = e1.clone().intersect(e2.clone().intersect(e2.clone()));
        assert_equivalent(&lhs, &rhs, &db);
        // ×
        let lhs = e1.clone().product(e2.clone()).product(e3.clone());
        let rhs = e1.clone().product(e2.clone().product(e3.clone()));
        assert_equivalent(&lhs, &rhs, &db);
        // ⋈ with predicates re-based to the final 3-attribute schema:
        // (e1 ⋈_{%1=%2} e2) ⋈_{%2=%3} e3  =  e1 ⋈_{%1=%2} (e2 ⋈_{%1=%2} e3)
        let lhs = e1
            .clone()
            .join(e2.clone(), ScalarExpr::attr(1).eq(ScalarExpr::attr(2)))
            .join(e3.clone(), ScalarExpr::attr(2).eq(ScalarExpr::attr(3)));
        let rhs = e1.join(
            e2.join(e3, ScalarExpr::attr(1).eq(ScalarExpr::attr(2))),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(2)),
        );
        assert_equivalent(&lhs, &rhs, &db);
    }
}

/// The strict distribution δ(E₁ ⊎ E₂) = δE₁ ⊎ δE₂ FAILS — the concrete
/// counter-example the §3.3 note implies: any element present in both
/// operands.
#[test]
fn delta_union_strict_distribution_fails() {
    let db = random_db(vec![(1, 1)], vec![(1, 1)], vec![]);
    let lhs = RelExpr::scan("e1").union(RelExpr::scan("e2")).distinct();
    let rhs = RelExpr::scan("e1")
        .distinct()
        .union(RelExpr::scan("e2").distinct());
    let l = eval(&lhs, &db).expect("lhs evaluates");
    let r = eval(&rhs, &db).expect("rhs evaluates");
    assert_ne!(l, r, "strict distribution should fail");
    assert_eq!(l.multiplicity(&tuple![1_i64]), 1);
    assert_eq!(r.multiplicity(&tuple![1_i64]), 2);
}

/// The proof obligation inside Theorem 3.1, checked exhaustively over a
/// grid: max(0, m₁ − max(0, m₁ − m₂)) = min(m₁, m₂).
#[test]
fn thm_3_1_pointwise_identity_exhaustive() {
    for m1 in 0u64..50 {
        for m2 in 0u64..50 {
            let lhs = m1.saturating_sub(m1.saturating_sub(m2));
            assert_eq!(lhs, m1.min(m2), "m1={m1}, m2={m2}");
        }
    }
}
