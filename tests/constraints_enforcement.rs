//! Commit-time integrity enforcement (the paper's reference [11] model):
//! a transaction whose final state violates a declared constraint aborts
//! atomically; deferred checking allows transient violations *inside* the
//! transaction.

use std::sync::Arc;

use mera::core::prelude::*;
use mera::expr::{CmpOp, RelExpr, ScalarExpr};
use mera::txn::{
    AbortReason, Constraint, ConstraintSet, ExecConfig, Outcome, Program, Statement,
    TransactionManager,
};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "beer",
            Schema::named(&[
                ("name", DataType::Str),
                ("brewery", DataType::Str),
                ("alcperc", DataType::Real),
            ]),
        )
        .expect("fresh")
        .with(
            "brewery",
            Schema::named(&[("name", DataType::Str), ("country", DataType::Str)]),
        )
        .expect("fresh")
}

fn constrained_manager() -> TransactionManager {
    let s = schema();
    let constraints = ConstraintSet::new()
        .with(
            "beer_pk",
            Constraint::PrimaryKey {
                relation: "beer".into(),
                attrs: vec![1, 2],
            },
            &s,
        )
        .expect("pk declares")
        .with(
            "beer_brewery_fk",
            Constraint::ForeignKey {
                relation: "beer".into(),
                attrs: vec![2],
                references: "brewery".into(),
                ref_attrs: vec![1],
            },
            &s,
        )
        .expect("fk declares")
        .with(
            "alcperc_range",
            Constraint::Check {
                relation: "beer".into(),
                predicate: ScalarExpr::attr(3)
                    .cmp(CmpOp::Ge, ScalarExpr::real(0.0))
                    .and(ScalarExpr::attr(3).cmp(CmpOp::Le, ScalarExpr::real(100.0))),
            },
            &s,
        )
        .expect("check declares");
    TransactionManager::with_constraints(s, ExecConfig::default(), constraints)
}

fn insert(rel: &str, rows: Vec<Tuple>, types: &[DataType]) -> Statement {
    let r = Relation::from_tuples(Arc::new(Schema::anon(types)), rows).expect("typed");
    Statement::insert(rel, RelExpr::values(r))
}

const BEER_T: [DataType; 3] = [DataType::Str, DataType::Str, DataType::Real];
const BREWERY_T: [DataType; 2] = [DataType::Str, DataType::Str];

#[test]
fn valid_transactions_commit() {
    let mgr = constrained_manager();
    let p = Program::new()
        .then(insert("brewery", vec![tuple!["X", "NL"]], &BREWERY_T))
        .then(insert("beer", vec![tuple!["A", "X", 5.0_f64]], &BEER_T));
    let (outcome, _) = mgr.execute(&p).expect("runs");
    assert!(outcome.is_committed(), "{outcome:?}");
    assert_eq!(mgr.constraints().len(), 3);
}

#[test]
fn duplicate_insert_aborts_on_pk() {
    let mgr = constrained_manager();
    mgr.execute(
        &Program::new()
            .then(insert("brewery", vec![tuple!["X", "NL"]], &BREWERY_T))
            .then(insert("beer", vec![tuple!["A", "X", 5.0_f64]], &BEER_T)),
    )
    .expect("setup commits");
    // bag insert would happily create multiplicity 2 — the PK forbids it
    let (outcome, transition) = mgr
        .execute(&Program::single(insert(
            "beer",
            vec![tuple!["A", "X", 5.0_f64]],
            &BEER_T,
        )))
        .expect("runs");
    let Outcome::Aborted(AbortReason::ConstraintViolation(v)) = outcome else {
        panic!("expected constraint abort, got {outcome:?}");
    };
    assert!(v.contains("beer_pk"), "{v}");
    assert!(transition.is_identity());
    assert_eq!(mgr.snapshot().relation("beer").expect("present").len(), 1);
}

#[test]
fn dangling_foreign_key_aborts() {
    let mgr = constrained_manager();
    let (outcome, _) = mgr
        .execute(&Program::single(insert(
            "beer",
            vec![tuple!["A", "Ghost", 5.0_f64]],
            &BEER_T,
        )))
        .expect("runs");
    assert!(matches!(
        outcome,
        Outcome::Aborted(AbortReason::ConstraintViolation(ref v)) if v.contains("fk")
    ));
}

#[test]
fn check_constraint_guards_updates() {
    let mgr = constrained_manager();
    mgr.execute(
        &Program::new()
            .then(insert("brewery", vec![tuple!["X", "NL"]], &BREWERY_T))
            .then(insert("beer", vec![tuple!["A", "X", 60.0_f64]], &BEER_T)),
    )
    .expect("setup");
    // the Guineken update at ×2 would push alcperc past 100
    let update = Program::single(Statement::update(
        "beer",
        RelExpr::scan("beer"),
        vec![
            ScalarExpr::attr(1),
            ScalarExpr::attr(2),
            ScalarExpr::attr(3).mul(ScalarExpr::real(2.0)),
        ],
    ));
    let (outcome, _) = mgr.execute(&update).expect("runs");
    assert!(matches!(
        outcome,
        Outcome::Aborted(AbortReason::ConstraintViolation(ref v)) if v.contains("alcperc_range")
    ));
    // the original value survived
    let beer = mgr.snapshot();
    assert!(beer
        .relation("beer")
        .expect("present")
        .contains(&tuple!["A", "X", 60.0_f64]));
}

#[test]
fn checking_is_deferred_to_commit() {
    // inside one transaction the FK may be transiently violated: insert
    // the beer first, its brewery second — commit-time state is valid
    let mgr = constrained_manager();
    let p = Program::new()
        .then(insert("beer", vec![tuple!["A", "X", 5.0_f64]], &BEER_T))
        .then(insert("brewery", vec![tuple!["X", "NL"]], &BREWERY_T));
    let (outcome, _) = mgr.execute(&p).expect("runs");
    assert!(outcome.is_committed(), "{outcome:?}");
}

#[test]
fn delete_can_break_fk_and_aborts() {
    let mgr = constrained_manager();
    mgr.execute(
        &Program::new()
            .then(insert("brewery", vec![tuple!["X", "NL"]], &BREWERY_T))
            .then(insert("beer", vec![tuple!["A", "X", 5.0_f64]], &BEER_T)),
    )
    .expect("setup");
    // deleting the brewery leaves a dangling beer reference
    let (outcome, _) = mgr
        .execute(&Program::single(Statement::delete(
            "brewery",
            RelExpr::scan("brewery"),
        )))
        .expect("runs");
    assert!(matches!(
        outcome,
        Outcome::Aborted(AbortReason::ConstraintViolation(_))
    ));
    // cascading manually within one transaction works
    let (outcome, _) = mgr
        .execute(
            &Program::new()
                .then(Statement::delete("beer", RelExpr::scan("beer")))
                .then(Statement::delete("brewery", RelExpr::scan("brewery"))),
        )
        .expect("runs");
    assert!(outcome.is_committed());
}

#[test]
fn recovery_respects_constraints() {
    let mgr = constrained_manager();
    mgr.execute(
        &Program::new()
            .then(insert("brewery", vec![tuple!["X", "NL"]], &BREWERY_T))
            .then(insert("beer", vec![tuple!["A", "X", 5.0_f64]], &BEER_T)),
    )
    .expect("setup");
    // aborted (violating) transactions never reach the log, so replay
    // under the same constraints succeeds
    let _ = mgr.execute(&Program::single(insert(
        "beer",
        vec![tuple!["A", "X", 5.0_f64]],
        &BEER_T,
    )));
    let recovered = TransactionManager::recover(schema(), &mgr.log()).expect("recovers");
    assert_eq!(
        recovered.snapshot().relation("beer").expect("present"),
        mgr.snapshot().relation("beer").expect("present")
    );
}
