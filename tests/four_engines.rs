//! Four-way engine differential: the reference evaluator, the Volcano
//! engine, the partition-parallel evaluator and the index-aware executor
//! must all compute the same multi-sets on random databases and plans.

use std::sync::Arc;

use mera::core::prelude::*;
use mera::eval::{Engine, IndexSet};
use mera::expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use proptest::prelude::*;

fn build_db(rows: Vec<(i64, i64, u64)>) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let rs = Arc::clone(db.schema().get("r").expect("declared"));
    db.replace(
        "r",
        Relation::from_counted(rs, rows.iter().map(|&(k, v, m)| (tuple![k, v], m))).expect("typed"),
    )
    .expect("replace");
    let ss = Arc::clone(db.schema().get("s").expect("declared"));
    db.replace(
        "s",
        Relation::from_counted(
            ss,
            rows.iter()
                .rev()
                .map(|&(k, v, m)| (tuple![v % 4, k], m.min(3))),
        )
        .expect("typed"),
    )
    .expect("replace");
    db
}

fn build_expr(shape: u8, c: i64) -> RelExpr {
    let r = RelExpr::scan("r");
    let s = RelExpr::scan("s");
    match shape % 8 {
        0 => r.select(ScalarExpr::attr(1).eq(ScalarExpr::int(c))),
        1 => r.join(s, ScalarExpr::attr(1).eq(ScalarExpr::attr(3))),
        2 => r
            .select(ScalarExpr::attr(1).eq(ScalarExpr::int(c)))
            .join(s, ScalarExpr::attr(2).eq(ScalarExpr::attr(4))),
        3 => r.group_by(&[1], Aggregate::Sum, 2),
        4 => r
            .join(s, ScalarExpr::attr(1).eq(ScalarExpr::attr(3)))
            .group_by(&[3], Aggregate::Cnt, 1),
        5 => r.union(s).project(&[1]).distinct(),
        6 => r
            .select(ScalarExpr::attr(2).cmp(CmpOp::Ge, ScalarExpr::int(c)))
            .difference(s),
        _ => r.project(&[1, 1]).closure(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn all_engines_agree(
        rows in proptest::collection::vec(((0i64..5), (0i64..8), (1u64..4)), 0..10),
        shape in 0u8..8,
        c in 0i64..5,
        partitions in 1usize..6,
        batch in 1usize..9,
    ) {
        let db = build_db(rows);
        let mut indexes = IndexSet::new();
        indexes.create(&db, "r", &[1]).expect("index builds");
        let e = build_expr(shape, c);

        let reference = Engine::reference().run(&e, &db).expect("reference evaluates");
        let physical = Engine::physical()
            .with_batch_size(batch)
            .run(&e, &db)
            .expect("physical executes");
        prop_assert_eq!(&physical, &reference, "physical differs on {}", e);
        let parallel = Engine::parallel()
            .with_partitions(partitions)
            .with_batch_size(batch)
            .run(&e, &db)
            .expect("parallel executes");
        prop_assert_eq!(&parallel, &reference, "parallel differs on {}", e);
        let indexed = Engine::indexed(indexes)
            .with_batch_size(batch)
            .run(&e, &db)
            .expect("indexed executes");
        prop_assert_eq!(&indexed, &reference, "indexed differs on {}", e);
    }
}
