//! # mera — a multi-set extended relational algebra
//!
//! A complete implementation of Grefen & de By, *A Multi-Set Extended
//! Relational Algebra — A Formal Approach to a Practical Issue*
//! (ICDE 1994): the bag-relational data model, the full extended algebra
//! with aggregates and duplicate elimination, an optimizer built on the
//! paper's equivalence theorems, the sequential database-manipulation
//! language with ACID transactions, a textual XRA front-end and a SQL
//! subset.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name and hosts the repository-level examples and integration tests.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`analyze`] | `mera-analyze` | static analysis: schema inference, partiality lints, rewrite soundness |
//! | [`core`] | `mera-core` | values, tuples, schemas, counted bags, databases (§2) |
//! | [`expr`] | `mera-expr` | scalar/aggregate/relational expression trees (§3) |
//! | [`eval`] | `mera-eval` | reference evaluator + Volcano engine |
//! | [`opt`] | `mera-opt` | rewrite rules, cost model, join ordering (§3.3) |
//! | [`lang`] | `mera-lang` | the XRA textual language |
//! | [`txn`] | `mera-txn` | statements, programs, transactions (§4) |
//! | [`setalg`] | `mera-setalg` | classical set-semantics baseline |
//! | [`sql`] | `mera-sql` | SQL subset front-end |
//! | [`store`] | `mera-store` | durability: write-ahead log, snapshots, crash recovery |
//!
//! ```
//! use mera::lang::Session;
//!
//! let mut session = Session::new();
//! session.run_script(
//!     "relation beer (name: str, brewery: str, alcperc: real);\
//!      insert(beer, values (str, str, real) {\
//!        ('Grolsch','Grolsche',5.0), ('Bock','Grolsche',6.5), ('Bock','Heineken',6.3)\
//!      });",
//! )?;
//! // Example 3.1: duplicates are first-class
//! let names = session.query("project[name](beer)")?;
//! assert_eq!(names.multiplicity(&mera::core::tuple!["Bock"]), 2);
//! # Ok::<(), mera::lang::LangError>(())
//! ```

pub use mera_analyze as analyze;
pub use mera_core as core;
pub use mera_eval as eval;
pub use mera_expr as expr;
pub use mera_lang as lang;
pub use mera_opt as opt;
pub use mera_setalg as setalg;
pub use mera_sql as sql;
pub use mera_store as store;
pub use mera_txn as txn;

use mera_core::prelude::*;
use std::sync::Arc;

/// Builds the paper's beer/brewery example database (§3's running
/// example), pre-loaded with a small instance that exhibits duplicates:
/// two different Dutch brewers both brew a beer called "Bock".
pub fn beer_database() -> Database {
    let schema = beer_schema();
    let mut db = Database::new(schema);
    let beer = Arc::clone(db.schema().get("beer").expect("declared"));
    db.replace(
        "beer",
        Relation::from_tuples(
            beer,
            vec![
                tuple!["Grolsch", "Grolsche", 5.0_f64],
                tuple!["Heineken", "Heineken", 5.0_f64],
                tuple!["Amstel", "Heineken", 5.1_f64],
                tuple!["Guinness", "StJames", 4.2_f64],
                tuple!["Bock", "Grolsche", 6.5_f64],
                tuple!["Bock", "Heineken", 6.3_f64],
            ],
        )
        .expect("well-typed fixture"),
    )
    .expect("replace");
    let brewery = Arc::clone(db.schema().get("brewery").expect("declared"));
    db.replace(
        "brewery",
        Relation::from_tuples(
            brewery,
            vec![
                tuple!["Grolsche", "Enschede", "NL"],
                tuple!["Heineken", "Amsterdam", "NL"],
                tuple!["StJames", "Dublin", "IE"],
            ],
        )
        .expect("well-typed fixture"),
    )
    .expect("replace");
    db
}

/// The beer/brewery database schema from the paper:
/// `beer (name, brewery, alcperc)` and `brewery (name, city, country)`.
pub fn beer_schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "beer",
            Schema::named(&[
                ("name", DataType::Str),
                ("brewery", DataType::Str),
                ("alcperc", DataType::Real),
            ]),
        )
        .expect("fresh schema")
        .with(
            "brewery",
            Schema::named(&[
                ("name", DataType::Str),
                ("city", DataType::Str),
                ("country", DataType::Str),
            ]),
        )
        .expect("fresh schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_matches_paper_schemas() {
        let db = beer_database();
        assert_eq!(db.relation("beer").expect("present").len(), 6);
        assert_eq!(db.relation("brewery").expect("present").len(), 3);
        assert_eq!(db.schema().get("beer").expect("present").arity(), 3);
    }
}
