//! # mera-eval — evaluators for the multi-set extended relational algebra
//!
//! One batched execution core behind several evaluation paths:
//!
//! * [`mod@reference`] — the executable form of Definitions 3.1–3.4, computed
//!   directly from the multiplicity laws on counted bags. Slow, obvious,
//!   and the oracle everything else is checked against.
//! * [`physical`] — a pipelined engine streaming batches of `(tuple,
//!   multiplicity)` pairs, with hash joins, hash aggregation and
//!   instrumented plans,
//! * [`parallel`] — hash-partitioned parallel kernels for equi-joins and
//!   keyed group-bys (the PRISMA/DB direction from section 5); each
//!   partition runs the same batched physical operators,
//! * [`morsel`] — morsel-driven whole-pipeline parallelism on a reusable
//!   worker pool: plans are split at pipeline breakers, workers steal
//!   row-chunk morsels and run entire operator chains over them, joins
//!   share one build table and aggregation runs in two phases,
//! * [`index`] — hash indexes and a rewrite pre-pass turning
//!   point-selections into lookups, feeding the physical engine.
//!
//! The [`engine::Engine`] entry point unifies them: pick an
//! [`engine::EngineKind`], tune [`engine::ExecOptions`] (batch size,
//! partitions), optionally attach an [`IndexSet`], and call
//! [`engine::Engine::run`]. Equivalence of all paths on arbitrary inputs
//! is enforced by property tests (`tests/engine_equivalence.rs`).

#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod keys;
pub mod morsel;
pub mod parallel;
pub mod physical;
mod pool;
pub mod provider;
pub mod reference;

pub use engine::{Engine, EngineKind, ExecOptions, DEFAULT_BATCH_SIZE};
pub use index::{execute_indexed, execute_indexed_with, HashIndex, IndexJoinHints, IndexSet};
pub use keys::{KeySet, KeyViolation};
pub use morsel::{execute_morsel, execute_morsel_with};
pub use parallel::{default_partitions, execute_parallel, execute_parallel_with};
pub use physical::{collect, execute, execute_with};
pub use provider::{NoRelations, RelationProvider, Schemas};
pub use reference::eval;
