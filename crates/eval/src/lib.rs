//! # mera-eval — evaluators for the multi-set extended relational algebra
//!
//! Two independent implementations of the algebra's semantics:
//!
//! * [`mod@reference`] — the executable form of Definitions 3.1–3.4, computed
//!   directly from the multiplicity laws on counted bags. Slow, obvious,
//!   and the oracle everything else is checked against.
//! * [`physical`] — a Volcano-style engine streaming `(tuple,
//!   multiplicity)` pairs, with hash joins, hash aggregation and
//!   instrumented plans,
//! * [`parallel`] - hash-partitioned parallel kernels for equi-joins and
//!   keyed group-bys (the PRISMA/DB direction from section 5).
//!
//! The equivalence of the two on arbitrary inputs is enforced by property
//! tests (`tests/engine_equivalence.rs`).

#![warn(missing_docs)]

pub mod index;
pub mod parallel;
pub mod physical;
pub mod provider;
pub mod reference;

pub use index::{execute_indexed, HashIndex, IndexSet};
pub use parallel::execute_parallel;
pub use physical::{collect, execute};
pub use provider::{NoRelations, RelationProvider, Schemas};
pub use reference::eval;
