//! Morsel-driven whole-pipeline parallel execution.
//!
//! The operator-at-a-time kernels in [`crate::parallel`] parallelize one
//! plan node at a time: every node materialises a full [`Relation`], both
//! join inputs are cloned into hash partitions, and a fresh thread scope is
//! spawned per operator. This module replaces that with the morsel-driven
//! scheme (Leis et al., and the direction §5 of the paper points to for
//! PRISMA/DB): a plan is decomposed at its **pipeline breakers** into
//! *pipelines* of streaming operators, and each pipeline runs in parallel
//! end to end — workers pull *morsels* (row chunks of `batch_size`) from a
//! shared work list with work stealing and push every morsel through the
//! whole operator chain, so a `σ → ⋈ → π` stretch of the plan produces
//! **zero** intermediate relations. Morsels travel as columnar
//! [`CountedBatch`]es end to end; a pure-column `π` directly above a
//! residual-free equi-join even fuses *into* the probe: join output
//! columns are gathered already projected, the concatenated row never
//! exists.
//!
//! The multiplicity laws make this exact:
//!
//! * σ/π act row-wise and `⊎` merely concatenates, so morsels commute with
//!   them freely;
//! * equi- and θ-joins multiply multiplicities per row pair, so the build
//!   side is built **once** and shared read-only behind an `Arc` — neither
//!   input is cloned into partitions. The equi-join build is
//!   **radix-partitioned**: the build pipeline's workers scatter their
//!   batches by key-hash radix, then each worker builds the hash table of
//!   exactly one partition — disjoint key spaces, no shared state, no
//!   merge step — yielding a [`RadixJoinTable`] whose probes visit only
//!   the partition their keys radix to;
//! * keyed group-by radix-partitions the same way: each worker owns a
//!   disjoint slice of the key space, aggregates it completely and
//!   finishes its own groups — partition results simply concatenate. The
//!   empty-key `γ` (one global group, which hash partitioning cannot
//!   split) and `δ` aggregate in **two phases** instead: thread-local
//!   [`AggState`]s / seen-sets over morsels, merged once;
//! * difference and intersection need the *merged* count of both sides
//!   (`max(0, m₁−m₂)`, `min(m₁, m₂)`), so they are breakers: both sides
//!   are evaluated as parallel pipelines into per-worker bags, merged, and
//!   the pointwise law is applied once.
//!
//! All workers come from the process-wide reusable [`crate::pool`] — no
//! per-operator thread spawns — and the calling thread is always one of
//! the workers, so execution completes even when the pool is saturated.
//! Worker panics surface as [`CoreError::WorkerPanicked`]. Agreement with
//! the reference evaluator across partition counts and morsel sizes is
//! property-tested in `tests/engine_equivalence.rs`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use mera_core::multiset::Bag;
use mera_core::prelude::*;
use mera_expr::rel::RelExpr;
use mera_expr::{Aggregate, ScalarExpr};
use rustc_hash::FxHashSet;

use crate::engine::ExecOptions;
use crate::physical::agg::AggState;
use crate::physical::column::radix_of;
use crate::physical::join::{
    extract_equi_condition, full_probe_cols, JoinTable, ProbeCol, RadixJoinTable,
};
use crate::physical::ops::{filter_batch, project_batch};
use crate::physical::planner::ext_project_schema;
use crate::physical::{Counted, CountedBatch};
use crate::pool;
use crate::provider::{RelationProvider, Schemas};

/// Evaluates an expression with the morsel-driven parallel engine using
/// `partitions` workers (and default batch/morsel size).
pub fn execute_morsel(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    partitions: usize,
) -> CoreResult<Relation> {
    let opts = ExecOptions {
        partitions,
        ..ExecOptions::default()
    };
    execute_morsel_with(expr, provider, &opts)
}

/// [`execute_morsel`] with full execution options. The batch size doubles
/// as the morsel size: the unit of work a worker claims from the shared
/// queue.
pub fn execute_morsel_with(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    expr.schema(&Schemas(provider))?;
    eval_morsel(expr, provider, opts)
}

/// Engine entry point (input already schema-checked).
pub(crate) fn eval_morsel(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    if opts.effective_partitions() == 1 {
        // one worker: the serial batched plan *is* the single-partition
        // morsel schedule — skip snapshotting and scheduling entirely
        return crate::physical::execute_with(expr, provider, opts);
    }
    let mut plan = compile(expr, provider, opts)?;
    let mut out = Relation::empty(Arc::clone(&plan.schema));
    if is_passthrough(&plan) {
        // the plan ended on a breaker (or is a bare scan): its rows are
        // final, so pour them straight into the relation
        match plan.legs.pop().expect("single leg").source {
            Source::Rel(rel) => {
                for (t, m) in rel.iter() {
                    out.insert(t.clone(), m)?;
                }
            }
            Source::Owned(rows) => {
                for (t, m) in rows {
                    out.insert(t, m)?;
                }
            }
        }
        return Ok(out);
    }
    for (t, m) in run_bag(plan, opts)? {
        out.insert(t, m)?;
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Pipeline representation
// ----------------------------------------------------------------------

/// Where a pipeline leg's rows come from.
enum Source<'a> {
    /// A stored relation, morselised without snapshotting tuples (workers
    /// clone only the rows their morsels touch).
    Rel(&'a Relation),
    /// Materialised output of an upstream pipeline breaker.
    Owned(Vec<Counted>),
}

/// Streaming (morsel-wise) operators. Each maps one columnar batch to the
/// next, with no state shared between morsels — shared structures
/// (`RadixJoinTable`s, loop-join inner sides) are read-only behind `Arc`s.
/// Schema-changing operators carry their output schema so batches can be
/// assembled without consulting pipeline state.
enum MorselOp {
    /// `σ_φ` — multiplicities pass through.
    Filter(ScalarExpr),
    /// Plain or extended `π` — collapsing rows merge downstream.
    Project {
        exprs: Vec<ScalarExpr>,
        schema: SchemaRef,
    },
    /// Equi-join probe against the shared radix-partitioned build table:
    /// `m₁ · m₂`. The probe keys are pre-resolved offsets, hashed in place
    /// per batch.
    HashProbe {
        table: Arc<RadixJoinTable>,
        keys: ResolvedAttrs,
        /// Full `left ⊕ right` output columns.
        cols: Vec<ProbeCol>,
        residual: Option<ScalarExpr>,
        /// Concatenated output schema.
        schema: SchemaRef,
        /// Arity of the probe side — where build-side columns start in the
        /// concatenated schema; lets a downstream pure-column projection
        /// fuse into the probe.
        left_arity: usize,
    },
    /// A residual-free equi-join probe fused with a pure-column projection:
    /// output columns are gathered directly from the two sides, so the
    /// concatenated intermediate never exists.
    ProbeProject {
        table: Arc<RadixJoinTable>,
        keys: ResolvedAttrs,
        cols: Vec<ProbeCol>,
        schema: SchemaRef,
    },
    /// θ-join / product against a shared materialised inner side.
    LoopProbe {
        rows: Arc<Vec<Counted>>,
        predicate: Option<ScalarExpr>,
        schema: SchemaRef,
    },
}

/// One leg of a pipeline: a source (with its schema, so morsels can be
/// assembled into columnar batches) plus the operator chain every one of
/// its morsels flows through. A pipeline has several legs exactly when
/// `⊎`-unions occur below the breaker — union is not a breaker, its sides
/// simply contribute their morsels to the same sink.
struct Leg<'a> {
    source: Source<'a>,
    schema: SchemaRef,
    ops: Vec<MorselOp>,
}

/// A fully-compiled pipeline: all legs feed one (per-worker, then merged)
/// sink. Breakers below it have already run.
struct Pipeline<'a> {
    legs: Vec<Leg<'a>>,
    schema: SchemaRef,
}

impl<'a> Pipeline<'a> {
    fn single(source: Source<'a>, schema: SchemaRef) -> Self {
        Pipeline {
            legs: vec![Leg {
                source,
                schema: Arc::clone(&schema),
                ops: Vec::new(),
            }],
            schema,
        }
    }

    fn push_op(&mut self, op: impl Fn() -> MorselOp) {
        for leg in &mut self.legs {
            leg.ops.push(op());
        }
    }
}

// ----------------------------------------------------------------------
// Plan → pipelines (breaker identification)
// ----------------------------------------------------------------------

/// Recursively decomposes `expr` into pipelines, **running** every
/// pipeline below a breaker as it is reached (post-order): join build
/// sides, group-bys, distincts, differences/intersections and closures
/// execute here, and their materialised results become `Source::Owned`
/// legs of the parent pipeline. What is returned is the topmost (still
/// unexecuted) pipeline, ready for the caller's sink.
fn compile<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    opts: &ExecOptions,
) -> CoreResult<Pipeline<'a>> {
    Ok(match expr {
        RelExpr::Scan(name) => {
            let rel = provider.relation(name)?;
            Pipeline::single(Source::Rel(rel), Arc::clone(rel.schema()))
        }
        RelExpr::Values(rel) => Pipeline::single(Source::Rel(rel), Arc::clone(rel.schema())),
        RelExpr::Union(l, r) => {
            let mut lp = compile(l, provider, opts)?;
            let rp = compile(r, provider, opts)?;
            lp.legs.extend(rp.legs);
            lp
        }
        RelExpr::Select { input, predicate } => {
            let mut p = compile(input, provider, opts)?;
            p.push_op(|| MorselOp::Filter(predicate.clone()));
            p
        }
        RelExpr::Project { input, attrs } => {
            let mut p = compile(input, provider, opts)?;
            let schema = Arc::new(p.schema.project(attrs)?);
            if !fuse_probe_project(&mut p, attrs.indexes(), &schema) {
                let exprs: Vec<ScalarExpr> = attrs
                    .indexes()
                    .iter()
                    .map(|&i| ScalarExpr::Attr(i))
                    .collect();
                p.push_op(|| MorselOp::Project {
                    exprs: exprs.clone(),
                    schema: Arc::clone(&schema),
                });
            }
            p.schema = schema;
            p
        }
        RelExpr::ExtProject { input, exprs } => {
            let mut p = compile(input, provider, opts)?;
            let schema = ext_project_schema(&p.schema, exprs)?;
            let fused = match attr_indexes(exprs) {
                Some(ix) => fuse_probe_project(&mut p, &ix, &schema),
                None => false,
            };
            if !fused {
                p.push_op(|| MorselOp::Project {
                    exprs: exprs.clone(),
                    schema: Arc::clone(&schema),
                });
            }
            p.schema = schema;
            p
        }
        RelExpr::Product(l, r) => {
            let mut lp = compile(l, provider, opts)?;
            let rp = compile(r, provider, opts)?;
            let schema = Arc::new(lp.schema.concat(&rp.schema));
            let rows = Arc::new(run_rows(rp, opts)?);
            lp.push_op(|| MorselOp::LoopProbe {
                rows: Arc::clone(&rows),
                predicate: None,
                schema: Arc::clone(&schema),
            });
            lp.schema = schema;
            lp
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let mut lp = compile(left, provider, opts)?;
            let rp = compile(right, provider, opts)?;
            let schema = Arc::new(lp.schema.concat(&rp.schema));
            match extract_equi_condition(predicate, lp.schema.arity(), rp.schema.arity()) {
                Some(cond) => {
                    // pipeline breaker: build the shared radix-partitioned
                    // table once, in parallel, from the build side's own
                    // pipeline; both key lists resolve to offsets here, at
                    // plan time
                    let build_keys = ResolvedAttrs::new(&cond.right_keys, rp.schema.arity())?;
                    let keys = ResolvedAttrs::new(&cond.left_keys, lp.schema.arity())?;
                    let left_arity = lp.schema.arity();
                    let cols = full_probe_cols(left_arity, rp.schema.arity());
                    let table = Arc::new(run_build(rp, build_keys, opts)?);
                    lp.push_op(|| MorselOp::HashProbe {
                        table: Arc::clone(&table),
                        keys: keys.clone(),
                        cols: cols.clone(),
                        residual: cond.residual.clone(),
                        schema: Arc::clone(&schema),
                        left_arity,
                    });
                }
                None => {
                    let rows = Arc::new(run_rows(rp, opts)?);
                    lp.push_op(|| MorselOp::LoopProbe {
                        rows: Arc::clone(&rows),
                        predicate: Some(predicate.clone()),
                        schema: Arc::clone(&schema),
                    });
                }
            }
            lp.schema = schema;
            lp
        }
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let p = compile(input, provider, opts)?;
            let in_type = p.schema.dtype(*attr)?;
            let key_list = if keys.is_empty() {
                None
            } else {
                let list = AttrList::new_unique(keys.clone())?;
                list.check_arity(p.schema.arity())?;
                Some(list)
            };
            let key_schema = match &key_list {
                Some(list) => p.schema.project(list)?,
                None => Schema::new(vec![]),
            };
            let schema = Arc::new(key_schema.with_attr(Attribute::anon(agg.result_type(in_type)?)));
            let resolved = match &key_list {
                Some(list) => Some(ResolvedAttrs::from_attr_list(list, p.schema.arity())?),
                None => None,
            };
            let rows = run_agg(p, resolved, *agg, *attr - 1, in_type, opts)?;
            Pipeline::single(Source::Owned(rows), schema)
        }
        RelExpr::Distinct(input) => {
            let p = compile(input, provider, opts)?;
            let schema = Arc::clone(&p.schema);
            let rows = run_distinct(p, opts)?;
            Pipeline::single(Source::Owned(rows), schema)
        }
        RelExpr::Difference(l, r) => {
            let lp = compile(l, provider, opts)?;
            let schema = Arc::clone(&lp.schema);
            let lb = run_bag(lp, opts)?;
            let rb = run_bag(compile(r, provider, opts)?, opts)?;
            Pipeline::single(Source::Owned(bag_rows(lb.difference(&rb))), schema)
        }
        RelExpr::Intersect(l, r) => {
            let lp = compile(l, provider, opts)?;
            let schema = Arc::clone(&lp.schema);
            let lb = run_bag(lp, opts)?;
            let rb = run_bag(compile(r, provider, opts)?, opts)?;
            Pipeline::single(Source::Owned(bag_rows(lb.intersection(&rb))), schema)
        }
        RelExpr::Closure(input) => {
            let p = compile(input, provider, opts)?;
            let schema = Arc::clone(&p.schema);
            let bag = run_bag(p, opts)?;
            let mut rel = Relation::empty(Arc::clone(&schema));
            for (t, m) in bag {
                rel.insert(t, m)?;
            }
            let closed = crate::reference::transitive_closure(&rel)?;
            let rows: Vec<Counted> = closed.iter().map(|(t, m)| (t.clone(), m)).collect();
            Pipeline::single(Source::Owned(rows), schema)
        }
    })
}

fn bag_rows(bag: Bag<Tuple>) -> Vec<Counted> {
    bag.into_iter().collect()
}

/// Extracts plain column picks from a projection list: `Some` exactly when
/// every expression is a bare (1-based) attribute reference.
fn attr_indexes(exprs: &[ScalarExpr]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|e| match e {
            ScalarExpr::Attr(i) => Some(*i),
            _ => None,
        })
        .collect()
}

/// Fuses a pure-column projection into the residual-free equi-join probe
/// directly below it: each leg's trailing [`MorselOp::HashProbe`] becomes a
/// [`MorselOp::ProbeProject`] that gathers output columns in projected
/// form, so the concatenated intermediate batch never exists. Returns
/// `false` (and fuses nothing) unless *every* leg ends in such a probe:
/// probes with a residual need the full concatenated row to evaluate it,
/// and other trailing ops have nothing to fuse with.
fn fuse_probe_project(p: &mut Pipeline<'_>, indexes: &[usize], out_schema: &SchemaRef) -> bool {
    let fusable = !p.legs.is_empty()
        && p.legs.iter().all(|leg| {
            matches!(
                leg.ops.last(),
                Some(MorselOp::HashProbe { residual: None, .. })
            )
        });
    if !fusable {
        return false;
    }
    for leg in &mut p.legs {
        let Some(MorselOp::HashProbe {
            table,
            keys,
            cols: _,
            residual: None,
            schema: _,
            left_arity,
        }) = leg.ops.pop()
        else {
            unreachable!("every leg ends in a residual-free probe");
        };
        let cols = indexes
            .iter()
            .map(|&i| {
                if i <= left_arity {
                    ProbeCol::Left(i - 1)
                } else {
                    ProbeCol::Right(i - 1 - left_arity)
                }
            })
            .collect();
        leg.ops.push(MorselOp::ProbeProject {
            table,
            keys,
            cols,
            schema: Arc::clone(out_schema),
        });
    }
    true
}

// ----------------------------------------------------------------------
// Sinks (per-worker state, merged once per pipeline)
// ----------------------------------------------------------------------

/// Thread-local endpoint of a pipeline: each worker folds the batches it
/// produces into its own sink; the driver merges the per-worker sinks
/// after the fork-join.
trait Sink: Send {
    fn consume(&mut self, batch: CountedBatch) -> CoreResult<()>;
}

/// Plain concatenation (unmerged counted rows) — inner sides of loop
/// joins, where duplicate rows are fine.
#[derive(Default)]
struct RowsSink(Vec<Counted>);

impl Sink for RowsSink {
    fn consume(&mut self, batch: CountedBatch) -> CoreResult<()> {
        self.0.extend(batch.into_rows());
        Ok(())
    }
}

/// Merged counted bag — final collection and the difference/intersection
/// breakers, whose laws need total multiplicities.
#[derive(Default)]
struct BagSink(Bag<Tuple>);

impl Sink for BagSink {
    fn consume(&mut self, batch: CountedBatch) -> CoreResult<()> {
        for (t, m) in batch {
            self.0.insert(t, m)?;
        }
        Ok(())
    }
}

/// Phase one of radix-partitioned build/aggregation: scatter every batch
/// into per-partition buffers by the radix of its key-column hash. Columns
/// append cell-wise (`append_gather`), so a batch costs O(partitions)
/// buffer growths, not a per-row allocation.
struct RadixSink {
    /// 0-based key column offsets to hash.
    offsets: Vec<usize>,
    /// One buffer per radix partition.
    parts: Vec<CountedBatch>,
}

impl RadixSink {
    fn new(offsets: Vec<usize>, schema: &SchemaRef, parts: usize) -> Self {
        RadixSink {
            offsets,
            parts: (0..parts)
                .map(|_| CountedBatch::new(Arc::clone(schema)))
                .collect(),
        }
    }
}

impl Sink for RadixSink {
    fn consume(&mut self, batch: CountedBatch) -> CoreResult<()> {
        let n = self.parts.len();
        if n == 1 {
            self.parts[0].append(&batch);
            return Ok(());
        }
        let hashes = batch.key_hashes(&self.offsets);
        let mut sels: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, &h) in hashes.iter().enumerate() {
            sels[radix_of(h, n)].push(i as u32);
        }
        for (pi, sel) in sels.iter().enumerate() {
            if !sel.is_empty() {
                self.parts[pi].append_gather(&batch, sel);
            }
        }
        Ok(())
    }
}

/// Phase one of two-phase aggregation (empty-key `γ` only — keyed `γ`
/// radix-partitions instead).
struct AggSink(AggState);

impl Sink for AggSink {
    fn consume(&mut self, batch: CountedBatch) -> CoreResult<()> {
        self.0.update_batch(&batch)
    }
}

/// Phase one of two-phase duplicate elimination.
#[derive(Default)]
struct DistinctSink(FxHashSet<Tuple>);

impl Sink for DistinctSink {
    fn consume(&mut self, batch: CountedBatch) -> CoreResult<()> {
        for (t, _) in batch {
            self.0.insert(t);
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Breaker drivers
// ----------------------------------------------------------------------

/// True when the pipeline is a single leg with no operators — its source
/// rows *are* the result, so scheduling morsels would only re-copy them.
fn is_passthrough(p: &Pipeline<'_>) -> bool {
    p.legs.len() == 1 && p.legs[0].ops.is_empty()
}

/// Runs a pipeline into unmerged rows (loop-join inner sides).
fn run_rows(mut p: Pipeline<'_>, opts: &ExecOptions) -> CoreResult<Vec<Counted>> {
    if is_passthrough(&p) {
        return Ok(match p.legs.pop().expect("single leg").source {
            Source::Rel(rel) => rel.iter().map(|(t, m)| (t.clone(), m)).collect(),
            Source::Owned(rows) => rows,
        });
    }
    let sinks = run_pipeline(&p.legs, opts, RowsSink::default)?;
    let mut out = Vec::new();
    for s in sinks {
        out.extend(s.0);
    }
    Ok(out)
}

/// Runs a pipeline into one merged bag.
fn run_bag(mut p: Pipeline<'_>, opts: &ExecOptions) -> CoreResult<Bag<Tuple>> {
    if is_passthrough(&p) {
        let mut out = Bag::default();
        match p.legs.pop().expect("single leg").source {
            Source::Rel(rel) => {
                for (t, m) in rel.iter() {
                    out.insert(t.clone(), m)?;
                }
            }
            Source::Owned(rows) => {
                for (t, m) in rows {
                    out.insert(t, m)?;
                }
            }
        }
        return Ok(out);
    }
    let sinks = run_pipeline(&p.legs, opts, BagSink::default)?;
    let mut iter = sinks.into_iter();
    let mut out = iter.next().map(|s| s.0).unwrap_or_default();
    for s in iter {
        out.absorb(s.0)?;
    }
    Ok(out)
}

/// Regroups per-worker radix buffers by partition: partition `pi` gets
/// every worker's `pi`-th buffer (empty buffers dropped).
fn regroup_radix(sinks: Vec<RadixSink>, parts: usize) -> Vec<Vec<CountedBatch>> {
    let mut grouped: Vec<Vec<CountedBatch>> = (0..parts).map(|_| Vec::new()).collect();
    for s in sinks {
        for (pi, b) in s.parts.into_iter().enumerate() {
            if !b.is_empty() {
                grouped[pi].push(b);
            }
        }
    }
    grouped
}

/// Runs a build-side pipeline into a radix-partitioned hash table: phase
/// one scatters the pipeline's output batches into per-worker radix
/// buffers, phase two gives each worker exactly one partition's buffers to
/// build into its own [`JoinTable`] — disjoint key spaces, so the tables
/// are complete as built and there is no merge step.
fn run_build(
    p: Pipeline<'_>,
    keys: ResolvedAttrs,
    opts: &ExecOptions,
) -> CoreResult<RadixJoinTable> {
    let parts = worker_count(opts);
    let schema = Arc::clone(&p.schema);
    let offsets = keys.offsets().to_vec();
    let sinks = run_pipeline(&p.legs, opts, || {
        RadixSink::new(offsets.clone(), &schema, parts)
    })?;
    let grouped = regroup_radix(sinks, parts);
    let slots: Vec<Mutex<Option<JoinTable>>> = (0..parts).map(|_| Mutex::new(None)).collect();
    pool::global().run_workers(parts, &|w| {
        let mut table = JoinTable::new(keys.clone(), Arc::clone(&schema));
        for b in &grouped[w] {
            table.insert_batch(b);
        }
        *slots[w].lock().expect("no panics while holding slot lock") = Some(table);
    })?;
    let tables = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("workers joined")
                .expect("worker filled its slot")
        })
        .collect();
    Ok(RadixJoinTable::new(tables))
}

/// Parallel group-by. With keys, **radix-partitioned**: phase one scatters
/// batches by key-hash radix, phase two has each worker aggregate and
/// [`finish`](AggState::finish) its own partition outright — disjoint key
/// spaces, so partition results concatenate with no merge. The empty key
/// list (one global group) cannot be partitioned and keeps the two-phase
/// shape: thread-local [`AggState`]s, one merge, one finish. Both are
/// exact for every aggregate.
fn run_agg(
    p: Pipeline<'_>,
    keys: Option<ResolvedAttrs>,
    agg: Aggregate,
    attr0: usize,
    in_type: DataType,
    opts: &ExecOptions,
) -> CoreResult<Vec<Counted>> {
    let Some(keys) = keys else {
        let sinks = run_pipeline(&p.legs, opts, || AggSink(AggState::new(None, attr0)))?;
        let mut iter = sinks.into_iter();
        let mut state = match iter.next() {
            Some(s) => s.0,
            None => AggState::new(None, attr0),
        };
        for s in iter {
            state.merge(s.0)?;
        }
        return state.finish(agg, in_type);
    };
    let parts = worker_count(opts);
    let schema = Arc::clone(&p.schema);
    let offsets = keys.offsets().to_vec();
    let sinks = run_pipeline(&p.legs, opts, || {
        RadixSink::new(offsets.clone(), &schema, parts)
    })?;
    let grouped = regroup_radix(sinks, parts);
    let slots: Vec<Mutex<Option<CoreResult<Vec<Counted>>>>> =
        (0..parts).map(|_| Mutex::new(None)).collect();
    pool::global().run_workers(parts, &|w| {
        let run = || -> CoreResult<Vec<Counted>> {
            let mut state = AggState::new(Some(keys.clone()), attr0);
            for b in &grouped[w] {
                state.update_batch(b)?;
            }
            state.finish(agg, in_type)
        };
        *slots[w].lock().expect("no panics while holding slot lock") = Some(run());
    })?;
    let mut out = Vec::new();
    for s in slots {
        out.extend(
            s.into_inner()
                .expect("workers joined")
                .expect("worker filled its slot")?,
        );
    }
    Ok(out)
}

/// Two-phase parallel `δ`: thread-local seen-sets, one set union.
fn run_distinct(p: Pipeline<'_>, opts: &ExecOptions) -> CoreResult<Vec<Counted>> {
    let sinks = run_pipeline(&p.legs, opts, DistinctSink::default)?;
    let mut iter = sinks.into_iter();
    let mut seen = iter.next().map(|s| s.0).unwrap_or_default();
    for s in iter {
        seen.extend(s.0);
    }
    Ok(seen.into_iter().map(|t| (t, 1)).collect())
}

// ----------------------------------------------------------------------
// The morsel scheduler
// ----------------------------------------------------------------------

/// Number of hardware threads — the cap on useful pipeline workers.
pub(crate) fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Workers per pipeline (also the radix partition count, so phase-two
/// partition work saturates the same pool): morsel parallelism comes from
/// hardware threads, not the requested partition count — extra workers on
/// the same cores only add scheduling and merge overhead (Leis et al. size
/// the pool to hardware threads), and exactness never depends on the
/// worker count.
fn worker_count(opts: &ExecOptions) -> usize {
    opts.effective_partitions().min(hardware_threads())
}

/// A claimable unit of work: one chunk of one leg's source rows.
enum Chunk<'e> {
    Borrowed(&'e [(&'e Tuple, u64)]),
    Owned(&'e [Counted]),
}

struct Morsel<'e> {
    leg: usize,
    chunk: Chunk<'e>,
}

/// Runs every leg's morsels through its operator chain on the worker
/// pool: morsels are dealt round-robin into per-worker lanes; each worker
/// drains its own lane front-to-back and then **steals** from the other
/// lanes (back-to-front) until no morsels remain, so a skewed or
/// pool-starved schedule still finishes — in the limit the calling thread
/// alone drains every lane. Returns one sink per worker.
fn run_pipeline<'env, S, F>(
    legs: &[Leg<'env>],
    opts: &ExecOptions,
    make_sink: F,
) -> CoreResult<Vec<S>>
where
    S: Sink,
    F: Fn() -> S + Sync,
{
    let workers = worker_count(opts);
    let morsel_size = opts.effective_batch_size();

    // snapshot stored-relation iterators as (ref, count) rows — tuples
    // themselves are not cloned here, only when a worker materialises a
    // morsel it actually claimed
    let snapshots: Vec<Option<Vec<(&Tuple, u64)>>> = legs
        .iter()
        .map(|leg| match &leg.source {
            Source::Rel(rel) => Some(rel.iter().collect()),
            Source::Owned(_) => None,
        })
        .collect();

    let mut morsels: Vec<Morsel<'_>> = Vec::new();
    for (li, leg) in legs.iter().enumerate() {
        match &leg.source {
            Source::Rel(_) => {
                let rows = snapshots[li].as_ref().expect("snapshotted above");
                for chunk in rows.chunks(morsel_size) {
                    morsels.push(Morsel {
                        leg: li,
                        chunk: Chunk::Borrowed(chunk),
                    });
                }
            }
            Source::Owned(rows) => {
                for chunk in rows.chunks(morsel_size) {
                    morsels.push(Morsel {
                        leg: li,
                        chunk: Chunk::Owned(chunk),
                    });
                }
            }
        }
    }

    // a single worker (or a single morsel) needs no scheduling
    if workers == 1 || morsels.len() <= 1 {
        let mut sink = make_sink();
        for m in morsels {
            process_morsel(&legs[m.leg], &m.chunk, &mut sink)?;
        }
        return Ok(vec![sink]);
    }

    let lanes: Vec<Mutex<VecDeque<Morsel<'_>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, m) in morsels.into_iter().enumerate() {
        lanes[i % workers]
            .lock()
            .expect("fresh lane lock")
            .push_back(m);
    }

    let results: Mutex<Vec<CoreResult<S>>> = Mutex::new(Vec::with_capacity(workers));
    let failed = AtomicBool::new(false);
    pool::global().run_workers(workers, &|w| {
        let mut sink = make_sink();
        let mut res: CoreResult<()> = Ok(());
        'work: for off in 0..workers {
            let own = off == 0;
            let lane = &lanes[(w + off) % workers];
            loop {
                if failed.load(Ordering::Relaxed) {
                    break 'work;
                }
                let next = {
                    let mut lane = lane.lock().expect("no panics while holding lane lock");
                    if own {
                        lane.pop_front()
                    } else {
                        lane.pop_back()
                    }
                };
                let Some(m) = next else { break };
                if let Err(e) = process_morsel(&legs[m.leg], &m.chunk, &mut sink) {
                    failed.store(true, Ordering::Relaxed);
                    res = Err(e);
                    break 'work;
                }
            }
        }
        results
            .lock()
            .expect("no panics while holding results lock")
            .push(res.map(|()| sink));
    })?;

    let mut sinks = Vec::with_capacity(workers);
    for r in results.into_inner().expect("workers joined") {
        sinks.push(r?);
    }
    Ok(sinks)
}

/// Materialises one morsel as a columnar batch and pushes it through the
/// whole operator chain into the worker's sink.
fn process_morsel<S: Sink>(leg: &Leg<'_>, chunk: &Chunk<'_>, sink: &mut S) -> CoreResult<()> {
    let len = match chunk {
        Chunk::Borrowed(s) => s.len(),
        Chunk::Owned(s) => s.len(),
    };
    let mut batch = CountedBatch::with_capacity(Arc::clone(&leg.schema), len);
    match chunk {
        Chunk::Borrowed(s) => {
            for (t, m) in *s {
                batch.push_row(t, *m);
            }
        }
        Chunk::Owned(s) => {
            for (t, m) in *s {
                batch.push_row(t, *m);
            }
        }
    }
    for op in &leg.ops {
        if batch.is_empty() {
            return Ok(());
        }
        match apply_op(op, batch)? {
            Some(b) => batch = b,
            None => return Ok(()),
        }
    }
    if !batch.is_empty() {
        sink.consume(batch)?;
    }
    Ok(())
}

fn apply_op(op: &MorselOp, batch: CountedBatch) -> CoreResult<Option<CountedBatch>> {
    match op {
        MorselOp::Filter(predicate) => filter_batch(predicate, batch),
        MorselOp::Project { exprs, schema } => project_batch(exprs, schema, batch).map(Some),
        MorselOp::HashProbe {
            table,
            keys,
            cols,
            residual,
            schema,
            left_arity: _,
        } => table.probe_batch(&batch, keys, cols, schema, residual.as_ref()),
        MorselOp::ProbeProject {
            table,
            keys,
            cols,
            schema,
        } => table.probe_batch(&batch, keys, cols, schema, None),
        MorselOp::LoopProbe {
            rows: inner,
            predicate,
            schema,
        } => {
            let mut out = CountedBatch::new(Arc::clone(schema));
            for i in 0..batch.len() {
                let lt = batch.row(i);
                let lm = batch.counts()[i];
                for (rt, rm) in inner.iter() {
                    let joined = lt.concat(rt);
                    let keep = match predicate {
                        None => true,
                        Some(p) => p.eval_predicate(&joined)?,
                    };
                    if keep {
                        let m = lm
                            .checked_mul(*rm)
                            .ok_or(CoreError::Overflow("join multiplicity"))?;
                        out.push_row(&joined, m);
                    }
                }
            }
            Ok((!out.is_empty()).then_some(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use mera_core::tuple;
    use mera_expr::{CmpOp, ScalarExpr};

    fn db() -> Database {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
            .with("s", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh")
            .with("edges", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh");
        let mut db = Database::new(schema);
        let rs = Arc::clone(db.schema().get("r").expect("declared"));
        let mut r = Relation::empty(rs);
        for i in 0..300_i64 {
            r.insert(tuple![i % 23, i], (i % 4 + 1) as u64)
                .expect("typed");
        }
        db.replace("r", r).expect("replace");
        let ss = Arc::clone(db.schema().get("s").expect("declared"));
        let mut s = Relation::empty(ss);
        for i in 0..23_i64 {
            s.insert(tuple![i, format!("g{}", i % 7)], (i % 2 + 1) as u64)
                .expect("typed");
        }
        db.replace("s", s).expect("replace");
        let es = Arc::clone(db.schema().get("edges").expect("declared"));
        let mut e = Relation::empty(es);
        for i in 0..12_i64 {
            e.insert(tuple![i, i + 1], 1).expect("typed");
        }
        db.replace("edges", e).expect("replace");
        db
    }

    /// Plans covering every operator class, including the ones hash
    /// partitioning cannot parallelize: δ, empty-key γ, − and ∩.
    fn plans() -> Vec<RelExpr> {
        let r = RelExpr::scan("r");
        let s = RelExpr::scan("s");
        vec![
            // whole pipeline: σ → ⋈ → π → γ
            r.clone()
                .select(ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::int(250)))
                .join(s.clone(), ScalarExpr::attr(1).eq(ScalarExpr::attr(3)))
                .project(&[4, 2])
                .group_by(&[1], Aggregate::Sum, 2),
            // equi-join with residual
            r.clone().join(
                s.clone(),
                ScalarExpr::attr(1)
                    .eq(ScalarExpr::attr(3))
                    .and(ScalarExpr::attr(2).cmp(CmpOp::Gt, ScalarExpr::int(100))),
            ),
            // θ-join (no equi-key) and product
            s.clone().join(
                s.clone(),
                ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3)),
            ),
            s.clone().product(s.clone()),
            // empty-key γ — unparallelizable by hash partitioning
            r.clone().group_by(&[], Aggregate::Avg, 2),
            r.clone().group_by(&[], Aggregate::Cnt, 1),
            // δ over a collapsing projection
            r.clone().project(&[1]).distinct(),
            // difference / intersection pipeline breakers
            r.clone()
                .difference(r.clone().select(ScalarExpr::attr(1).eq(ScalarExpr::int(3)))),
            r.clone().intersect(r.clone()),
            // union feeding a breaker: two legs, one sink
            r.clone().union(r.clone()).group_by(&[1], Aggregate::Cnt, 2),
            // extended projection arithmetic
            r.clone()
                .ext_project(vec![
                    ScalarExpr::attr(1).mul(ScalarExpr::int(3)),
                    ScalarExpr::attr(2),
                ])
                .select(ScalarExpr::attr(1).cmp(CmpOp::Ge, ScalarExpr::int(30))),
            // transitive closure (§5)
            RelExpr::scan("edges").closure(),
            // aggregates over a join result
            r.join(s, ScalarExpr::attr(1).eq(ScalarExpr::attr(3)))
                .group_by(&[4], Aggregate::Min, 2),
        ]
    }

    #[test]
    fn morsel_agrees_with_reference_across_partitions_and_morsel_sizes() {
        let db = db();
        for e in plans() {
            let want = reference::eval(&e, &db).expect("reference evaluates");
            for partitions in [1, 2, 8] {
                for batch_size in [1, 7, 1024] {
                    let opts = ExecOptions {
                        batch_size,
                        partitions,
                    };
                    let got = execute_morsel_with(&e, &db, &opts).expect("morsel evaluates");
                    assert_eq!(
                        got, want,
                        "partitions={partitions} batch={batch_size} plan={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_input_aggregates_match_reference_errors() {
        let db = db();
        let empty = RelExpr::scan("r").select(ScalarExpr::bool(false));
        // MIN over an empty multi-set is a partial function — the parallel
        // merge phase must surface the same error as the reference
        let e = empty.clone().group_by(&[], Aggregate::Min, 2);
        let want = reference::eval(&e, &db).expect_err("partial function");
        let got = execute_morsel(&e, &db, 4).expect_err("partial function");
        assert_eq!(got, want);
        // CNT over empty input yields a single 0 row
        let e = empty.group_by(&[], Aggregate::Cnt, 1);
        let want = reference::eval(&e, &db).expect("total");
        assert_eq!(execute_morsel(&e, &db, 4).expect("total"), want);
    }

    #[test]
    fn runtime_errors_propagate_from_workers() {
        let db = db();
        // division by zero inside a selection predicate, hit mid-pipeline
        let e = RelExpr::scan("r").select(
            ScalarExpr::int(1)
                .div(ScalarExpr::attr(1).sub(ScalarExpr::attr(1)))
                .eq(ScalarExpr::int(1)),
        );
        let got = execute_morsel(&e, &db, 4).expect_err("divides by zero");
        assert_eq!(got, CoreError::DivisionByZero);
    }

    #[test]
    fn more_partitions_than_rows_is_fine() {
        let db = db();
        let e = RelExpr::scan("s").group_by(&[2], Aggregate::Cnt, 1);
        let want = reference::eval(&e, &db).expect("reference");
        let got = execute_morsel(&e, &db, 64).expect("morsel");
        assert_eq!(got, want);
    }

    #[test]
    fn invalid_expressions_are_rejected_up_front() {
        let db = db();
        assert!(execute_morsel(&RelExpr::scan("zzz"), &db, 4).is_err());
    }
}
