//! Access to stored relations during evaluation.

use mera_core::prelude::*;
use mera_expr::SchemaProvider;

/// Supplies relation *instances* by name — what an evaluator needs on top
/// of the schema-only [`SchemaProvider`].
pub trait RelationProvider {
    /// The current instance of the relation called `name`.
    fn relation(&self, name: &str) -> CoreResult<&Relation>;
}

impl RelationProvider for Database {
    fn relation(&self, name: &str) -> CoreResult<&Relation> {
        Database::relation(self, name)
    }
}

/// Adapter exposing any [`RelationProvider`] as a [`SchemaProvider`].
pub struct Schemas<'a, P: RelationProvider + ?Sized>(pub &'a P);

impl<P: RelationProvider + ?Sized> SchemaProvider for Schemas<'_, P> {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        Ok(std::sync::Arc::clone(self.0.relation(name)?.schema()))
    }
}

/// A provider with no relations, for self-contained `Values` trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRelations;

impl RelationProvider for NoRelations {
    fn relation(&self, name: &str) -> CoreResult<&Relation> {
        Err(CoreError::UnknownRelation(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_relations_always_errors() {
        assert!(NoRelations.relation("r").is_err());
        assert!(Schemas(&NoRelations).relation_schema("r").is_err());
    }

    #[test]
    fn database_provides_relations_and_schemas() {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int]))
            .unwrap();
        let db = Database::new(schema);
        assert!(RelationProvider::relation(&db, "r").is_ok());
        assert_eq!(Schemas(&db).relation_schema("r").unwrap().arity(), 1);
        assert!(Schemas(&db).relation_schema("s").is_err());
    }
}
