//! A lazily-initialized, process-wide worker pool for parallel execution.
//!
//! The morsel-driven engine ([`crate::morsel`]) runs every pipeline on this
//! pool instead of spawning fresh threads per operator. Threads are started
//! on first use, grow to the largest worker count any query has asked for
//! (capped), and are reused across queries for the lifetime of the process.
//!
//! [`WorkerPool::run_workers`] is a *scoped* fork-join: `n` logical workers
//! run the given closure — `n − 1` as pool jobs, one on the calling thread —
//! and the call does not return until every worker has finished, so the
//! closure may borrow stack data. Deadlock-freedom does not depend on pool
//! capacity: the calling thread is always one of the workers, and the
//! morsel scheduler lets any single worker drain the whole work list, so a
//! query completes even if every pool thread is busy elsewhere.
//!
//! Panics inside a worker are caught at the job boundary and surfaced as
//! [`CoreError::WorkerPanicked`]; a failing partition degrades the query to
//! an error instead of aborting the process, and the pool thread survives
//! to serve later queries.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

use mera_core::prelude::*;

/// A pool job with its borrow lifetime erased. Soundness is maintained by
/// [`WorkerPool::run_workers`], which never returns (or unwinds) before
/// every job it submitted has completed.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Upper bound on pool threads, regardless of requested partition counts.
/// Requests beyond the cap still complete: excess workers simply queue and
/// the remaining morsels are drained by the workers that do run.
const MAX_POOL_THREADS: usize = 64;

struct PoolInner {
    queue: VecDeque<Job>,
    threads: usize,
}

/// The reusable worker pool. One process-wide instance is obtained via
/// [`global`]; its threads are daemonic and live until process exit.
pub(crate) struct WorkerPool {
    inner: Mutex<PoolInner>,
    job_ready: Condvar,
}

/// The process-wide pool, created on first use.
pub(crate) fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool {
        inner: Mutex::new(PoolInner {
            queue: VecDeque::new(),
            threads: 0,
        }),
        job_ready: Condvar::new(),
    })
}

/// Locks a mutex, ignoring poisoning: pool state stays usable even if a
/// panic ever escapes a job (jobs are individually unwind-caught, so this
/// is a second line of defence, not the primary one).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Renders a panic payload for [`CoreError::WorkerPanicked`].
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Per-call fork-join bookkeeping shared between the caller and its jobs.
struct CallState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<String>>,
}

impl CallState {
    /// Blocks until every submitted job has completed.
    fn wait(&self) {
        let mut pending = lock_ignore_poison(&self.pending);
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks one job complete, waking the waiter on the last one.
    fn complete_one(&self) {
        let mut pending = lock_ignore_poison(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    /// Records a panic message (first one wins).
    fn record_panic(&self, msg: String) {
        let mut slot = lock_ignore_poison(&self.panic);
        slot.get_or_insert(msg);
    }
}

/// Waits for outstanding jobs on drop, so [`WorkerPool::run_workers`] never
/// unwinds past jobs that still borrow the caller's stack.
struct WaitGuard<'a>(&'a CallState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

impl WorkerPool {
    /// Grows the pool so at least `wanted` threads exist (up to the cap).
    fn ensure_threads(&'static self, wanted: usize) {
        let wanted = wanted.min(MAX_POOL_THREADS);
        let mut inner = lock_ignore_poison(&self.inner);
        while inner.threads < wanted {
            let id = inner.threads;
            let spawned = thread::Builder::new()
                .name(format!("mera-worker-{id}"))
                .spawn(move || self.worker_loop());
            match spawned {
                Ok(_) => inner.threads += 1,
                // Out of threads: stop growing; the calling thread and any
                // existing workers still drain every job.
                Err(_) => break,
            }
        }
    }

    fn worker_loop(&'static self) {
        loop {
            let job = {
                let mut inner = lock_ignore_poison(&self.inner);
                loop {
                    if let Some(job) = inner.queue.pop_front() {
                        break job;
                    }
                    inner = self
                        .job_ready
                        .wait(inner)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            job();
        }
    }

    /// The number of live pool threads (for tests and diagnostics).
    #[cfg(test)]
    fn thread_count(&self) -> usize {
        lock_ignore_poison(&self.inner).threads
    }

    /// Runs `worker(i)` for every `i in 0..n` and returns once all have
    /// finished: workers `1..n` are submitted to the pool, worker `0` runs
    /// on the calling thread. The closure may borrow from the caller's
    /// stack (`'env`). Any panicking worker yields
    /// `Err(CoreError::WorkerPanicked)` after the remaining workers finish.
    pub(crate) fn run_workers<'env>(
        &'static self,
        n: usize,
        worker: &'env (dyn Fn(usize) + Sync + 'env),
    ) -> CoreResult<()> {
        if n == 0 {
            return Ok(());
        }
        let state = Arc::new(CallState {
            pending: Mutex::new(n - 1),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        if n > 1 {
            self.ensure_threads(n - 1);
            let mut inner = lock_ignore_poison(&self.inner);
            for i in 1..n {
                let state = Arc::clone(&state);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| worker(i))) {
                        state.record_panic(panic_message(payload.as_ref()));
                    }
                    state.complete_one();
                });
                // SAFETY: the job borrows only `'env` data (the `worker`
                // reference). `run_workers` waits — via WaitGuard even on
                // unwind — until `pending == 0`, i.e. until this closure has
                // run to completion, before returning. The borrow therefore
                // never outlives its referent.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
                inner.queue.push_back(job);
            }
            drop(inner);
            self.job_ready.notify_all();
        }
        let guard = WaitGuard(&state);
        let own = catch_unwind(AssertUnwindSafe(|| worker(0)));
        drop(guard);
        if let Err(payload) = own {
            return Err(CoreError::WorkerPanicked(panic_message(payload.as_ref())));
        }
        if let Some(msg) = lock_ignore_poison(&state.panic).take() {
            return Err(CoreError::WorkerPanicked(msg));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_and_borrow_stack_data() {
        let hits = AtomicUsize::new(0);
        let local = [1usize, 2, 3, 4, 5, 6, 7, 8];
        global()
            .run_workers(8, &|i| {
                hits.fetch_add(local[i], Ordering::SeqCst);
            })
            .expect("no worker panics");
        assert_eq!(hits.load(Ordering::SeqCst), 36);
    }

    #[test]
    fn panicking_worker_becomes_error_and_pool_survives() {
        let err = global()
            .run_workers(4, &|i| {
                if i == 2 {
                    panic!("injected worker panic");
                }
            })
            .expect_err("panic must surface");
        match err {
            CoreError::WorkerPanicked(msg) => assert!(msg.contains("injected worker panic")),
            other => panic!("wrong error: {other:?}"),
        }
        // the pool remains usable after a caught panic
        let hits = AtomicUsize::new(0);
        global()
            .run_workers(4, &|_| {
                hits.fetch_add(1, Ordering::SeqCst);
            })
            .expect("pool survives");
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_thread_panic_is_caught_too() {
        let err = global()
            .run_workers(1, &|_| panic!("caller-side panic"))
            .expect_err("panic must surface");
        assert!(matches!(err, CoreError::WorkerPanicked(_)));
    }

    #[test]
    fn pool_reuses_threads_across_calls() {
        let pool = global();
        pool.run_workers(3, &|_| {}).expect("runs");
        let after_first = pool.thread_count();
        for _ in 0..10 {
            pool.run_workers(3, &|_| {}).expect("runs");
        }
        // repeated same-width runs must not spawn new threads
        assert_eq!(pool.thread_count(), after_first);
    }

    #[test]
    fn zero_workers_is_a_no_op() {
        global()
            .run_workers(0, &|_| panic!("never runs"))
            .expect("ok");
    }
}
