//! Declared key constraints and their O(|Δ|) enforcement.
//!
//! A **key** over the bag model is stronger than over sets: `K` is a key
//! of `r` iff every point of the `K`-projection carries a summed
//! multiplicity of at most one — so a keyed relation is necessarily
//! duplicate-free. Declarations are the ground facts of the analyzer's
//! plan-property inference (`mera-analyze`'s `KeyEnv`); this module owns
//! their runtime side: a [`KeySet`] keeps, per declared key, the count of
//! tuples at each key point, so a commit is admitted or rejected by
//! folding only its signed delta — O(|Δ|), never O(|r|) — against the
//! same [`SignedBag`] machinery that maintains indexes and statistics.
//!
//! Enforcement is two-phase: [`KeySet::check`] is pure and runs for every
//! relation's delta *before* anything is applied, so a violating
//! transaction aborts without any undo; [`KeySet::apply_commit`] then
//! folds the admitted deltas in. Only the declarations are durable (a WAL
//! `DeclareKey` record); the counts are rebuilt from the database on
//! recovery, exactly like index entries.

use mera_core::prelude::*;
use rustc_hash::FxHashMap;

/// A commit (or declaration) that would leave some key point with a
/// summed multiplicity above one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyViolation {
    /// The constrained relation.
    pub relation: String,
    /// The declared key attributes (1-based, sorted).
    pub attrs: Vec<usize>,
    /// The violating key-projection point.
    pub key: Tuple,
    /// The summed multiplicity that point would carry.
    pub multiplicity: u64,
}

impl std::fmt::Display for KeyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let attrs: Vec<String> = self.attrs.iter().map(|a| format!("%{a}")).collect();
        write!(
            f,
            "key {}({}) violated: {} would occur with multiplicity {}",
            self.relation,
            attrs.join(","),
            self.key,
            self.multiplicity
        )
    }
}

/// The per-key count state: how many tuples (with multiplicity) sit at
/// each point of the key projection. The key holds iff every count is 1.
#[derive(Debug, Clone)]
struct KeyCounts {
    resolved: ResolvedAttrs,
    counts: FxHashMap<Tuple, u64>,
}

impl KeyCounts {
    fn build(rel: &Relation, attrs: &[usize]) -> CoreResult<Self> {
        let list = AttrList::new_unique(attrs.to_vec())?;
        list.check_arity(rel.schema().arity())?;
        let resolved = ResolvedAttrs::from_attr_list(&list, rel.schema().arity())?;
        let mut counts: FxHashMap<Tuple, u64> = FxHashMap::default();
        for (t, m) in rel.iter() {
            *counts.entry(resolved.project(t)).or_insert(0) += m;
        }
        Ok(KeyCounts { resolved, counts })
    }

    /// The smallest key point with a count above one, if any — smallest
    /// so that validation failures are deterministic.
    fn worst(&self) -> Option<(&Tuple, u64)> {
        self.counts
            .iter()
            .filter(|(_, &m)| m > 1)
            .min_by_key(|(k, _)| *k)
            .map(|(k, &m)| (k, m))
    }

    /// The signed per-key-point net of a delta.
    fn net(&self, delta: &SignedBag<Tuple>) -> FxHashMap<Tuple, i64> {
        let mut net: FxHashMap<Tuple, i64> = FxHashMap::default();
        for (t, m) in delta.iter() {
            *net.entry(self.resolved.project(t)).or_insert(0) += m;
        }
        net
    }

    fn check(&self, delta: &SignedBag<Tuple>) -> Result<(), (Tuple, u64)> {
        let mut worst: Option<(Tuple, u64)> = None;
        for (key, net) in self.net(delta) {
            if net <= 0 {
                continue;
            }
            let current = self.counts.get(&key).copied().unwrap_or(0) as i64;
            let total = current + net;
            if total > 1 {
                let candidate = (key, total as u64);
                // deterministic report: the smallest violating key point
                if worst.as_ref().is_none_or(|w| candidate.0 < w.0) {
                    worst = Some(candidate);
                }
            }
        }
        match worst {
            Some(w) => Err(w),
            None => Ok(()),
        }
    }
}

/// All declared keys, with their live enforcement counts.
#[derive(Debug, Clone, Default)]
pub struct KeySet {
    // (relation name, sorted key attrs) → counts
    keys: FxHashMap<(String, Vec<usize>), KeyCounts>,
}

impl KeySet {
    /// No declared keys.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of declared keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no key is declared.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// True when exactly this key is already declared.
    pub fn is_declared(&self, relation: &str, attrs: &[usize]) -> bool {
        let mut sorted = attrs.to_vec();
        sorted.sort_unstable();
        self.keys.contains_key(&(relation.to_owned(), sorted))
    }

    /// Declares `relation(attrs)` as a key, validating the *existing*
    /// data: `Ok(Err(violation))` when the current relation already has a
    /// key point with multiplicity above one (the declaration is refused
    /// and not registered), `Err` on structural problems (unknown
    /// relation, out-of-range or duplicate attributes).
    pub fn declare(
        &mut self,
        db: &Database,
        relation: &str,
        attrs: &[usize],
    ) -> CoreResult<Result<(), KeyViolation>> {
        let rel = db.relation(relation)?;
        let counts = KeyCounts::build(rel, attrs)?;
        let mut sorted = attrs.to_vec();
        sorted.sort_unstable();
        if let Some((key, multiplicity)) = counts.worst() {
            return Ok(Err(KeyViolation {
                relation: relation.to_owned(),
                attrs: sorted,
                key: key.clone(),
                multiplicity,
            }));
        }
        self.keys.insert((relation.to_owned(), sorted), counts);
        Ok(Ok(()))
    }

    /// Pure admission check of one relation's signed commit delta against
    /// every key declared on it. Call for **all** deltas of a transaction
    /// before applying any ([`Self::apply_commit`]): a violating commit
    /// then aborts with nothing to undo.
    pub fn check(&self, relation: &str, delta: &SignedBag<Tuple>) -> Result<(), KeyViolation> {
        if delta.is_empty() {
            return Ok(());
        }
        let mut declared: Vec<_> = self
            .keys
            .iter()
            .filter(|((r, _), _)| r == relation)
            .collect();
        declared.sort_by(|a, b| a.0.cmp(b.0));
        for ((r, attrs), counts) in declared {
            if let Err((key, multiplicity)) = counts.check(delta) {
                return Err(KeyViolation {
                    relation: r.clone(),
                    attrs: attrs.clone(),
                    key,
                    multiplicity,
                });
            }
        }
        Ok(())
    }

    /// Folds one admitted commit delta for `relation` into the counts of
    /// every key declared on it — O(|Δ|).
    pub fn apply_commit(&mut self, relation: &str, delta: &SignedBag<Tuple>) {
        if delta.is_empty() {
            return;
        }
        for ((r, _), counts) in self.keys.iter_mut() {
            if r == relation {
                let net = counts.net(delta);
                for (key, n) in net {
                    let current = counts.counts.get(&key).copied().unwrap_or(0) as i64;
                    let next = current + n;
                    if next <= 0 {
                        counts.counts.remove(&key);
                    } else {
                        counts.counts.insert(key, next as u64);
                    }
                }
            }
        }
    }

    /// Rebuilds every count table from `db`: definitions are kept, counts
    /// reconstructed — the recovery/re-anchor path (declarations are
    /// durable, counts are not).
    pub fn rebuild(&mut self, db: &Database) -> CoreResult<()> {
        for ((relation, attrs), counts) in self.keys.iter_mut() {
            *counts = KeyCounts::build(db.relation(relation)?, attrs)?;
        }
        Ok(())
    }

    /// Every declared key as `(relation, sorted attrs)`, sorted — the
    /// durable catalog definition (what a `DeclareKey` WAL record
    /// carries), and the ground facts handed to the analyzer's `KeyEnv`.
    pub fn definitions(&self) -> Vec<(String, Vec<usize>)> {
        let mut defs: Vec<(String, Vec<usize>)> = self.keys.keys().cloned().collect();
        defs.sort();
        defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;

    fn db() -> Database {
        let schema = Schema::anon(&[DataType::Int, DataType::Str]);
        let mut db = Database::new(DatabaseSchema::new().with("r", schema).expect("fresh"));
        let mut bag = db.relation("r").expect("declared").clone();
        for (id, name) in [(1_i64, "a"), (2, "b"), (3, "c")] {
            bag.insert(tuple![id, name], 1).expect("typed");
        }
        db.replace("r", bag).expect("declared");
        db
    }

    fn delta(entries: &[(i64, &str, i64)]) -> SignedBag<Tuple> {
        let mut d = SignedBag::new();
        for (id, name, m) in entries {
            d.insert(tuple![*id, *name], *m).expect("no overflow");
        }
        d
    }

    #[test]
    fn declare_validates_existing_data() {
        let mut ks = KeySet::new();
        let db = db();
        assert!(ks.declare(&db, "r", &[1]).expect("structurally ok").is_ok());
        assert!(ks.is_declared("r", &[1]));
        assert_eq!(ks.definitions(), vec![("r".to_owned(), vec![1])]);

        // the str column holds distinct values too, but a dup breaks it
        let mut db2 = db.clone();
        let mut grown = db2.relation("r").expect("declared").clone();
        grown.insert(tuple![4_i64, "a"], 1).expect("typed");
        db2.replace("r", grown).expect("declared");
        let violation = ks
            .declare(&db2, "r", &[2])
            .expect("structurally ok")
            .expect_err("duplicate key point");
        assert_eq!(violation.multiplicity, 2);
        assert!(!ks.is_declared("r", &[2]));
    }

    #[test]
    fn declare_rejects_bad_attrs() {
        let mut ks = KeySet::new();
        let db = db();
        assert!(ks.declare(&db, "r", &[3]).is_err(), "out of range");
        assert!(ks.declare(&db, "r", &[1, 1]).is_err(), "duplicate attr");
        assert!(ks.declare(&db, "nosuch", &[1]).is_err(), "unknown relation");
    }

    #[test]
    fn check_admits_and_rejects_deltas() {
        let mut ks = KeySet::new();
        let db = db();
        ks.declare(&db, "r", &[1]).expect("ok").expect("valid");

        // fresh key point: fine
        assert!(ks.check("r", &delta(&[(4, "d", 1)])).is_ok());
        // existing key point: violation, with the point in the report
        let v = ks.check("r", &delta(&[(2, "x", 1)])).expect_err("dup id");
        assert_eq!(v.multiplicity, 2);
        assert_eq!(v.attrs, vec![1]);
        // delete+insert of the same key point in one delta: fine
        assert!(ks.check("r", &delta(&[(2, "b", -1), (2, "x", 1)])).is_ok());
        // two inserts of one fresh key point in one delta: violation
        let v = ks
            .check("r", &delta(&[(9, "x", 1), (9, "y", 1)]))
            .expect_err("internal dup");
        assert_eq!(v.multiplicity, 2);
        // unconstrained relation: nothing to check
        assert!(ks.check("s", &delta(&[(2, "x", 1)])).is_ok());
    }

    #[test]
    fn apply_commit_tracks_counts_incrementally() {
        let mut ks = KeySet::new();
        let db = db();
        ks.declare(&db, "r", &[1]).expect("ok").expect("valid");

        let d = delta(&[(3, "c", -1), (4, "d", 1)]);
        assert!(ks.check("r", &d).is_ok());
        ks.apply_commit("r", &d);
        // id 3 is free again, id 4 is now taken
        assert!(ks.check("r", &delta(&[(3, "z", 1)])).is_ok());
        assert!(ks.check("r", &delta(&[(4, "z", 1)])).is_err());
    }

    #[test]
    fn rebuild_reconstructs_counts_from_db() {
        let mut ks = KeySet::new();
        let db = db();
        ks.declare(&db, "r", &[1]).expect("ok").expect("valid");
        // drift the counts, then rebuild from the source of truth
        ks.apply_commit("r", &delta(&[(1, "a", -1)]));
        assert!(ks.check("r", &delta(&[(1, "z", 1)])).is_ok());
        ks.rebuild(&db).expect("relations exist");
        assert!(ks.check("r", &delta(&[(1, "z", 1)])).is_err());
    }

    #[test]
    fn violation_renders_for_diagnostics() {
        let mut ks = KeySet::new();
        let db = db();
        ks.declare(&db, "r", &[1]).expect("ok").expect("valid");
        let v = ks.check("r", &delta(&[(2, "x", 1)])).expect_err("dup");
        let msg = v.to_string();
        assert!(msg.contains("key r(%1) violated"), "{msg}");
        assert!(msg.contains("multiplicity 2"), "{msg}");
    }
}
