//! The single execution entry point shared by every evaluation path.
//!
//! An [`Engine`] bundles *which* evaluator runs ([`EngineKind`]), *how* it
//! runs ([`ExecOptions`]: batch size and partition count), and optionally a
//! set of hash indexes applied as a rewrite pre-pass. The transaction
//! layer, the language session, the SQL examples, and the benchmarks all
//! construct an `Engine` and call [`Engine::run`] — there is one pipeline
//! behind the physical, parallel, and indexed paths, not three.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::rel::RelExpr;

use crate::index::{rewrite_with_indexes, IndexJoinHints, IndexSet};
use crate::provider::{RelationProvider, Schemas};

/// Default target number of rows per [`CountedBatch`](crate::physical::CountedBatch).
///
/// Batches amortise dynamic dispatch: one virtual call moves up to this
/// many counted rows. 1024 keeps a batch of small tuples comfortably in
/// cache while making the per-call overhead negligible.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Tuning knobs shared by all execution paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Target rows per batch flowing between physical operators (≥ 1;
    /// values of 0 are treated as 1). Operators may overshoot when a
    /// single input row expands to several output rows.
    pub batch_size: usize,
    /// Number of hash partitions (and worker threads) the parallel kernels
    /// use. Ignored by the serial paths.
    pub partitions: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            batch_size: DEFAULT_BATCH_SIZE,
            partitions: crate::parallel::default_partitions(),
        }
    }
}

impl ExecOptions {
    /// Options with an explicit batch size (partitions stay default).
    pub fn with_batch_size(batch_size: usize) -> Self {
        ExecOptions {
            batch_size,
            ..Self::default()
        }
    }

    /// Options with an explicit partition count (batch size stays default).
    pub fn with_partitions(partitions: usize) -> Self {
        ExecOptions {
            partitions,
            ..Self::default()
        }
    }

    /// The batch size clamped to at least one row.
    pub fn effective_batch_size(&self) -> usize {
        self.batch_size.max(1)
    }

    /// The partition count clamped to at least one partition.
    pub fn effective_partitions(&self) -> usize {
        self.partitions.max(1)
    }
}

/// Which evaluator an [`Engine`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The executable form of the paper's definitions — slow, obvious, the
    /// oracle everything else is checked against.
    Reference,
    /// The batched Volcano-style operator pipeline.
    #[default]
    Physical,
    /// Hash-partitioned parallel kernels over the same batched operators.
    Parallel,
    /// Morsel-driven whole-pipeline parallelism on the reusable worker
    /// pool: work-stealing morsel scheduling, shared build-side hash
    /// joins, two-phase parallel aggregation.
    Morsel,
}

/// The unified execution engine: kind + options + optional indexes (plus
/// the cost-model hints naming joins to execute index-nested-loop).
#[derive(Debug, Clone, Default)]
pub struct Engine {
    kind: EngineKind,
    opts: ExecOptions,
    indexes: Option<Arc<IndexSet>>,
    hints: IndexJoinHints,
}

impl Engine {
    /// An engine of the given kind with default options.
    pub fn new(kind: EngineKind) -> Self {
        Engine {
            kind,
            opts: ExecOptions::default(),
            indexes: None,
            hints: IndexJoinHints::default(),
        }
    }

    /// The reference evaluator.
    pub fn reference() -> Self {
        Self::new(EngineKind::Reference)
    }

    /// The batched physical engine (the default).
    pub fn physical() -> Self {
        Self::new(EngineKind::Physical)
    }

    /// The partition-parallel engine.
    pub fn parallel() -> Self {
        Self::new(EngineKind::Parallel)
    }

    /// The morsel-driven parallel engine.
    pub fn morsel() -> Self {
        Self::new(EngineKind::Morsel)
    }

    /// The physical engine with an index rewrite pre-pass.
    pub fn indexed(indexes: IndexSet) -> Self {
        Self::physical().with_indexes(indexes)
    }

    /// Replaces the execution options.
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Sets the target batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.opts.batch_size = batch_size;
        self
    }

    /// Sets the partition count used by the parallel kernels.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.opts.partitions = partitions;
        self
    }

    /// Attaches indexes; point-selections over indexed base relations take
    /// the index access path.
    pub fn with_indexes(self, indexes: IndexSet) -> Self {
        self.with_shared_indexes(Arc::new(indexes))
    }

    /// Attaches shared indexes without cloning their contents — the
    /// transaction layer hands out its delta-maintained catalog this way.
    pub fn with_shared_indexes(mut self, indexes: Arc<IndexSet>) -> Self {
        self.indexes = Some(indexes);
        self
    }

    /// Attaches cost-model hints: joins (by `(relation, sorted key
    /// attrs)`) the physical planner should run as index-nested-loop.
    pub fn with_index_hints(mut self, hints: IndexJoinHints) -> Self {
        self.hints = hints;
        self
    }

    /// The evaluator this engine dispatches to.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The execution options.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// The attached indexes, if any.
    pub fn indexes(&self) -> Option<&IndexSet> {
        self.indexes.as_deref()
    }

    /// The cost-model index-join hints.
    pub fn index_hints(&self) -> &IndexJoinHints {
        &self.hints
    }

    /// The planner-facing view of the attached indexes and hints.
    pub fn index_access(&self) -> Option<crate::physical::planner::IndexAccess<'_>> {
        self.indexes
            .as_deref()
            .map(|indexes| crate::physical::planner::IndexAccess {
                indexes,
                hints: &self.hints,
            })
    }

    /// Evaluates `expr` against `provider`.
    ///
    /// The expression is schema-checked once up front. The physical engine
    /// takes attached indexes as native access paths (lookup operators and
    /// hinted index-nested-loop joins); the other evaluators fall back to
    /// the point-selection rewrite pre-pass, which preserves semantics on
    /// any engine.
    pub fn run(
        &self,
        expr: &RelExpr,
        provider: &(impl RelationProvider + ?Sized),
    ) -> CoreResult<Relation> {
        expr.schema(&Schemas(provider))?;
        if self.kind == EngineKind::Physical {
            let plan = crate::physical::planner::plan_indexed_with(
                expr,
                provider,
                self.opts,
                self.index_access(),
            )?;
            return crate::physical::collect(plan);
        }
        let rewritten;
        let expr = match self.indexes.as_deref() {
            Some(indexes) => {
                rewritten = rewrite_with_indexes(expr, indexes)?;
                &rewritten
            }
            None => expr,
        };
        match self.kind {
            EngineKind::Reference => crate::reference::eval_unchecked(expr, provider),
            EngineKind::Physical => unreachable!("handled above"),
            EngineKind::Parallel => crate::parallel::eval_parallel(expr, provider, &self.opts),
            EngineKind::Morsel => crate::morsel::eval_morsel(expr, provider, &self.opts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::ScalarExpr;
    use std::sync::Arc;

    fn db() -> Database {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Int]))
            .unwrap();
        let mut db = Database::new(schema);
        let rs = Arc::clone(db.schema().get("r").unwrap());
        let mut r = Relation::empty(rs);
        for i in 0..50_i64 {
            r.insert(tuple![i % 7, i], (i % 3 + 1) as u64).unwrap();
        }
        db.replace("r", r).unwrap();
        db
    }

    #[test]
    fn all_kinds_agree() {
        let db = db();
        let e = RelExpr::scan("r")
            .join(
                RelExpr::scan("r"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .project(&[1])
            .group_by(&[1], mera_expr::Aggregate::Cnt, 1);
        let reference = Engine::reference().run(&e, &db).unwrap();
        for engine in [
            Engine::physical(),
            Engine::parallel(),
            Engine::morsel(),
            Engine::physical().with_batch_size(3),
            Engine::parallel().with_partitions(3),
            Engine::morsel().with_partitions(3).with_batch_size(5),
        ] {
            assert_eq!(engine.run(&e, &db).unwrap(), reference);
        }
    }

    #[test]
    fn indexed_engine_rewrites_point_lookups() {
        let db = db();
        let mut indexes = IndexSet::new();
        indexes.create(&db, "r", &[1]).unwrap();
        let e = RelExpr::scan("r").select(ScalarExpr::attr(1).eq(ScalarExpr::int(3)));
        let plain = Engine::physical().run(&e, &db).unwrap();
        let indexed = Engine::indexed(indexes).run(&e, &db).unwrap();
        assert_eq!(indexed, plain);
    }

    #[test]
    fn hinted_index_join_agrees_with_reference() {
        let db = db();
        let mut indexes = IndexSet::new();
        indexes.create(&db, "r", &[1]).unwrap();
        let mut hints = IndexJoinHints::default();
        hints.insert(("r".to_owned(), vec![1]));

        let queries = vec![
            // plain equi-join onto the indexed relation
            RelExpr::scan("r").join(
                RelExpr::scan("r"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            ),
            // equi-join with a residual conjunct
            RelExpr::scan("r").join(
                RelExpr::scan("r"),
                ScalarExpr::attr(1)
                    .eq(ScalarExpr::attr(3))
                    .and(ScalarExpr::attr(2).eq(ScalarExpr::attr(4))),
            ),
            // unhinted key set (attr 2): stays a hash join
            RelExpr::scan("r").join(
                RelExpr::scan("r"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            ),
        ];
        for q in queries {
            let reference = Engine::reference().run(&q, &db).unwrap();
            let engine = Engine::physical()
                .with_indexes(indexes.clone())
                .with_index_hints(hints.clone());
            assert_eq!(
                engine.run(&q, &db).unwrap(),
                reference,
                "index join path disagreed for {q}"
            );
        }
    }

    #[test]
    fn engine_rejects_invalid_expressions() {
        let db = db();
        assert!(Engine::physical().run(&RelExpr::scan("zzz"), &db).is_err());
    }

    #[test]
    fn options_clamp_degenerate_values() {
        let opts = ExecOptions {
            batch_size: 0,
            partitions: 0,
        };
        assert_eq!(opts.effective_batch_size(), 1);
        assert_eq!(opts.effective_partitions(), 1);
    }
}
