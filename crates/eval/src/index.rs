//! Hash indexes and index-aware execution.
//!
//! PRISMA/DB was a main-memory DBMS; its workhorse access path was the
//! in-memory hash index. This module provides the same substrate for the
//! bag model: a [`HashIndex`] maps a key projection to the counted tuples
//! carrying that key (multiplicities preserved — an index over a bag is
//! itself a bag structure), an [`IndexSet`] manages indexes per relation,
//! and [`execute_indexed`] rewrites point-selections over base relations
//! (`σ_{%i = const ∧ …}(R)`) into index lookups before planning.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::rel::RelExpr;
use mera_expr::scalar::{CmpOp, ScalarExpr};
use rustc_hash::FxHashMap;

use crate::provider::{RelationProvider, Schemas};

/// A hash index over one key projection of a relation.
///
/// Multiplicities are preserved: looking up a key yields exactly the
/// counted tuples a scan-and-filter would, so every algebra law continues
/// to hold on the lookup result.
#[derive(Debug, Clone)]
pub struct HashIndex {
    keys: AttrList,
    schema: SchemaRef,
    map: FxHashMap<Tuple, Vec<(Tuple, u64)>>,
    entries: u64,
}

impl HashIndex {
    /// Builds an index on the 1-based key attributes of a relation.
    pub fn build(rel: &Relation, keys: &[usize]) -> CoreResult<Self> {
        let key_list = AttrList::new_unique(keys.to_vec())?;
        key_list.check_arity(rel.schema().arity())?;
        let resolved = ResolvedAttrs::from_attr_list(&key_list, rel.schema().arity())?;
        let mut map: FxHashMap<Tuple, Vec<(Tuple, u64)>> = FxHashMap::default();
        let mut entries = 0;
        for (t, m) in rel.iter() {
            map.entry(resolved.project(t))
                .or_default()
                .push((t.clone(), m));
            entries += m;
        }
        Ok(HashIndex {
            keys: key_list,
            schema: Arc::clone(rel.schema()),
            map,
            entries,
        })
    }

    /// The indexed key attributes (1-based).
    pub fn key_attrs(&self) -> &[usize] {
        self.keys.indexes()
    }

    /// Total indexed tuples (with multiplicity).
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when the index covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Point lookup: the counted tuples whose key projection equals `key`,
    /// as a relation over the indexed schema.
    pub fn lookup(&self, key: &Tuple) -> CoreResult<Relation> {
        let mut out = Relation::empty(Arc::clone(&self.schema));
        for (t, m) in self.matches(key) {
            out.insert(t.clone(), *m)?;
        }
        Ok(out)
    }

    /// Point lookup without materialisation: the counted tuples carrying
    /// `key`, as a borrowed slice (empty when the key is absent).
    pub fn matches(&self, key: &Tuple) -> &[(Tuple, u64)] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The schema of the indexed relation.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Folds one commit's signed delta into the index — O(|delta|), the
    /// same incremental-maintenance contract as materialized views: after
    /// the call the index equals a fresh [`HashIndex::build`] over the
    /// post-commit relation.
    pub fn apply_delta(&mut self, delta: &SignedBag<Tuple>) -> CoreResult<()> {
        let resolved = ResolvedAttrs::from_attr_list(&self.keys, self.schema.arity())?;
        for (t, m) in delta.iter() {
            let key = resolved.project(t);
            if m > 0 {
                let bucket = self.map.entry(key).or_default();
                match bucket.iter_mut().find(|(bt, _)| bt == t) {
                    Some((_, bm)) => *bm += m as u64,
                    None => bucket.push((t.clone(), m as u64)),
                }
                self.entries += m as u64;
            } else {
                let drop = m.unsigned_abs();
                if let Some(bucket) = self.map.get_mut(&key) {
                    if let Some(pos) = bucket.iter().position(|(bt, _)| bt == t) {
                        let cur = bucket[pos].1;
                        let removed = drop.min(cur);
                        if cur > removed {
                            bucket[pos].1 = cur - removed;
                        } else {
                            bucket.swap_remove(pos);
                        }
                        self.entries -= removed;
                        if bucket.is_empty() {
                            self.map.remove(&key);
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A set of indexes over a database's relations.
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    // (relation name, sorted key attrs) → index
    indexes: FxHashMap<(String, Vec<usize>), HashIndex>,
}

impl IndexSet {
    /// No indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds and registers an index on `relation(keys)`.
    pub fn create(&mut self, db: &Database, relation: &str, keys: &[usize]) -> CoreResult<()> {
        let rel = db.relation(relation)?;
        let index = HashIndex::build(rel, keys)?;
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        self.indexes.insert((relation.to_owned(), sorted), index);
        Ok(())
    }

    /// Number of registered indexes.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when no index is registered.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Finds an index on `relation` whose key set is exactly `keys`
    /// (order-insensitive).
    pub fn find(&self, relation: &str, keys: &[usize]) -> Option<&HashIndex> {
        let mut sorted = keys.to_vec();
        sorted.sort_unstable();
        self.indexes.get(&(relation.to_owned(), sorted))
    }

    /// Drops all indexes of a relation.
    pub fn invalidate(&mut self, relation: &str) {
        self.indexes.retain(|(r, _), _| r != relation);
    }

    /// Folds one commit's signed delta for `relation` into every index on
    /// it — the catalog-object maintenance path: indexes stay consistent
    /// across commits instead of being rebuilt or invalidated.
    pub fn apply_commit(&mut self, relation: &str, delta: &SignedBag<Tuple>) -> CoreResult<()> {
        for ((r, _), index) in self.indexes.iter_mut() {
            if r == relation {
                index.apply_delta(delta)?;
            }
        }
        Ok(())
    }

    /// Rebuilds every registered index from `db`: definitions are kept,
    /// entries are reconstructed. The fallback/recovery path — after an
    /// abort that had already folded deltas in, or after a restart where
    /// only the definitions were durable.
    pub fn rebuild(&mut self, db: &Database) -> CoreResult<()> {
        for ((relation, keys), index) in self.indexes.iter_mut() {
            *index = HashIndex::build(db.relation(relation)?, keys)?;
        }
        Ok(())
    }

    /// Every registered index as `(relation, sorted key attrs)`, sorted —
    /// the durable catalog definition (what a CREATE INDEX log record
    /// carries; the entries themselves are rebuilt or delta-maintained).
    pub fn definitions(&self) -> Vec<(String, Vec<usize>)> {
        let mut defs: Vec<(String, Vec<usize>)> = self.indexes.keys().cloned().collect();
        defs.sort();
        defs
    }
}

/// Cost-based planner hints: the `(relation, sorted key attrs)` pairs for
/// which an index-nested-loop join was chosen over a hash join. The
/// physical planner only takes the index path for hinted joins — the
/// *choice* lives with the cost model, the *mechanism* lives here.
pub type IndexJoinHints = rustc_hash::FxHashSet<(String, Vec<usize>)>;

/// Splits a predicate's conjuncts into point-equalities (`%i = literal`)
/// and the rest.
pub(crate) fn split_point_conjuncts(
    predicate: &ScalarExpr,
) -> (Vec<(usize, Value)>, Vec<ScalarExpr>) {
    let mut points = Vec::new();
    let mut rest = Vec::new();
    for conj in predicate.conjuncts() {
        if let ScalarExpr::Cmp(CmpOp::Eq, l, r) = conj {
            match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Attr(i), ScalarExpr::Literal(v))
                | (ScalarExpr::Literal(v), ScalarExpr::Attr(i)) => {
                    points.push((*i, v.clone()));
                    continue;
                }
                _ => {}
            }
        }
        rest.push(conj.clone());
    }
    (points, rest)
}

/// Rewrites point-selections over base relations into index lookups, then
/// executes the plan with the physical engine.
///
/// `σ_{%i=c ∧ rest}(R)` becomes `σ_{rest}(Values(index.lookup(c)))` when an
/// index on exactly the point-equality attributes of `R` exists; all other
/// shapes pass through untouched. The rewrite is semantics-preserving
/// because the lookup returns precisely the counted tuples the selection
/// would keep.
pub fn execute_indexed(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    indexes: &IndexSet,
) -> CoreResult<Relation> {
    execute_indexed_with(
        expr,
        provider,
        indexes,
        &crate::engine::ExecOptions::default(),
    )
}

/// [`execute_indexed`] with explicit execution options.
pub fn execute_indexed_with(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    indexes: &IndexSet,
    opts: &crate::engine::ExecOptions,
) -> CoreResult<Relation> {
    expr.schema(&Schemas(provider))?;
    let rewritten = rewrite_with_indexes(expr, indexes)?;
    crate::physical::execute_with(&rewritten, provider, opts)
}

pub(crate) fn rewrite_with_indexes(expr: &RelExpr, indexes: &IndexSet) -> CoreResult<RelExpr> {
    // rewrite children first
    let children: CoreResult<Vec<RelExpr>> = expr
        .children()
        .iter()
        .map(|c| rewrite_with_indexes(c, indexes))
        .collect();
    let node = expr.with_children(children?);

    let RelExpr::Select { input, predicate } = &node else {
        return Ok(node);
    };
    let RelExpr::Scan(relation) = input.as_ref() else {
        return Ok(node);
    };
    let (points, rest) = split_point_conjuncts(predicate);
    if points.is_empty() {
        return Ok(node);
    }
    let attrs: Vec<usize> = points.iter().map(|(i, _)| *i).collect();
    let Some(index) = indexes.find(relation, &attrs) else {
        return Ok(node);
    };
    // assemble the key tuple in the index's key order
    let mut key_vals = Vec::with_capacity(attrs.len());
    for &k in index.key_attrs() {
        let v = points
            .iter()
            .find(|(i, _)| *i == k)
            .map(|(_, v)| v.clone())
            .expect("index keys match point attributes");
        key_vals.push(v);
    }
    let looked_up = index.lookup(&Tuple::new(key_vals))?;
    let base = RelExpr::values(looked_up);
    Ok(if rest.is_empty() {
        base
    } else {
        base.select(ScalarExpr::conjoin(rest))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::execute;
    use mera_core::tuple;

    fn db() -> Database {
        let schema = DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh");
        let mut db = Database::new(schema);
        let s = Arc::clone(db.schema().get("beer").expect("declared"));
        db.replace(
            "beer",
            Relation::from_counted(
                s,
                vec![
                    (tuple!["Grolsch", "Grolsche", 5.0_f64], 1),
                    (tuple!["Bock", "Grolsche", 6.5_f64], 2),
                    (tuple!["Bock", "Heineken", 6.3_f64], 1),
                    (tuple!["Amstel", "Heineken", 5.1_f64], 1),
                ],
            )
            .expect("typed"),
        )
        .expect("replace");
        db
    }

    #[test]
    fn index_lookup_preserves_multiplicities() {
        let db = db();
        let idx = HashIndex::build(db.relation("beer").expect("present"), &[1]).expect("builds");
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.distinct_keys(), 3);
        let bocks = idx.lookup(&tuple!["Bock"]).expect("lookup");
        assert_eq!(bocks.len(), 3);
        assert_eq!(bocks.multiplicity(&tuple!["Bock", "Grolsche", 6.5_f64]), 2);
        let none = idx.lookup(&tuple!["Pilsner"]).expect("lookup");
        assert!(none.is_empty());
    }

    #[test]
    fn indexed_execution_matches_plain() {
        let db = db();
        let mut indexes = IndexSet::new();
        indexes.create(&db, "beer", &[1]).expect("creates");
        indexes.create(&db, "beer", &[2]).expect("creates");
        assert_eq!(indexes.len(), 2);

        let queries = vec![
            // point lookup, single attr
            RelExpr::scan("beer").select(ScalarExpr::attr(1).eq(ScalarExpr::str("Bock"))),
            // point + residual
            RelExpr::scan("beer").select(
                ScalarExpr::attr(1)
                    .eq(ScalarExpr::str("Bock"))
                    .and(ScalarExpr::attr(3).cmp(CmpOp::Gt, ScalarExpr::real(6.4))),
            ),
            // literal on the left
            RelExpr::scan("beer").select(ScalarExpr::str("Heineken").eq(ScalarExpr::attr(2))),
            // no matching index (attr 3): passes through
            RelExpr::scan("beer").select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.1))),
            // non-point predicate: passes through
            RelExpr::scan("beer").select(ScalarExpr::attr(3).cmp(CmpOp::Lt, ScalarExpr::real(6.0))),
            // nested under other operators
            RelExpr::scan("beer")
                .select(ScalarExpr::attr(2).eq(ScalarExpr::str("Grolsche")))
                .project(&[1])
                .distinct(),
        ];
        for q in queries {
            let plain = execute(&q, &db).expect("plain");
            let indexed = execute_indexed(&q, &db, &indexes).expect("indexed");
            assert_eq!(indexed, plain, "index rewrite changed semantics for {q}");
        }
    }

    #[test]
    fn composite_key_index() {
        let db = db();
        let mut indexes = IndexSet::new();
        indexes.create(&db, "beer", &[1, 2]).expect("creates");
        let q = RelExpr::scan("beer").select(
            ScalarExpr::attr(2)
                .eq(ScalarExpr::str("Grolsche"))
                .and(ScalarExpr::attr(1).eq(ScalarExpr::str("Bock"))),
        );
        let plain = execute(&q, &db).expect("plain");
        let indexed = execute_indexed(&q, &db, &indexes).expect("indexed");
        assert_eq!(indexed, plain);
        assert_eq!(
            indexed.multiplicity(&tuple!["Bock", "Grolsche", 6.5_f64]),
            2
        );
    }

    #[test]
    fn invalidate_drops_relation_indexes() {
        let db = db();
        let mut indexes = IndexSet::new();
        indexes.create(&db, "beer", &[1]).expect("creates");
        indexes.invalidate("beer");
        assert!(indexes.is_empty());
        assert!(indexes.find("beer", &[1]).is_none());
    }

    #[test]
    fn apply_delta_matches_fresh_build() {
        let db = db();
        let rel = db.relation("beer").expect("present");
        let mut idx = HashIndex::build(rel, &[2]).expect("builds");

        // +2 new Heineken rows, -1 of an existing Bock, full removal of Amstel
        let mut delta = SignedBag::new();
        delta
            .insert(tuple!["Lager", "Heineken", 5.0_f64], 2)
            .expect("inserts");
        delta
            .insert(tuple!["Bock", "Grolsche", 6.5_f64], -1)
            .expect("inserts");
        delta
            .insert(tuple!["Amstel", "Heineken", 5.1_f64], -1)
            .expect("inserts");

        let mut post = rel.clone();
        for (t, m) in delta.iter() {
            if m > 0 {
                post.insert(t.clone(), m as u64).expect("inserts");
            } else {
                post.remove(t, m.unsigned_abs());
            }
        }
        idx.apply_delta(&delta).expect("applies");

        let fresh = HashIndex::build(&post, &[2]).expect("builds");
        assert_eq!(idx.len(), fresh.len());
        assert_eq!(idx.distinct_keys(), fresh.distinct_keys());
        for key in [tuple!["Heineken"], tuple!["Grolsche"], tuple!["Gone"]] {
            assert_eq!(
                idx.lookup(&key).expect("lookup"),
                fresh.lookup(&key).expect("lookup"),
                "delta-maintained index diverged on key {key:?}"
            );
        }
    }

    #[test]
    fn index_build_validates_keys() {
        let db = db();
        let rel = db.relation("beer").expect("present");
        assert!(HashIndex::build(rel, &[9]).is_err());
        assert!(HashIndex::build(rel, &[1, 1]).is_err());
    }
}
