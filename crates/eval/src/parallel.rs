//! Partition-parallel operator kernels.
//!
//! §5 of the paper notes that for PRISMA/DB "the language has been
//! extended with special operators to support parallel data processing" —
//! XRA's parallelism was hash-*partitioned*: a relation is split by a hash
//! of the relevant attributes, partitions are processed independently, and
//! the results are unioned. That decomposition is semantics-preserving for
//! exactly the operators whose multiplicity laws factor through key
//! partitions:
//!
//! * equi-joins — matching tuples always hash to the same partition,
//! * group-by with a non-empty key list — whole groups live in one
//!   partition,
//! * selection / projection — trivially per-tuple.
//!
//! Each partition runs an ordinary *physical batch plan* — a
//! [`HashJoin`]/[`HashAggregate`] over [`VecScanOp`]s of the partition's
//! rows — so the parallel path exercises exactly the same operator code as
//! the serial one; only the partitioning and the thread fan-out differ.
//! [`execute_parallel`] evaluates an algebra expression with these kernels
//! (falling back to the serial physical engine where partitioning does not
//! apply); its agreement with the reference evaluator is property-tested.
//!
//! **Role: differential/debug engine, not a fast path.** Partitioning
//! clones both inputs into per-partition buckets and materialises a full
//! [`Relation`] at every plan node, so at `partitions > 1` this engine is
//! typically *slower* than the serial physical plan (bench sweeps measured
//! 0.4–0.9× serial) — the per-node materialisation and input cloning
//! dominate whatever the fan-out wins. Its value is exercising the paper's
//! hash-partitioned decomposition semantics with exactly the serial
//! operator code, as a third independent engine in the differential test
//! suite. For parallel *speedups* use the morsel-driven engine
//! ([`crate::morsel`]), which streams whole pipelines; the recorded bench
//! sweep (`BENCH_pr6.json`) covers serial and morsel only.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::rel::RelExpr;
use mera_expr::Aggregate;

use crate::engine::ExecOptions;
use crate::physical::agg::HashAggregate;
use crate::physical::join::{extract_equi_condition, EquiCondition, HashJoin, NestedLoopJoin};
use crate::physical::ops::{ScanOp, VecScanOp};
use crate::physical::{collect, collect_rows, BoxedOp, Counted, Operator};
use crate::pool;
use crate::provider::{RelationProvider, Schemas};

/// The default number of partitions/threads: the `MERA_PARTITIONS`
/// environment variable if set to a positive integer, otherwise the
/// machine's available parallelism (PRISMA ran one partition per node; we
/// run one per core), otherwise 4.
pub fn default_partitions() -> usize {
    if let Ok(v) = std::env::var("MERA_PARTITIONS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

fn partition_of(t: &Tuple, keys: &ResolvedAttrs, partitions: usize) -> usize {
    (keys.hash_key(t) % partitions as u64) as usize
}

/// Splits a relation's counted pairs into `partitions` buckets by key
/// hash. Key offsets were resolved against the schema up front, so the
/// per-row work is hashing the key columns in place — no key tuples, no
/// bounds re-checks.
fn partition(rel: &Relation, keys: &ResolvedAttrs, partitions: usize) -> Vec<Vec<(Tuple, u64)>> {
    let mut out: Vec<Vec<(Tuple, u64)>> = (0..partitions).map(|_| Vec::new()).collect();
    for (t, m) in rel.iter() {
        let p = partition_of(t, keys, partitions);
        out[p].push((t.clone(), m));
    }
    out
}

/// Runs one fallible job per partition on the process-wide worker
/// [`pool`] (no per-call thread spawns; jobs are strided over at most
/// `hardware_threads` workers, the calling thread being one of them) and
/// returns the per-partition results in order. A job that *panics*
/// (rather than returning an error) is contained: its slot becomes
/// `Err(CoreError::WorkerPanicked)` instead of aborting the process, and
/// the remaining jobs still run to completion.
fn run_partitioned<T, F>(jobs: Vec<F>) -> Vec<CoreResult<T>>
where
    T: Send,
    F: FnOnce() -> CoreResult<T> + Send,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    // each slot holds the pending job going in and its result coming out
    type Slot<T, F> = (Option<F>, Option<CoreResult<T>>);
    let slots: Vec<Mutex<Slot<T, F>>> = jobs
        .into_iter()
        .map(|j| Mutex::new((Some(j), None)))
        .collect();
    let workers = n.min(crate::morsel::hardware_threads());
    let run = |w: usize| {
        for slot in slots.iter().skip(w).step_by(workers) {
            let job = slot
                .lock()
                .expect("no panics while holding slot lock")
                .0
                .take();
            let Some(job) = job else { continue };
            let res = catch_unwind(AssertUnwindSafe(job)).unwrap_or_else(|payload| {
                Err(CoreError::WorkerPanicked(pool::panic_message(
                    payload.as_ref(),
                )))
            });
            slot.lock().expect("no panics while holding slot lock").1 = Some(res);
        }
    };
    let pool_res = pool::global().run_workers(workers, &run);
    slots
        .into_iter()
        .map(|s| {
            let (_, res) = s.into_inner().expect("workers joined");
            res.unwrap_or_else(|| {
                // only reachable if the pool itself failed before this
                // job's stride ran (job panics are caught above)
                Err(match &pool_res {
                    Err(_) => CoreError::WorkerPanicked("partition job never ran".to_string()),
                    Ok(()) => unreachable!("completed workers fill every slot"),
                })
            })
        })
        .collect()
}

/// Hash-partitioned parallel equi-join: both sides are partitioned on
/// their key projections; each partition runs a physical [`HashJoin`] plan
/// on its own thread; partition results concatenate (disjoint by
/// construction). Residual conjuncts in `cond` are applied post-probe by
/// the join itself.
pub fn parallel_equi_join(
    left: &Relation,
    right: &Relation,
    cond: &EquiCondition,
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    let partitions = opts.effective_partitions();
    let batch = opts.effective_batch_size();
    if partitions == 1 {
        // one partition: stream straight out of the stored relations —
        // partitioning would clone every tuple for nothing
        let lop: BoxedOp<'_> = Box::new(ScanOp::new(left, batch));
        let rop: BoxedOp<'_> = Box::new(ScanOp::new(right, batch));
        return collect(Box::new(HashJoin::build(lop, rop, cond.clone(), batch)?));
    }
    let out_schema = Arc::new(left.schema().concat(right.schema()));
    let lk = ResolvedAttrs::new(&cond.left_keys, left.schema().arity())?;
    let rk = ResolvedAttrs::new(&cond.right_keys, right.schema().arity())?;
    let left_parts = partition(left, &lk, partitions);
    let right_parts = partition(right, &rk, partitions);
    let (ls, rs) = (left.schema(), right.schema());

    // workers return raw counted rows; the single merge below is the only
    // multiplicity merge on the hot path
    let jobs: Vec<_> = left_parts
        .into_iter()
        .zip(right_parts)
        .map(|(lp, rp)| {
            let cond = cond.clone();
            move || -> CoreResult<Vec<Counted>> {
                let lop: BoxedOp<'_> = Box::new(VecScanOp::new(Arc::clone(ls), lp, batch));
                let rop: BoxedOp<'_> = Box::new(VecScanOp::new(Arc::clone(rs), rp, batch));
                collect_rows(Box::new(HashJoin::build(lop, rop, cond, batch)?))
            }
        })
        .collect();

    let mut out = Relation::empty(out_schema);
    for part in run_partitioned(jobs) {
        for (t, m) in part? {
            out.insert(t, m)?;
        }
    }
    Ok(out)
}

/// Hash-partitioned parallel group-by (non-empty key list): partitions by
/// grouping key, runs a physical [`HashAggregate`] plan per partition,
/// concatenates — every group is wholly contained in one partition, so no
/// merge phase is needed.
pub fn parallel_group_by(
    rel: &Relation,
    keys: &[usize],
    agg: Aggregate,
    attr: usize,
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    let batch = opts.effective_batch_size();
    if keys.is_empty() {
        // a single global group cannot be partitioned on keys: run the
        // serial physical aggregate
        let scan: BoxedOp<'_> = Box::new(ScanOp::new(rel, batch));
        return collect(Box::new(HashAggregate::build(
            scan, keys, agg, attr, batch,
        )?));
    }
    let partitions = opts.effective_partitions();
    if partitions == 1 {
        // one partition: no point cloning the input into buckets
        let scan: BoxedOp<'_> = Box::new(ScanOp::new(rel, batch));
        return collect(Box::new(HashAggregate::build(
            scan, keys, agg, attr, batch,
        )?));
    }
    let key_list = AttrList::new_unique(keys.to_vec())?;
    key_list.check_arity(rel.schema().arity())?;
    let resolved = ResolvedAttrs::from_attr_list(&key_list, rel.schema().arity())?;
    let parts = partition(rel, &resolved, partitions);
    let schema = rel.schema();

    let jobs: Vec<_> = parts
        .into_iter()
        .map(|pairs| {
            move || -> CoreResult<(SchemaRef, Vec<Counted>)> {
                let scan: BoxedOp<'_> = Box::new(VecScanOp::new(Arc::clone(schema), pairs, batch));
                let agg_op = HashAggregate::build(scan, keys, agg, attr, batch)?;
                let out_schema = Arc::clone(agg_op.schema());
                Ok((out_schema, collect_rows(Box::new(agg_op))?))
            }
        })
        .collect();

    // groups are disjoint across partitions, so rows insert straight into
    // one output relation — a single merge instead of p repeated unions
    let mut results = run_partitioned(jobs).into_iter();
    let (out_schema, first) = results.next().expect("at least one partition")?;
    let mut out = Relation::empty(out_schema);
    for (t, m) in first {
        out.insert(t, m)?;
    }
    for r in results {
        for (t, m) in r?.1 {
            out.insert(t, m)?;
        }
    }
    Ok(out)
}

/// Evaluates an expression using the partition-parallel kernels where they
/// apply (equi-joins, keyed group-bys) and the serial batched physical
/// engine elsewhere, with `partitions` workers.
pub fn execute_parallel(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    partitions: usize,
) -> CoreResult<Relation> {
    let opts = ExecOptions {
        partitions,
        ..ExecOptions::default()
    };
    execute_parallel_with(expr, provider, &opts)
}

/// [`execute_parallel`] with full execution options.
pub fn execute_parallel_with(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    expr.schema(&Schemas(provider))?;
    eval_parallel(expr, provider, opts)
}

pub(crate) fn eval_parallel(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    if opts.effective_partitions() == 1 {
        // a single worker makes the whole partition/fan-out machinery pure
        // overhead — the serial batched plan is the same computation
        return crate::physical::execute_with(expr, provider, opts);
    }
    match expr {
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let l = eval_parallel(left, provider, opts)?;
            let r = eval_parallel(right, provider, opts)?;
            let la = l.schema().arity();
            let ra = r.schema().arity();
            match extract_equi_condition(predicate, la, ra) {
                Some(cond) => parallel_equi_join(&l, &r, &cond, opts),
                None => {
                    // θ-joins have no partitioning key: run the serial
                    // physical nested loop over the evaluated inputs
                    let batch = opts.effective_batch_size();
                    let lop: BoxedOp<'_> = Box::new(ScanOp::new(&l, batch));
                    let rop: BoxedOp<'_> = Box::new(ScanOp::new(&r, batch));
                    let join = NestedLoopJoin::build(lop, rop, Some(predicate.clone()), batch)?;
                    collect(Box::new(join))
                }
            }
        }
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let rel = eval_parallel(input, provider, opts)?;
            parallel_group_by(&rel, keys, *agg, *attr, opts)
        }
        // other structure: evaluate children parallel-recursively, then run
        // the node itself as a serial physical batch plan over the results
        _ => {
            let children: CoreResult<Vec<RelExpr>> = expr
                .children()
                .iter()
                .map(|c| Ok(RelExpr::values(eval_parallel(c, provider, opts)?)))
                .collect();
            let rebuilt = expr.with_children(children?);
            crate::physical::execute_with(&rebuilt, provider, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use mera_core::tuple;
    use mera_expr::{CmpOp, ScalarExpr};

    fn db() -> Database {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
            .with("s", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh");
        let mut db = Database::new(schema);
        let rs = Arc::clone(db.schema().get("r").expect("declared"));
        let mut r = Relation::empty(rs);
        for i in 0..200_i64 {
            r.insert(tuple![i % 17, i], (i % 3 + 1) as u64)
                .expect("typed");
        }
        db.replace("r", r).expect("replace");
        let ss = Arc::clone(db.schema().get("s").expect("declared"));
        let mut s = Relation::empty(ss);
        for i in 0..17_i64 {
            s.insert(tuple![i, format!("g{}", i % 5)], 1)
                .expect("typed");
        }
        db.replace("s", s).expect("replace");
        db
    }

    #[test]
    fn parallel_join_matches_reference() {
        let db = db();
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        let want = reference::eval(&e, &db).expect("reference");
        for partitions in [1, 2, 8] {
            let got = execute_parallel(&e, &db, partitions).expect("parallel");
            assert_eq!(got, want, "partitions={partitions}");
        }
    }

    #[test]
    fn parallel_join_with_residual() {
        let db = db();
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1)
                .eq(ScalarExpr::attr(3))
                .and(ScalarExpr::attr(2).cmp(CmpOp::Gt, ScalarExpr::int(100))),
        );
        let want = reference::eval(&e, &db).expect("reference");
        for partitions in [1, 2, 8] {
            let got = execute_parallel(&e, &db, partitions).expect("parallel");
            assert_eq!(got, want, "partitions={partitions}");
        }
    }

    #[test]
    fn parallel_group_by_matches_reference() {
        let db = db();
        for agg in [
            Aggregate::Cnt,
            Aggregate::Sum,
            Aggregate::Avg,
            Aggregate::Min,
        ] {
            let e = RelExpr::scan("r").group_by(&[1], agg, 2);
            let want = reference::eval(&e, &db).expect("reference");
            for partitions in [1, 2, 8] {
                let got = execute_parallel(&e, &db, partitions).expect("parallel");
                assert_eq!(got, want, "agg={agg:?} partitions={partitions}");
            }
        }
    }

    #[test]
    fn empty_keys_fall_back_to_serial() {
        let db = db();
        let e = RelExpr::scan("r").group_by(&[], Aggregate::Sum, 2);
        let want = reference::eval(&e, &db).expect("reference");
        let got = execute_parallel(&e, &db, 4).expect("parallel");
        assert_eq!(got, want);
    }

    #[test]
    fn composite_plans_agree() {
        let db = db();
        let e = RelExpr::scan("r")
            .select(ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::int(150)))
            .join(
                RelExpr::scan("s"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .project(&[4, 2])
            .group_by(&[1], Aggregate::Cnt, 2);
        let want = reference::eval(&e, &db).expect("reference");
        for partitions in [1, 2, 8] {
            let got = execute_parallel(&e, &db, partitions).expect("parallel");
            assert_eq!(got, want, "partitions={partitions}");
        }
    }

    #[test]
    fn theta_join_fallback_agrees() {
        let db = db();
        let e = RelExpr::scan("s").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3)),
        );
        let want = reference::eval(&e, &db).expect("reference");
        let got = execute_parallel(&e, &db, 4).expect("parallel");
        assert_eq!(got, want);
    }

    #[test]
    fn default_partitions_is_positive() {
        assert!(default_partitions() >= 1);
    }

    #[test]
    fn panicking_partition_worker_surfaces_as_error() {
        let jobs: Vec<Box<dyn FnOnce() -> CoreResult<u32> + Send>> = vec![
            Box::new(|| Ok(1)),
            Box::new(|| panic!("injected partition failure")),
            Box::new(|| Ok(3)),
        ];
        let results = run_partitioned(jobs);
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[2], Ok(3), "surviving workers still complete");
        match &results[1] {
            Err(CoreError::WorkerPanicked(msg)) => {
                assert!(msg.contains("injected partition failure"), "got {msg:?}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn worker_errors_propagate_not_panic() {
        let db = db();
        // division by zero inside the partitioned join's residual predicate
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)).and(
                ScalarExpr::int(1)
                    .div(ScalarExpr::attr(2).sub(ScalarExpr::attr(2)))
                    .eq(ScalarExpr::int(1)),
            ),
        );
        let got = execute_parallel(&e, &db, 4).expect_err("divides by zero");
        assert_eq!(got, CoreError::DivisionByZero);
    }

    #[test]
    fn small_batch_sizes_agree_with_reference() {
        let db = db();
        let e = RelExpr::scan("r")
            .join(
                RelExpr::scan("s"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .group_by(&[4], Aggregate::Cnt, 2);
        let want = reference::eval(&e, &db).expect("reference");
        for batch_size in [1, 2, 7, 1024] {
            let opts = ExecOptions {
                batch_size,
                partitions: 3,
            };
            let got = execute_parallel_with(&e, &db, &opts).expect("parallel");
            assert_eq!(got, want, "batch={batch_size}");
        }
    }
}
