//! Partition-parallel operator kernels.
//!
//! §5 of the paper notes that for PRISMA/DB "the language has been
//! extended with special operators to support parallel data processing" —
//! XRA's parallelism was hash-*partitioned*: a relation is split by a hash
//! of the relevant attributes, partitions are processed independently, and
//! the results are unioned. That decomposition is semantics-preserving for
//! exactly the operators whose multiplicity laws factor through key
//! partitions:
//!
//! * equi-joins — matching tuples always hash to the same partition,
//! * group-by with a non-empty key list — whole groups live in one
//!   partition,
//! * selection / projection — trivially per-tuple.
//!
//! [`execute_parallel`] evaluates an algebra expression with these kernels
//! (falling back to the serial kernels where partitioning does not apply);
//! its agreement with the reference evaluator is property-tested.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::rel::RelExpr;
use mera_expr::{Aggregate, ScalarExpr};
use rustc_hash::FxHasher;

use crate::physical::join::{extract_equi_condition, EquiCondition};
use crate::provider::{RelationProvider, Schemas};
use crate::reference;

/// Number of partitions/threads used by default (a small fixed degree —
/// PRISMA ran one partition per node; we run one per thread).
pub const DEFAULT_PARTITIONS: usize = 4;

fn partition_of(t: &Tuple, keys: &AttrList, partitions: usize) -> CoreResult<usize> {
    let mut h = FxHasher::default();
    for &i in keys.indexes() {
        t.attr(i)?.hash(&mut h);
    }
    Ok((h.finish() % partitions as u64) as usize)
}

/// Splits a relation's counted pairs into `partitions` buckets by key
/// hash.
fn partition(
    rel: &Relation,
    keys: &AttrList,
    partitions: usize,
) -> CoreResult<Vec<Vec<(Tuple, u64)>>> {
    let mut out: Vec<Vec<(Tuple, u64)>> = (0..partitions).map(|_| Vec::new()).collect();
    for (t, m) in rel.iter() {
        let p = partition_of(t, keys, partitions)?;
        out[p].push((t.clone(), m));
    }
    Ok(out)
}

/// Hash-partitioned parallel equi-join: both sides are partitioned on
/// their key projections; each partition joins independently on its own
/// thread; partition results concatenate (disjoint by construction).
pub fn parallel_equi_join(
    left: &Relation,
    right: &Relation,
    cond: &EquiCondition,
    residual_check: Option<&ScalarExpr>,
    partitions: usize,
) -> CoreResult<Relation> {
    let partitions = partitions.max(1);
    let out_schema = Arc::new(left.schema().concat(right.schema()));
    let lk = AttrList::new(cond.left_keys.clone())?;
    let rk = AttrList::new(cond.right_keys.clone())?;
    let left_parts = partition(left, &lk, partitions)?;
    let right_parts = partition(right, &rk, partitions)?;

    let results: Vec<CoreResult<Vec<(Tuple, u64)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = left_parts
            .into_iter()
            .zip(right_parts)
            .map(|(lp, rp)| {
                let lk = &lk;
                let rk = &rk;
                scope.spawn(move || -> CoreResult<Vec<(Tuple, u64)>> {
                    // build on the right partition, probe with the left
                    let mut table: rustc_hash::FxHashMap<Tuple, Vec<(Tuple, u64)>> =
                        rustc_hash::FxHashMap::default();
                    for (t, m) in rp {
                        table.entry(t.project(rk)?).or_default().push((t, m));
                    }
                    let mut out = Vec::new();
                    for (lt, lm) in lp {
                        if let Some(matches) = table.get(&lt.project(lk)?) {
                            for (rt, rm) in matches {
                                let joined = lt.concat(rt);
                                let keep = match residual_check {
                                    None => true,
                                    Some(p) => p.eval_predicate(&joined)?,
                                };
                                if keep {
                                    let m = lm.checked_mul(*rm).ok_or(CoreError::Overflow(
                                        "join multiplicity",
                                    ))?;
                                    out.push((joined, m));
                                }
                            }
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    });

    let mut out = Relation::empty(out_schema);
    for part in results {
        for (t, m) in part? {
            out.insert(t, m)?;
        }
    }
    Ok(out)
}

/// Hash-partitioned parallel group-by (non-empty key list): partitions by
/// grouping key, aggregates each partition independently, concatenates —
/// every group is wholly contained in one partition, so no merge phase is
/// needed.
pub fn parallel_group_by(
    rel: &Relation,
    keys: &[usize],
    agg: Aggregate,
    attr: usize,
    partitions: usize,
) -> CoreResult<Relation> {
    if keys.is_empty() {
        // a single global group cannot be partitioned on keys
        return reference::group_by(rel, keys, agg, attr);
    }
    let partitions = partitions.max(1);
    let key_list = AttrList::new_unique(keys.to_vec())?;
    key_list.check_arity(rel.schema().arity())?;
    let parts = partition(rel, &key_list, partitions)?;
    let schema = Arc::clone(rel.schema());

    let results: Vec<CoreResult<Relation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|pairs| {
                let schema = Arc::clone(&schema);
                scope.spawn(move || -> CoreResult<Relation> {
                    let part = Relation::from_counted(schema, pairs)?;
                    reference::group_by(&part, keys, agg, attr)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    });

    let mut iter = results.into_iter();
    let mut out = iter.next().expect("at least one partition")?;
    for r in iter {
        out = out.union(&r?)?;
    }
    Ok(out)
}

/// Evaluates an expression using the partition-parallel kernels where they
/// apply (equi-joins, keyed group-bys) and the serial reference kernels
/// elsewhere.
pub fn execute_parallel(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    partitions: usize,
) -> CoreResult<Relation> {
    expr.schema(&Schemas(provider))?;
    eval_parallel(expr, provider, partitions)
}

fn eval_parallel(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    partitions: usize,
) -> CoreResult<Relation> {
    match expr {
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let l = eval_parallel(left, provider, partitions)?;
            let r = eval_parallel(right, provider, partitions)?;
            let la = l.schema().arity();
            let ra = r.schema().arity();
            match extract_equi_condition(predicate, la, ra) {
                Some(cond) => {
                    let residual = cond.residual.clone();
                    parallel_equi_join(&l, &r, &cond, residual.as_ref(), partitions)
                }
                None => {
                    // θ-joins fall back to the serial definition σ_φ(E×E')
                    let prod = l.product(&r)?;
                    prod.select(|t| predicate.eval_predicate(t))
                }
            }
        }
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let rel = eval_parallel(input, provider, partitions)?;
            parallel_group_by(&rel, keys, *agg, *attr, partitions)
        }
        // unary/binary structure: recurse, then apply the serial kernel
        _ => {
            let children: CoreResult<Vec<RelExpr>> = expr
                .children()
                .iter()
                .map(|c| Ok(RelExpr::values(eval_parallel(c, provider, partitions)?)))
                .collect();
            let rebuilt = expr.with_children(children?);
            reference::eval_unchecked(&rebuilt, provider)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::CmpOp;

    fn db() -> Database {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
            .with("s", Schema::anon(&[DataType::Int, DataType::Str]))
            .expect("fresh");
        let mut db = Database::new(schema);
        let rs = Arc::clone(db.schema().get("r").expect("declared"));
        let mut r = Relation::empty(rs);
        for i in 0..200_i64 {
            r.insert(tuple![i % 17, i], (i % 3 + 1) as u64).expect("typed");
        }
        db.replace("r", r).expect("replace");
        let ss = Arc::clone(db.schema().get("s").expect("declared"));
        let mut s = Relation::empty(ss);
        for i in 0..17_i64 {
            s.insert(tuple![i, format!("g{}", i % 5)], 1).expect("typed");
        }
        db.replace("s", s).expect("replace");
        db
    }

    #[test]
    fn parallel_join_matches_reference() {
        let db = db();
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        let want = reference::eval(&e, &db).expect("reference");
        for partitions in [1, 2, 4, 7] {
            let got = execute_parallel(&e, &db, partitions).expect("parallel");
            assert_eq!(got, want, "partitions={partitions}");
        }
    }

    #[test]
    fn parallel_join_with_residual() {
        let db = db();
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1)
                .eq(ScalarExpr::attr(3))
                .and(ScalarExpr::attr(2).cmp(CmpOp::Gt, ScalarExpr::int(100))),
        );
        let want = reference::eval(&e, &db).expect("reference");
        let got = execute_parallel(&e, &db, 4).expect("parallel");
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_group_by_matches_reference() {
        let db = db();
        for agg in [Aggregate::Cnt, Aggregate::Sum, Aggregate::Avg, Aggregate::Min] {
            let e = RelExpr::scan("r").group_by(&[1], agg, 2);
            let want = reference::eval(&e, &db).expect("reference");
            let got = execute_parallel(&e, &db, 4).expect("parallel");
            assert_eq!(got, want, "agg={agg:?}");
        }
    }

    #[test]
    fn empty_keys_fall_back_to_serial() {
        let db = db();
        let e = RelExpr::scan("r").group_by(&[], Aggregate::Sum, 2);
        let want = reference::eval(&e, &db).expect("reference");
        let got = execute_parallel(&e, &db, 4).expect("parallel");
        assert_eq!(got, want);
    }

    #[test]
    fn composite_plans_agree() {
        let db = db();
        let e = RelExpr::scan("r")
            .select(ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::int(150)))
            .join(
                RelExpr::scan("s"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .project(&[4, 2])
            .group_by(&[1], Aggregate::Cnt, 2);
        let want = reference::eval(&e, &db).expect("reference");
        let got = execute_parallel(&e, &db, 4).expect("parallel");
        assert_eq!(got, want);
    }

    #[test]
    fn theta_join_fallback_agrees() {
        let db = db();
        let e = RelExpr::scan("s").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3)),
        );
        let want = reference::eval(&e, &db).expect("reference");
        let got = execute_parallel(&e, &db, 4).expect("parallel");
        assert_eq!(got, want);
    }
}
