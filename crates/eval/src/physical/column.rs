//! Typed column vectors and the vectorized scalar evaluator.
//!
//! A [`CountedBatch`](super::CountedBatch) stores one [`Column`] per
//! attribute plus a dedicated multiplicity column, DuckDB/Velox style. The
//! two common domains get unboxed storage — `int` as `Vec<i64>`, `str` as
//! `Vec<Sym>` (interned, so a cell is one pointer-sized handle) — and the
//! remaining domains share a `Vec<Value>`. The variant of a column is a
//! **function of its schema type** (`Int → Column::Int`, `Str →
//! Column::Str`, everything else → `Column::Val`); every producer
//! maintains this, so two columns of the same domain always hash and
//! compare element-wise with the same code path.
//!
//! The evaluator here mirrors [`ScalarExpr::eval`] *bit for bit* but over
//! whole columns: comparisons and integer arithmetic run as tight loops
//! over `&[i64]` (autovectorizable, no `Value` boxing), and the boolean
//! connectives evaluate their right side only on the selection of rows the
//! left side did not decide — preserving the row engine's short-circuit
//! semantics, where `σ_{a ∧ b}` never evaluates `b` on a row `a` already
//! rejected. Because a vectorized sub-expression surfaces *some* failing
//! row's error rather than necessarily the first one in row order, the
//! top-level entry points ([`eval_filter_mask`], [`eval_project`]) fall
//! back to row-at-a-time evaluation on error and report the exact error
//! the row engine would have produced: the vectorized path errors if and
//! only if the row path does (both evaluate the same deterministic
//! sub-expressions on the same rows), so the fallback only ever runs on
//! the cold error path.
//!
//! Columnar key hashing for joins, grouping and radix partitioning also
//! lives here: per-element hashes (`i64` mixed directly, `Sym` via its
//! precomputed content hash, boxed values via `FxHasher`) folded across
//! the key columns. These hashes are internally consistent between any two
//! columns of the same domain — which is all hash-then-verify needs — but
//! are *not* the row-tuple hashes of [`ResolvedAttrs::hash_key`]; the two
//! schemes never mix.

use mera_core::prelude::*;
use mera_expr::scalar::{eval_arith, ArithOp, CmpOp, ScalarExpr};
use rustc_hash::FxHasher;
use std::hash::{Hash, Hasher};

use super::CountedBatch;

/// A typed column: one vector of cells for one attribute across a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Unboxed `int` cells.
    Int(Vec<i64>),
    /// Interned `str` cells — one `Sym` handle per row.
    Str(Vec<Sym>),
    /// Boxed cells for the remaining domains (bool, real, date, time,
    /// money). Never holds `Value::Int` or `Value::Str`.
    Val(Vec<Value>),
}

impl Column {
    /// An empty column of the variant `dtype` maps to, with room for
    /// `capacity` cells.
    pub fn with_capacity(dtype: DataType, capacity: usize) -> Self {
        match dtype {
            DataType::Int => Column::Int(Vec::with_capacity(capacity)),
            DataType::Str => Column::Str(Vec::with_capacity(capacity)),
            _ => Column::Val(Vec::with_capacity(capacity)),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(c) => c.len(),
            Column::Str(c) => c.len(),
            Column::Val(c) => c.len(),
        }
    }

    /// True when the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one cell. The value's domain must match the column variant
    /// (callers push schema-conforming rows only).
    pub fn push(&mut self, v: Value) {
        match (self, v) {
            (Column::Int(c), Value::Int(i)) => c.push(i),
            (Column::Str(c), Value::Str(s)) => c.push(s),
            (Column::Val(c), v) => c.push(v),
            _ => unreachable!("column variant is fixed by the schema type"),
        }
    }

    /// Appends one cell by reference (a `Sym`/`Value` clone is a refcount
    /// bump or a `Copy`, never a deep copy).
    pub fn push_ref(&mut self, v: &Value) {
        match (self, v) {
            (Column::Int(c), Value::Int(i)) => c.push(*i),
            (Column::Str(c), Value::Str(s)) => c.push(s.clone()),
            (Column::Val(c), v) => c.push(v.clone()),
            _ => unreachable!("column variant is fixed by the schema type"),
        }
    }

    /// Materialises cell `i` as a [`Value`] (row boundary only).
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(c) => Value::Int(c[i]),
            Column::Str(c) => Value::Str(c[i].clone()),
            Column::Val(c) => c[i].clone(),
        }
    }

    /// A new column holding the cells selected by `sel`, in order.
    pub fn gather(&self, sel: &[u32]) -> Column {
        match self {
            Column::Int(c) => Column::Int(sel.iter().map(|&i| c[i as usize]).collect()),
            Column::Str(c) => Column::Str(sel.iter().map(|&i| c[i as usize].clone()).collect()),
            Column::Val(c) => Column::Val(sel.iter().map(|&i| c[i as usize].clone()).collect()),
        }
    }

    /// Appends every cell of `src` (same variant) to `self`.
    pub fn append(&mut self, src: &Column) {
        match (self, src) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
            (Column::Val(a), Column::Val(b)) => a.extend_from_slice(b),
            _ => unreachable!("appended columns share a schema type"),
        }
    }

    /// Appends the cells of `src` selected by `sel`.
    pub fn append_gather(&mut self, src: &Column, sel: &[u32]) {
        match (self, src) {
            (Column::Int(a), Column::Int(b)) => a.extend(sel.iter().map(|&i| b[i as usize])),
            (Column::Str(a), Column::Str(b)) => {
                a.extend(sel.iter().map(|&i| b[i as usize].clone()))
            }
            (Column::Val(a), Column::Val(b)) => {
                a.extend(sel.iter().map(|&i| b[i as usize].clone()))
            }
            _ => unreachable!("appended columns share a schema type"),
        }
    }

    /// True when cell `i` of `self` equals cell `j` of `other` (columns of
    /// the same domain).
    pub fn eq_cells(&self, i: usize, other: &Column, j: usize) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i] == b[j],
            (Column::Str(a), Column::Str(b)) => a[i] == b[j],
            (Column::Val(a), Column::Val(b)) => a[i] == b[j],
            _ => unreachable!("compared columns share a schema type"),
        }
    }

    /// True when cell `i` equals the materialised value `v`.
    pub fn eq_value(&self, i: usize, v: &Value) -> bool {
        match (self, v) {
            (Column::Int(c), Value::Int(b)) => c[i] == *b,
            (Column::Str(c), Value::Str(b)) => c[i] == *b,
            (Column::Val(c), v) => c[i] == *v,
            _ => false,
        }
    }

    /// Folds every cell's hash into the running per-row hashes.
    pub fn hash_into(&self, hashes: &mut [u64]) {
        match self {
            Column::Int(c) => {
                for (h, v) in hashes.iter_mut().zip(c) {
                    *h = mix(*h, *v as u64);
                }
            }
            Column::Str(c) => {
                for (h, v) in hashes.iter_mut().zip(c) {
                    *h = mix(*h, v.content_hash());
                }
            }
            Column::Val(c) => {
                for (h, v) in hashes.iter_mut().zip(c) {
                    let mut state = FxHasher::default();
                    v.hash(&mut state);
                    *h = mix(*h, state.finish());
                }
            }
        }
    }
}

/// One multiply-rotate mixing step (the `FxHasher` fold constant) used to
/// combine per-column cell hashes into a row key hash.
#[inline]
fn mix(h: u64, x: u64) -> u64 {
    (h.rotate_left(5) ^ x).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// Maps a key hash to one of `parts` radix partitions. Uses the *high*
/// bits: the hash-table bucketing downstream consumes the low bits, so a
/// partition sees an unbiased spread of bucket indexes.
#[inline]
pub(crate) fn radix_of(h: u64, parts: usize) -> usize {
    ((h >> 32) as usize) % parts
}

/// The identity selection `[0, n)` — one `Vec` per batch, reused by every
/// column visit.
fn identity_sel(n: usize) -> Vec<u32> {
    debug_assert!(n <= u32::MAX as usize, "batch larger than u32 rows");
    (0..n as u32).collect()
}

// ----------------------------------------------------------------------
// Vectorized evaluation
// ----------------------------------------------------------------------

/// A vectorized sub-expression result: a column of per-row values or one
/// broadcast constant.
enum Operand {
    Col(Column),
    Const(Value),
}

impl Operand {
    /// Materialises the value for selected position `i` (`i` indexes the
    /// *selection*, not the batch).
    fn value_at(&self, i: usize) -> Value {
        match self {
            Operand::Col(c) => c.value(i),
            Operand::Const(v) => v.clone(),
        }
    }

    /// The domain of this operand (selection known non-empty).
    fn dtype(&self) -> DataType {
        match self {
            Operand::Col(Column::Int(_)) => DataType::Int,
            Operand::Col(Column::Str(_)) => DataType::Str,
            Operand::Col(Column::Val(c)) => c[0].data_type(),
            Operand::Const(v) => v.data_type(),
        }
    }
}

/// Evaluates `σ_φ`'s mask over a whole batch: `mask[i]` is the predicate's
/// verdict for row `i`. On error, re-evaluates row-at-a-time and returns
/// the exact error the row engine produces.
pub(crate) fn eval_filter_mask(
    predicate: &ScalarExpr,
    batch: &CountedBatch,
) -> CoreResult<Vec<bool>> {
    let sel = identity_sel(batch.len());
    match eval_mask_sel(predicate, batch, &sel) {
        Ok(mask) => Ok(mask),
        Err(e) => Err(rowwise_filter_error(predicate, batch).unwrap_or(e)),
    }
}

/// Evaluates a (plain or extended) projection over a whole batch: one
/// output column per expression, in the variant `out_schema` dictates. On
/// error, falls back row-at-a-time for the row engine's exact error.
pub(crate) fn eval_project(
    exprs: &[ScalarExpr],
    out_schema: &SchemaRef,
    batch: &CountedBatch,
) -> CoreResult<Vec<Column>> {
    let sel = identity_sel(batch.len());
    let run = || -> CoreResult<Vec<Column>> {
        exprs
            .iter()
            .zip(out_schema.attributes())
            .map(|(e, attr)| {
                let out = eval_operand(e, batch, &sel)?;
                Ok(operand_to_column(out, attr.dtype, sel.len()))
            })
            .collect()
    };
    match run() {
        Ok(cols) => Ok(cols),
        Err(e) => Err(rowwise_project_error(exprs, batch).unwrap_or(e)),
    }
}

/// Broadcasts a constant (or passes a column through) as a full column of
/// the schema-dictated variant.
fn operand_to_column(op: Operand, dtype: DataType, n: usize) -> Column {
    match op {
        Operand::Col(c) => {
            debug_assert_eq!(
                std::mem::discriminant(&c),
                std::mem::discriminant(&Column::with_capacity(dtype, 0)),
                "column variant must match the schema type"
            );
            c
        }
        Operand::Const(v) => {
            let mut c = Column::with_capacity(dtype, n);
            for _ in 0..n {
                c.push_ref(&v);
            }
            c
        }
    }
}

/// Row-order re-evaluation of a failed filter batch: the first error in
/// row order, exactly as the row engine reports it.
fn rowwise_filter_error(predicate: &ScalarExpr, batch: &CountedBatch) -> Option<CoreError> {
    for i in 0..batch.len() {
        if let Err(e) = predicate.eval_predicate(&batch.row(i)) {
            return Some(e);
        }
    }
    None
}

/// Row-order re-evaluation of a failed projection batch (expressions
/// left-to-right within a row, as the row engine evaluates them).
fn rowwise_project_error(exprs: &[ScalarExpr], batch: &CountedBatch) -> Option<CoreError> {
    for i in 0..batch.len() {
        let t = batch.row(i);
        for e in exprs {
            if let Err(err) = e.eval(&t) {
                return Some(err);
            }
        }
    }
    None
}

/// Evaluates a boolean-typed expression as a mask over the rows selected
/// by `sel` (`out[k]` is the verdict for batch row `sel[k]`). `And`/`Or`
/// evaluate their right side only on the sub-selection the left side did
/// not decide, matching the row engine's short-circuit.
fn eval_mask_sel(e: &ScalarExpr, batch: &CountedBatch, sel: &[u32]) -> CoreResult<Vec<bool>> {
    if sel.is_empty() {
        return Ok(Vec::new());
    }
    match e {
        ScalarExpr::Literal(Value::Bool(b)) => Ok(vec![*b; sel.len()]),
        ScalarExpr::Not(inner) => {
            let mut mask = eval_mask_sel(inner, batch, sel)?;
            for b in &mut mask {
                *b = !*b;
            }
            Ok(mask)
        }
        ScalarExpr::And(l, r) => {
            let mut mask = eval_mask_sel(l, batch, sel)?;
            let sub: Vec<u32> = sel
                .iter()
                .zip(&mask)
                .filter_map(|(&row, &keep)| keep.then_some(row))
                .collect();
            if sub.is_empty() {
                return Ok(mask);
            }
            let rmask = eval_mask_sel(r, batch, &sub)?;
            for (b, &rb) in mask.iter_mut().filter(|b| **b).zip(&rmask) {
                *b = rb;
            }
            Ok(mask)
        }
        ScalarExpr::Or(l, r) => {
            let mut mask = eval_mask_sel(l, batch, sel)?;
            let sub: Vec<u32> = sel
                .iter()
                .zip(&mask)
                .filter_map(|(&row, &keep)| (!keep).then_some(row))
                .collect();
            if sub.is_empty() {
                return Ok(mask);
            }
            let rmask = eval_mask_sel(r, batch, &sub)?;
            for (b, &rb) in mask.iter_mut().filter(|b| !**b).zip(&rmask) {
                *b = rb;
            }
            Ok(mask)
        }
        ScalarExpr::Cmp(op, l, r) => {
            let lv = eval_operand(l, batch, sel)?;
            let rv = eval_operand(r, batch, sel)?;
            cmp_operands(*op, &lv, &rv, sel.len())
        }
        // attribute references, non-bool literals, arithmetic: evaluate as
        // an operand and coerce per row exactly like `eval_predicate`
        other => {
            let v = eval_operand(other, batch, sel)?;
            match v {
                Operand::Const(c) => Ok(vec![c.as_bool()?; sel.len()]),
                Operand::Col(Column::Val(vals)) => {
                    vals.iter().map(|v| v.as_bool()).collect::<CoreResult<_>>()
                }
                Operand::Col(col) => {
                    // int/str columns are never boolean: surface the row
                    // engine's per-row coercion error
                    Err(col.value(0).as_bool().expect_err("non-bool domain"))
                }
            }
        }
    }
}

/// Compares two operands element-wise, mirroring `ScalarExpr::eval`'s
/// `Cmp` arm: a domain mismatch is the row engine's per-row `TypeError`,
/// same-domain cells compare via `Value`'s total order.
fn cmp_operands(op: CmpOp, l: &Operand, r: &Operand, n: usize) -> CoreResult<Vec<bool>> {
    let (lt, rt) = (l.dtype(), r.dtype());
    if lt != rt {
        return Err(CoreError::TypeError(format!(
            "cannot compare {lt} with {rt}"
        )));
    }
    match (l, r) {
        (Operand::Col(Column::Int(a)), Operand::Col(Column::Int(b))) => {
            Ok(a.iter().zip(b).map(|(x, y)| op.test(x.cmp(y))).collect())
        }
        (Operand::Col(Column::Int(a)), Operand::Const(Value::Int(y))) => {
            Ok(a.iter().map(|x| op.test(x.cmp(y))).collect())
        }
        (Operand::Const(Value::Int(x)), Operand::Col(Column::Int(b))) => {
            Ok(b.iter().map(|y| op.test(x.cmp(y))).collect())
        }
        (Operand::Col(Column::Str(a)), Operand::Const(Value::Str(y))) if !op.needs_order() => {
            // interned equality: one pointer/handle comparison per row
            Ok(a.iter()
                .map(|x| {
                    op.test(if x == y {
                        std::cmp::Ordering::Equal
                    } else {
                        std::cmp::Ordering::Less
                    })
                })
                .collect())
        }
        (Operand::Col(Column::Str(a)), Operand::Col(Column::Str(b))) if !op.needs_order() => Ok(a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                op.test(if x == y {
                    std::cmp::Ordering::Equal
                } else {
                    std::cmp::Ordering::Less
                })
            })
            .collect()),
        _ => Ok((0..n)
            .map(|i| op.test(l.value_at(i).cmp(&r.value_at(i))))
            .collect()),
    }
}

/// Evaluates any scalar expression over the rows selected by `sel`.
fn eval_operand(e: &ScalarExpr, batch: &CountedBatch, sel: &[u32]) -> CoreResult<Operand> {
    match e {
        ScalarExpr::Attr(i) => {
            let arity = batch.schema().arity();
            if *i == 0 || *i > arity {
                return Err(CoreError::AttrIndexOutOfRange { index: *i, arity });
            }
            Ok(Operand::Col(batch.column(*i - 1).gather(sel)))
        }
        ScalarExpr::Literal(v) => Ok(Operand::Const(v.clone())),
        ScalarExpr::Arith(op, l, r) => {
            let lv = eval_operand(l, batch, sel)?;
            let rv = eval_operand(r, batch, sel)?;
            arith_operands(e, *op, &lv, &rv, batch, sel.len())
        }
        ScalarExpr::Neg(inner) => {
            let v = eval_operand(inner, batch, sel)?;
            match v {
                Operand::Col(Column::Int(c)) => {
                    let mut out = Vec::with_capacity(c.len());
                    for x in c {
                        out.push(x.checked_neg().ok_or(CoreError::Overflow("negation"))?);
                    }
                    Ok(Operand::Col(Column::Int(out)))
                }
                Operand::Const(v) => Ok(Operand::Const(neg_value(&v)?)),
                Operand::Col(col) => {
                    let n = col.len();
                    let mut out = Column::with_capacity(v_dtype(&col), n);
                    for i in 0..n {
                        out.push(neg_value(&col.value(i))?);
                    }
                    Ok(Operand::Col(out))
                }
            }
        }
        ScalarExpr::Concat(l, r) => {
            let lv = eval_operand(l, batch, sel)?;
            let rv = eval_operand(r, batch, sel)?;
            let mut out = Vec::with_capacity(sel.len());
            for i in 0..sel.len() {
                out.push(concat_values(&lv.value_at(i), &rv.value_at(i))?);
            }
            Ok(Operand::Col(Column::Str(out)))
        }
        // boolean-typed sub-trees nested inside a value position
        ScalarExpr::Cmp(..) | ScalarExpr::And(..) | ScalarExpr::Or(..) | ScalarExpr::Not(..) => {
            let mask = eval_mask_sel(e, batch, sel)?;
            Ok(Operand::Col(Column::Val(
                mask.into_iter().map(Value::Bool).collect(),
            )))
        }
    }
}

/// The domain of a (non-empty) column.
fn v_dtype(c: &Column) -> DataType {
    match c {
        Column::Int(_) => DataType::Int,
        Column::Str(_) => DataType::Str,
        Column::Val(v) => v[0].data_type(),
    }
}

/// Element-wise arithmetic with an `int ⊕ int` fast path; the general path
/// defers to [`eval_arith`] per cell, so every domain rule, overflow check
/// and error message is the row engine's.
fn arith_operands(
    e: &ScalarExpr,
    op: ArithOp,
    l: &Operand,
    r: &Operand,
    batch: &CountedBatch,
    n: usize,
) -> CoreResult<Operand> {
    match (l, r) {
        (Operand::Const(a), Operand::Const(b)) => Ok(Operand::Const(eval_arith(op, a, b)?)),
        (Operand::Col(Column::Int(a)), Operand::Const(Value::Int(b))) => {
            int_arith(op, a.iter().copied(), std::iter::repeat(*b), a.len())
        }
        (Operand::Const(Value::Int(a)), Operand::Col(Column::Int(b))) => {
            int_arith(op, std::iter::repeat(*a), b.iter().copied(), b.len())
        }
        (Operand::Col(Column::Int(a)), Operand::Col(Column::Int(b))) => {
            int_arith(op, a.iter().copied(), b.iter().copied(), a.len())
        }
        _ => {
            let dtype = e.infer_type(batch.schema())?;
            let mut out = Column::with_capacity(dtype, n);
            for i in 0..n {
                out.push(eval_arith(op, &l.value_at(i), &r.value_at(i))?);
            }
            Ok(Operand::Col(out))
        }
    }
}

/// Checked `int` arithmetic loop, mirroring `eval_arith`'s `Int` rules.
fn int_arith(
    op: ArithOp,
    l: impl Iterator<Item = i64>,
    r: impl Iterator<Item = i64>,
    n: usize,
) -> CoreResult<Operand> {
    let mut out = Vec::with_capacity(n);
    for (a, b) in l.zip(r).take(n) {
        let v = match op {
            ArithOp::Add => a.checked_add(b),
            ArithOp::Sub => a.checked_sub(b),
            ArithOp::Mul => a.checked_mul(b),
            ArithOp::Div => {
                if b == 0 {
                    return Err(CoreError::DivisionByZero);
                }
                a.checked_div(b)
            }
            ArithOp::Mod => {
                if b == 0 {
                    return Err(CoreError::DivisionByZero);
                }
                a.checked_rem(b)
            }
        };
        out.push(v.ok_or(CoreError::Overflow("int arithmetic"))?);
    }
    Ok(Operand::Col(Column::Int(out)))
}

/// Negation of one value, mirroring `ScalarExpr::eval`'s `Neg` arm.
fn neg_value(v: &Value) -> CoreResult<Value> {
    match v {
        Value::Int(i) => Ok(Value::Int(
            i.checked_neg().ok_or(CoreError::Overflow("negation"))?,
        )),
        Value::Real(r) => Value::real(-r.get()),
        Value::Money(m) => Ok(Value::Money(Money(
            m.0.checked_neg().ok_or(CoreError::Overflow("negation"))?,
        ))),
        other => Err(CoreError::TypeError(format!(
            "cannot negate {}",
            other.data_type()
        ))),
    }
}

/// String concatenation of two values, mirroring `eval`'s `Concat` arm.
/// Returns the interned result directly (the caller pushes into a `Str`
/// column).
fn concat_values(a: &Value, b: &Value) -> CoreResult<Sym> {
    match (a, b) {
        (Value::Str(a), Value::Str(b)) => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Ok(Sym::new(&s))
        }
        (a, b) => Err(CoreError::TypeError(format!(
            "cannot concatenate {} with {}",
            a.data_type(),
            b.data_type()
        ))),
    }
}
