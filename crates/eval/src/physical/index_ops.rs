//! Index-backed physical operators: point lookups and index-nested-loop
//! joins.
//!
//! These are the *execution* half of secondary indexes as access paths.
//! The planner ([`planner`](super::planner)) maps
//!
//! * `σ_{%i=c ∧ …}(R)` with a matching index to [`IndexLookupOp`] (plus a
//!   residual filter), and
//! * `L ⋈_{keys…} R` with an index on `R`'s join keys to
//!   [`IndexNestedLoopJoin`] — but only when the cost-based optimizer
//!   hinted the join (see [`IndexJoinHints`](crate::index::IndexJoinHints));
//!   probing an index per left row beats building a hash table exactly
//!   when the probe side is small relative to the indexed side, which is
//!   a statistics question, not a shape question.
//!
//! Both operators preserve multiplicities: an index over a bag stores the
//! counted tuples, so a lookup yields exactly what scan-and-filter would,
//! and the join multiplies multiplicities per Definition 3.2.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::ScalarExpr;

use crate::index::HashIndex;

use super::{BoxedOp, CountedBatch, Operator};

/// Streams the counted tuples of one index key — the physical form of a
/// point-selection over an indexed base relation.
pub struct IndexLookupOp<'a> {
    index: &'a HashIndex,
    key: Tuple,
    batch_size: usize,
    pos: usize,
    done: bool,
}

impl<'a> IndexLookupOp<'a> {
    /// A lookup of `key` (in the index's key-attribute order).
    pub fn new(index: &'a HashIndex, key: Tuple, batch_size: usize) -> Self {
        IndexLookupOp {
            index,
            key,
            batch_size: batch_size.max(1),
            pos: 0,
            done: false,
        }
    }
}

impl Operator for IndexLookupOp<'_> {
    fn schema(&self) -> &SchemaRef {
        self.index.schema()
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        if self.done {
            return Ok(None);
        }
        let matches = self.index.matches(&self.key);
        if self.pos >= matches.len() {
            self.done = true;
            return Ok(None);
        }
        let end = (self.pos + self.batch_size).min(matches.len());
        let mut out = CountedBatch::with_capacity(Arc::clone(self.index.schema()), end - self.pos);
        for (t, m) in &matches[self.pos..end] {
            out.push_row(t, *m);
        }
        self.pos = end;
        if self.pos >= matches.len() {
            self.done = true;
        }
        Ok(Some(out))
    }
}

/// An index-nested-loop join: for each left row, probe the right-side
/// index on the join keys and emit the concatenated matches.
pub struct IndexNestedLoopJoin<'a> {
    left: BoxedOp<'a>,
    index: &'a HashIndex,
    /// 0-based offsets of the join keys in the left schema, in the
    /// *index's* key-attribute order.
    left_key_offsets: Vec<usize>,
    residual: Option<ScalarExpr>,
    schema: SchemaRef,
    batch_size: usize,
    /// Current left batch and the next row to probe within it.
    current: Option<CountedBatch>,
    row: usize,
}

impl<'a> IndexNestedLoopJoin<'a> {
    /// Builds the join. `left_keys`/`right_keys` are 0-based parallel
    /// offsets into the left and right schemas (note that
    /// [`extract_equi_condition`](super::join::extract_equi_condition)
    /// emits 1-based attribute numbers — the planner converts);
    /// `right_keys` must be exactly the index's key set. The residual is
    /// evaluated over the concatenated schema.
    pub fn build(
        left: BoxedOp<'a>,
        index: &'a HashIndex,
        left_keys: &[usize],
        right_keys: &[usize],
        residual: Option<ScalarExpr>,
        batch_size: usize,
    ) -> CoreResult<Self> {
        let schema = Arc::new(left.schema().concat(index.schema()));
        // reorder the probe keys into the index's key-attribute order
        let mut left_key_offsets = Vec::with_capacity(left_keys.len());
        for &ik in index.key_attrs() {
            let pos = right_keys
                .iter()
                .position(|&rk| rk + 1 == ik)
                .ok_or_else(|| {
                    CoreError::TypeError(format!(
                        "index-nested-loop join keys {right_keys:?} do not cover index \
                         attribute {ik}"
                    ))
                })?;
            left_key_offsets.push(left_keys[pos]);
        }
        Ok(IndexNestedLoopJoin {
            left,
            index,
            left_key_offsets,
            residual,
            schema,
            batch_size: batch_size.max(1),
            current: None,
            row: 0,
        })
    }
}

impl Operator for IndexNestedLoopJoin<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        let mut out = CountedBatch::with_capacity(Arc::clone(&self.schema), self.batch_size);
        loop {
            if self.current.is_none() {
                match self.left.next_batch()? {
                    Some(b) => {
                        self.row = 0;
                        self.current = Some(b);
                    }
                    None => {
                        return Ok((!out.is_empty()).then_some(out));
                    }
                }
            }
            let batch = self.current.as_ref().expect("just refilled");
            while self.row < batch.len() {
                let (lt, lm) = (batch.row(self.row), batch.counts()[self.row]);
                self.row += 1;
                let key = Tuple::new(
                    self.left_key_offsets
                        .iter()
                        .map(|&o| lt.values()[o].clone())
                        .collect(),
                );
                for (rt, rm) in self.index.matches(&key) {
                    let joined = lt.concat(rt);
                    if let Some(residual) = &self.residual {
                        if !residual.eval_predicate(&joined)? {
                            continue;
                        }
                    }
                    out.push_row(&joined, lm * rm);
                }
                if out.len() >= self.batch_size {
                    return Ok(Some(out));
                }
            }
            self.current = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::collect;
    use crate::physical::ops::ScanOp;
    use mera_core::tuple;

    fn edge_rel() -> Relation {
        let schema = Arc::new(Schema::anon(&[DataType::Int, DataType::Int]));
        Relation::from_counted(
            schema,
            vec![
                (tuple![1_i64, 10_i64], 1),
                (tuple![1_i64, 11_i64], 2),
                (tuple![2_i64, 20_i64], 1),
            ],
        )
        .expect("typed")
    }

    #[test]
    fn lookup_op_streams_matches() {
        let rel = edge_rel();
        let idx = HashIndex::build(&rel, &[1]).expect("builds");
        let op = IndexLookupOp::new(&idx, tuple![1_i64], 1);
        let out = collect(Box::new(op)).expect("collects");
        assert_eq!(out.len(), 3);
        assert_eq!(out.multiplicity(&tuple![1_i64, 11_i64]), 2);
        let op = IndexLookupOp::new(&idx, tuple![9_i64], 16);
        assert!(collect(Box::new(op)).expect("collects").is_empty());
    }

    #[test]
    fn index_nested_loop_matches_hash_join() {
        let left = edge_rel();
        let right = edge_rel();
        let idx = HashIndex::build(&right, &[1]).expect("builds");
        // left.%1 = right.%1 → left_keys [0], right_keys [0]
        let lscan: BoxedOp<'_> = Box::new(ScanOp::new(&left, 2));
        let join = IndexNestedLoopJoin::build(lscan, &idx, &[0], &[0], None, 2).expect("builds");
        let out = collect(Box::new(join)).expect("collects");
        // 1-keyed rows: (1,10)×1 and (1,11)×2 on each side → 9 pairs with
        // multiplicity; 2-keyed: 1
        assert_eq!(out.len(), 10);
        assert_eq!(
            out.multiplicity(&tuple![1_i64, 11_i64, 1_i64, 11_i64]),
            4,
            "multiplicities multiply"
        );
    }

    #[test]
    fn residual_filters_concatenated_rows() {
        let left = edge_rel();
        let right = edge_rel();
        let idx = HashIndex::build(&right, &[1]).expect("builds");
        let lscan: BoxedOp<'_> = Box::new(ScanOp::new(&left, 8));
        let residual = ScalarExpr::attr(2).eq(ScalarExpr::attr(4));
        let join =
            IndexNestedLoopJoin::build(lscan, &idx, &[0], &[0], Some(residual), 8).expect("builds");
        let out = collect(Box::new(join)).expect("collects");
        assert_eq!(out.distinct_len(), 3, "only equal second columns survive");
    }
}
