//! The physical engine: Volcano-style operators over *counted* tuple
//! streams.
//!
//! Every operator yields `(Tuple, multiplicity)` pairs. Streaming counted
//! pairs rather than duplicate-expanded tuples keeps bag semantics exact
//! (multiplicities are arithmetic, Definitions 3.1–3.2) and means a tuple
//! with multiplicity one million costs one stream element, not a million.
//!
//! A counted stream may emit the *same* tuple in several chunks (e.g. after
//! a union or a collapsing projection); operators whose multiplicity law
//! needs the merged count (difference, intersection, group-by) therefore
//! materialise and merge their inputs, while selection, projection, product
//! and join act chunk-wise — their laws are linear in the multiplicity.
//!
//! The [`planner`] translates a [`RelExpr`](mera_expr::RelExpr) into an
//! operator tree, picking hash joins for equi-predicates and falling back
//! to nested loops, and [`collect`] drains any operator into a materialised
//! [`Relation`].

pub mod agg;
pub mod join;
pub mod ops;
pub mod planner;
pub mod stats;

use mera_core::prelude::*;

/// One element of a counted stream.
pub type Counted = (Tuple, u64);

/// A Volcano-style physical operator producing a counted tuple stream.
pub trait Operator {
    /// The schema of the tuples this operator produces.
    fn schema(&self) -> &SchemaRef;

    /// Produces the next counted chunk, `None` at end of stream.
    ///
    /// Multiplicities are always ≥ 1; operators never emit empty chunks.
    fn next(&mut self) -> CoreResult<Option<Counted>>;
}

/// A boxed operator, the unit of plan composition.
pub type BoxedOp = Box<dyn Operator>;

/// Drains an operator into a materialised relation, merging multiplicities
/// of tuples that arrive in separate chunks.
pub fn collect(mut op: BoxedOp) -> CoreResult<Relation> {
    let schema = std::sync::Arc::clone(op.schema());
    let mut out = Relation::empty(schema);
    while let Some((t, m)) = op.next()? {
        out.insert(t, m)?;
    }
    Ok(out)
}

/// Plans and executes an expression against a relation provider — the
/// physical counterpart of [`reference::eval`](crate::reference::eval).
pub fn execute(
    expr: &mera_expr::RelExpr,
    provider: &(impl crate::provider::RelationProvider + ?Sized),
) -> CoreResult<Relation> {
    let plan = planner::plan(expr, provider)?;
    collect(plan)
}
