//! The physical engine: pipelined operators over *batched counted* tuple
//! streams.
//!
//! Every operator yields [`CountedBatch`]es — schema-tagged **columnar**
//! chunks: one typed [`Column`] per attribute plus a dedicated
//! multiplicity column. Streaming counted rows rather than
//! duplicate-expanded tuples keeps bag semantics exact (multiplicities are
//! arithmetic, Definitions 3.1–3.2) and means a tuple with multiplicity
//! one million costs one row, not a million; the columnar layout on top
//! turns the inner loops of selection, projection and hash probing into
//! tight per-column loops over unboxed cells (`Vec<i64>`, interned
//! `Vec<Sym>`) — see [`column`] for the layout and the vectorized
//! evaluator, and DESIGN.md §9 for the row-materialization boundary.
//!
//! A counted stream may emit the *same* tuple in several rows and batches
//! (e.g. after a union or a collapsing projection); operators whose
//! multiplicity law needs the merged count (difference, intersection,
//! group-by) therefore materialise and merge their inputs, while
//! selection, projection, product and join act row-wise — their laws are
//! linear in the multiplicity.
//!
//! The [`planner`] translates a [`RelExpr`](mera_expr::RelExpr) into an
//! operator tree, picking hash joins for equi-predicates and falling back
//! to nested loops, and [`collect`] drains any operator into a
//! materialised [`Relation`]. Operators borrow their inputs (`BoxedOp<'a>`
//! carries a lifetime), so scans stream straight out of the stored
//! relation without an upfront snapshot.

pub mod agg;
pub mod column;
pub mod index_ops;
pub mod join;
pub mod ops;
pub mod planner;
pub mod stats;

use mera_core::prelude::*;

pub use crate::engine::{ExecOptions, DEFAULT_BATCH_SIZE};
pub use column::Column;

/// One row of a counted stream: a tuple and its multiplicity. The
/// row-materialization boundary of the engine — operators exchange
/// columnar [`CountedBatch`]es and only consumers that genuinely need
/// tuples (result relations, bags, seen-sets, the blocking breakers)
/// materialise `Counted` pairs.
pub type Counted = (Tuple, u64);

/// A schema-tagged columnar chunk of counted rows — the unit of data flow
/// between physical operators. Cell `i` of every column together with
/// `counts[i]` forms one counted row.
///
/// Invariants maintained by the operators: batches are non-empty, every
/// multiplicity is ≥ 1, all columns have `counts.len()` cells, and each
/// column's variant is the one its schema type maps to (see [`Column`]).
/// The same tuple may occur in several rows (and in several batches);
/// consumers that need merged counts must merge.
#[derive(Debug, Clone, PartialEq)]
pub struct CountedBatch {
    schema: SchemaRef,
    columns: Vec<Column>,
    counts: Vec<u64>,
}

impl CountedBatch {
    /// An empty batch over `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// An empty batch with room for `capacity` rows.
    pub fn with_capacity(schema: SchemaRef, capacity: usize) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| Column::with_capacity(a.dtype, capacity))
            .collect();
        CountedBatch {
            schema,
            columns,
            counts: Vec::with_capacity(capacity),
        }
    }

    /// Builds a batch by transposing row-major counted pairs (the
    /// materialization boundary for breaker outputs and owned row chunks).
    pub fn from_rows(schema: SchemaRef, rows: Vec<Counted>) -> Self {
        let mut batch = Self::with_capacity(schema, rows.len());
        for (t, m) in &rows {
            batch.push_row(t, *m);
        }
        batch
    }

    /// Assembles a batch from already-built columns (all of equal length,
    /// variants matching `schema`).
    pub(crate) fn from_parts(schema: SchemaRef, columns: Vec<Column>, counts: Vec<u64>) -> Self {
        debug_assert_eq!(columns.len(), schema.arity());
        debug_assert!(columns.iter().all(|c| c.len() == counts.len()));
        CountedBatch {
            schema,
            columns,
            counts,
        }
    }

    /// Decomposes the batch into its parts.
    pub(crate) fn into_parts(self) -> (SchemaRef, Vec<Column>, Vec<u64>) {
        (self.schema, self.columns, self.counts)
    }

    /// The schema every row conforms to.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The attribute columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// One attribute column by 0-based offset.
    pub fn column(&self, offset: usize) -> &Column {
        &self.columns[offset]
    }

    /// The multiplicity column.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of rows (counted pairs, not multiplicity-expanded tuples).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total multiplicity across all rows.
    pub fn total_multiplicity(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Appends one counted row, splitting the tuple across the columns.
    pub fn push_row(&mut self, tuple: &Tuple, multiplicity: u64) {
        for (col, v) in self.columns.iter_mut().zip(tuple.values()) {
            col.push_ref(v);
        }
        self.counts.push(multiplicity);
    }

    /// Materialises row `i` as a [`Tuple`] (the row boundary — hot paths
    /// stay columnar and never call this).
    pub fn row(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Per-row key hashes over the 0-based key column `offsets`, combined
    /// with [`column`]'s internally-consistent columnar hash.
    pub fn key_hashes(&self, offsets: &[usize]) -> Vec<u64> {
        let mut hashes = vec![0_u64; self.len()];
        for &off in offsets {
            self.columns[off].hash_into(&mut hashes);
        }
        hashes
    }

    /// A new batch holding the rows selected by `sel`, in order.
    pub fn gather(&self, sel: &[u32]) -> CountedBatch {
        CountedBatch {
            schema: std::sync::Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.gather(sel)).collect(),
            counts: sel.iter().map(|&i| self.counts[i as usize]).collect(),
        }
    }

    /// Appends every row of `src` (same schema) to `self`.
    pub fn append(&mut self, src: &CountedBatch) {
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.append(s);
        }
        self.counts.extend_from_slice(&src.counts);
    }

    /// Appends the rows of `src` selected by `sel`.
    pub fn append_gather(&mut self, src: &CountedBatch, sel: &[u32]) {
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            dst.append_gather(s, sel);
        }
        self.counts
            .extend(sel.iter().map(|&i| src.counts[i as usize]));
    }

    /// Materialises the whole batch as row-major counted pairs.
    pub fn into_rows(self) -> Vec<Counted> {
        (0..self.len())
            .map(|i| (self.row(i), self.counts[i]))
            .collect()
    }

    /// Iterates over materialised rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Counted> + '_ {
        (0..self.len()).map(|i| (self.row(i), self.counts[i]))
    }
}

impl IntoIterator for CountedBatch {
    type Item = Counted;
    type IntoIter = std::vec::IntoIter<Counted>;

    fn into_iter(self) -> Self::IntoIter {
        self.into_rows().into_iter()
    }
}

/// A pipelined physical operator producing a batched counted stream.
pub trait Operator {
    /// The schema of the tuples this operator produces.
    fn schema(&self) -> &SchemaRef;

    /// Produces the next batch, `None` at end of stream.
    ///
    /// Batches are never empty and multiplicities are always ≥ 1. The
    /// batch size is a *target*: operators whose output expands (joins)
    /// may overshoot, and operators that filter may undershoot.
    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>>;
}

/// A boxed operator, the unit of plan composition. The lifetime ties the
/// plan to the relations (and expression literals) it scans.
pub type BoxedOp<'a> = Box<dyn Operator + 'a>;

/// Drains an operator into a materialised relation, merging multiplicities
/// of tuples that arrive in separate rows or batches.
pub fn collect(mut op: BoxedOp<'_>) -> CoreResult<Relation> {
    let schema = std::sync::Arc::clone(op.schema());
    let mut out = Relation::empty(schema);
    while let Some(batch) = op.next_batch()? {
        for (t, m) in batch {
            out.insert(t, m)?;
        }
    }
    Ok(out)
}

/// Drains an operator into a plain row vector *without* merging
/// multiplicities — the same tuple may occur in several rows. Used by the
/// partition-parallel kernels so worker results can be moved (not cloned)
/// into the single final merge.
pub fn collect_rows(mut op: BoxedOp<'_>) -> CoreResult<Vec<Counted>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch()? {
        out.extend(batch);
    }
    Ok(out)
}

/// Plans and executes an expression with default options — the physical
/// counterpart of [`reference::eval`](crate::reference::eval).
pub fn execute(
    expr: &mera_expr::RelExpr,
    provider: &(impl crate::provider::RelationProvider + ?Sized),
) -> CoreResult<Relation> {
    execute_with(expr, provider, &ExecOptions::default())
}

/// Plans and executes an expression with explicit options.
pub fn execute_with(
    expr: &mera_expr::RelExpr,
    provider: &(impl crate::provider::RelationProvider + ?Sized),
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    let plan = planner::plan_with(expr, provider, *opts)?;
    collect(plan)
}
