//! The physical engine: pipelined operators over *batched counted* tuple
//! streams.
//!
//! Every operator yields [`CountedBatch`]es — schema-tagged vectors of
//! `(Tuple, multiplicity)` pairs. Streaming counted pairs rather than
//! duplicate-expanded tuples keeps bag semantics exact (multiplicities are
//! arithmetic, Definitions 3.1–3.2) and means a tuple with multiplicity
//! one million costs one row, not a million; batching them amortises the
//! per-row virtual call into one call per ~thousand rows, so the inner
//! loops of selection, projection and hash probing are tight loops over a
//! contiguous chunk.
//!
//! A counted stream may emit the *same* tuple in several rows and batches
//! (e.g. after a union or a collapsing projection); operators whose
//! multiplicity law needs the merged count (difference, intersection,
//! group-by) therefore materialise and merge their inputs, while
//! selection, projection, product and join act row-wise — their laws are
//! linear in the multiplicity.
//!
//! The [`planner`] translates a [`RelExpr`](mera_expr::RelExpr) into an
//! operator tree, picking hash joins for equi-predicates and falling back
//! to nested loops, and [`collect`] drains any operator into a
//! materialised [`Relation`]. Operators borrow their inputs (`BoxedOp<'a>`
//! carries a lifetime), so scans stream straight out of the stored
//! relation without an upfront snapshot.

pub mod agg;
pub mod join;
pub mod ops;
pub mod planner;
pub mod stats;

use mera_core::prelude::*;

pub use crate::engine::{ExecOptions, DEFAULT_BATCH_SIZE};

/// One row of a counted stream: a tuple and its multiplicity.
pub type Counted = (Tuple, u64);

/// A schema-tagged chunk of counted rows — the unit of data flow between
/// physical operators.
///
/// Invariants maintained by the operators: batches are non-empty and every
/// multiplicity is ≥ 1. The same tuple may occur in several rows (and in
/// several batches); consumers that need merged counts must merge.
#[derive(Debug, Clone, PartialEq)]
pub struct CountedBatch {
    schema: SchemaRef,
    rows: Vec<Counted>,
}

impl CountedBatch {
    /// An empty batch over `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        CountedBatch {
            schema,
            rows: Vec::new(),
        }
    }

    /// An empty batch with room for `capacity` rows.
    pub fn with_capacity(schema: SchemaRef, capacity: usize) -> Self {
        CountedBatch {
            schema,
            rows: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an already-built row vector.
    pub fn from_rows(schema: SchemaRef, rows: Vec<Counted>) -> Self {
        CountedBatch { schema, rows }
    }

    /// The schema every row conforms to.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The rows of the batch.
    pub fn rows(&self) -> &[Counted] {
        &self.rows
    }

    /// Number of rows (counted pairs, not multiplicity-expanded tuples).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total multiplicity across all rows.
    pub fn total_multiplicity(&self) -> u64 {
        self.rows.iter().map(|(_, m)| m).sum()
    }

    /// Appends a counted row.
    pub fn push(&mut self, tuple: Tuple, multiplicity: u64) {
        self.rows.push((tuple, multiplicity));
    }

    /// Consumes the batch, yielding its rows.
    pub fn into_rows(self) -> Vec<Counted> {
        self.rows
    }

    /// Iterates over the rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Counted> {
        self.rows.iter()
    }
}

impl IntoIterator for CountedBatch {
    type Item = Counted;
    type IntoIter = std::vec::IntoIter<Counted>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

/// A pipelined physical operator producing a batched counted stream.
pub trait Operator {
    /// The schema of the tuples this operator produces.
    fn schema(&self) -> &SchemaRef;

    /// Produces the next batch, `None` at end of stream.
    ///
    /// Batches are never empty and multiplicities are always ≥ 1. The
    /// batch size is a *target*: operators whose output expands (joins)
    /// may overshoot, and operators that filter may undershoot.
    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>>;
}

/// A boxed operator, the unit of plan composition. The lifetime ties the
/// plan to the relations (and expression literals) it scans.
pub type BoxedOp<'a> = Box<dyn Operator + 'a>;

/// Drains an operator into a materialised relation, merging multiplicities
/// of tuples that arrive in separate rows or batches.
pub fn collect(mut op: BoxedOp<'_>) -> CoreResult<Relation> {
    let schema = std::sync::Arc::clone(op.schema());
    let mut out = Relation::empty(schema);
    while let Some(batch) = op.next_batch()? {
        for (t, m) in batch {
            out.insert(t, m)?;
        }
    }
    Ok(out)
}

/// Drains an operator into a plain row vector *without* merging
/// multiplicities — the same tuple may occur in several rows. Used by the
/// partition-parallel kernels so worker results can be moved (not cloned)
/// into the single final merge.
pub fn collect_rows(mut op: BoxedOp<'_>) -> CoreResult<Vec<Counted>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch()? {
        out.extend(batch);
    }
    Ok(out)
}

/// Plans and executes an expression with default options — the physical
/// counterpart of [`reference::eval`](crate::reference::eval).
pub fn execute(
    expr: &mera_expr::RelExpr,
    provider: &(impl crate::provider::RelationProvider + ?Sized),
) -> CoreResult<Relation> {
    execute_with(expr, provider, &ExecOptions::default())
}

/// Plans and executes an expression with explicit options.
pub fn execute_with(
    expr: &mera_expr::RelExpr,
    provider: &(impl crate::provider::RelationProvider + ?Sized),
    opts: &ExecOptions,
) -> CoreResult<Relation> {
    let plan = planner::plan_with(expr, provider, *opts)?;
    collect(plan)
}
