//! Batched streaming and blocking operators for the unary and union-family
//! constructs.

use std::sync::Arc;

use mera_core::multiset::Bag;
use mera_core::prelude::*;
use mera_expr::ScalarExpr;
use rustc_hash::FxHashSet;

use super::column::{eval_filter_mask, eval_project};
use super::{BoxedOp, Counted, CountedBatch, Operator};

/// Leaf scan over a stored relation. Lazy: the scan borrows the relation
/// and batches rows straight out of its iterator — no upfront snapshot of
/// the whole relation is taken; tuples are split into columns as they
/// stream (a cell copy is an `i64`/handle copy, never a deep clone).
pub struct ScanOp<'a> {
    schema: SchemaRef,
    iter: Box<dyn Iterator<Item = (&'a Tuple, u64)> + 'a>,
    batch_size: usize,
}

impl<'a> ScanOp<'a> {
    /// Builds a lazy scan over `rel` emitting batches of `batch_size`.
    pub fn new(rel: &'a Relation, batch_size: usize) -> Self {
        ScanOp {
            schema: Arc::clone(rel.schema()),
            iter: Box::new(rel.iter()),
            batch_size: batch_size.max(1),
        }
    }
}

impl Operator for ScanOp<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        let mut batch = CountedBatch::with_capacity(Arc::clone(&self.schema), self.batch_size);
        for (t, m) in self.iter.by_ref().take(self.batch_size) {
            batch.push_row(t, m);
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

/// Scan over an *owned* row vector, chunking it into batches. Used by the
/// blocking operators to stream their materialised results, and by the
/// parallel kernels to scan partition buckets.
pub struct VecScanOp {
    schema: SchemaRef,
    rows: std::vec::IntoIter<Counted>,
    batch_size: usize,
}

impl VecScanOp {
    /// Wraps `rows` (conforming to `schema`) as a batched stream.
    pub fn new(schema: SchemaRef, rows: Vec<Counted>, batch_size: usize) -> Self {
        VecScanOp {
            schema,
            rows: rows.into_iter(),
            batch_size: batch_size.max(1),
        }
    }
}

impl Operator for VecScanOp {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        let rows: Vec<Counted> = self.rows.by_ref().take(self.batch_size).collect();
        Ok(if rows.is_empty() {
            None
        } else {
            Some(CountedBatch::from_rows(Arc::clone(&self.schema), rows))
        })
    }
}

/// Applies `σ_φ` to one columnar batch — the kernel shared by the batched
/// [`FilterOp`] and the morsel-driven filter. The predicate is evaluated
/// as a vectorized mask; a batch that keeps every row passes through
/// untouched, one that keeps none yields `None`, anything in between is a
/// single gather of the surviving rows.
pub(crate) fn filter_batch(
    predicate: &ScalarExpr,
    batch: CountedBatch,
) -> CoreResult<Option<CountedBatch>> {
    let mask = eval_filter_mask(predicate, &batch)?;
    let kept = mask.iter().filter(|&&b| b).count();
    if kept == batch.len() {
        return Ok(Some(batch));
    }
    if kept == 0 {
        return Ok(None);
    }
    let sel: Vec<u32> = mask
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i as u32))
        .collect();
    Ok(Some(batch.gather(&sel)))
}

/// Applies a (plain or extended) projection to one columnar batch — the
/// kernel shared by the batched [`ProjectOp`] and the morsel-driven
/// projection. A bare-attribute projection moves whole columns; counts
/// pass through unchanged.
pub(crate) fn project_batch(
    exprs: &[ScalarExpr],
    schema: &SchemaRef,
    batch: CountedBatch,
) -> CoreResult<CountedBatch> {
    let columns = eval_project(exprs, schema, &batch)?;
    let (_, _, counts) = batch.into_parts();
    Ok(CountedBatch::from_parts(
        Arc::clone(schema),
        columns,
        counts,
    ))
}

/// Streaming selection `σ_φ`: a vectorized mask-and-gather over each input
/// batch; multiplicities pass through unchanged.
pub struct FilterOp<'a> {
    input: BoxedOp<'a>,
    predicate: ScalarExpr,
}

impl<'a> FilterOp<'a> {
    /// Wraps `input` with predicate `φ`.
    pub fn new(input: BoxedOp<'a>, predicate: ScalarExpr) -> Self {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp<'_> {
    fn schema(&self) -> &SchemaRef {
        self.input.schema()
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        while let Some(batch) = self.input.next_batch()? {
            if let Some(out) = filter_batch(&self.predicate, batch)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

/// Streaming projection (plain or extended): a tight loop over each input
/// batch. Collapsing tuples may be emitted in separate rows; downstream
/// merging restores the summed multiplicities, which is exactly the
/// paper's projection law.
pub struct ProjectOp<'a> {
    input: BoxedOp<'a>,
    exprs: Vec<ScalarExpr>,
    schema: SchemaRef,
}

impl<'a> ProjectOp<'a> {
    /// Builds a projection with a pre-computed output schema.
    pub fn new(input: BoxedOp<'a>, exprs: Vec<ScalarExpr>, schema: SchemaRef) -> Self {
        ProjectOp {
            input,
            exprs,
            schema,
        }
    }
}

impl Operator for ProjectOp<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => Ok(Some(project_batch(&self.exprs, &self.schema, batch)?)),
        }
    }
}

/// Streaming union `⊎`: concatenates both inputs batch-by-batch
/// (multiplicities add once merged downstream).
pub struct UnionOp<'a> {
    left: BoxedOp<'a>,
    right: BoxedOp<'a>,
    on_right: bool,
}

impl<'a> UnionOp<'a> {
    /// Chains `left` then `right`.
    pub fn new(left: BoxedOp<'a>, right: BoxedOp<'a>) -> Self {
        UnionOp {
            left,
            right,
            on_right: false,
        }
    }
}

impl Operator for UnionOp<'_> {
    fn schema(&self) -> &SchemaRef {
        self.left.schema()
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        if !self.on_right {
            if let Some(batch) = self.left.next_batch()? {
                return Ok(Some(batch));
            }
            self.on_right = true;
        }
        self.right.next_batch()
    }
}

/// Streaming duplicate elimination `δ` with a seen-set: the first row of
/// each distinct tuple is emitted with multiplicity 1, later rows are
/// dropped.
pub struct DistinctOp<'a> {
    input: BoxedOp<'a>,
    seen: FxHashSet<Tuple>,
}

impl<'a> DistinctOp<'a> {
    /// Wraps `input` with duplicate elimination.
    pub fn new(input: BoxedOp<'a>) -> Self {
        DistinctOp {
            input,
            seen: FxHashSet::default(),
        }
    }
}

impl Operator for DistinctOp<'_> {
    fn schema(&self) -> &SchemaRef {
        self.input.schema()
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        while let Some(batch) = self.input.next_batch()? {
            let schema = Arc::clone(batch.schema());
            let mut out = Vec::new();
            for (t, _) in batch {
                if self.seen.insert(t.clone()) {
                    out.push((t, 1));
                }
            }
            if !out.is_empty() {
                return Ok(Some(CountedBatch::from_rows(schema, out)));
            }
        }
        Ok(None)
    }
}

/// Drains an operator into a merged bag (helper for the blocking
/// operators, whose laws need the *total* multiplicity per tuple).
fn drain_to_bag(op: &mut BoxedOp<'_>) -> CoreResult<Bag<Tuple>> {
    let mut bag = Bag::new();
    while let Some(batch) = op.next_batch()? {
        for (t, m) in batch {
            bag.insert(t, m)?;
        }
    }
    Ok(bag)
}

fn bag_rows(bag: &Bag<Tuple>) -> Vec<Counted> {
    bag.iter().map(|(t, m)| (t.clone(), m)).collect()
}

/// Blocking transitive closure `α` (the §5 extension): drains its input
/// into a relation, computes the δ-based fixpoint, streams the result in
/// batches.
pub struct ClosureOp<'a> {
    schema: SchemaRef,
    batch_size: usize,
    state: ClosureState<'a>,
}

enum ClosureState<'a> {
    Pending(BoxedOp<'a>),
    Draining(VecScanOp),
}

impl<'a> ClosureOp<'a> {
    /// Wraps `input` (a binary edge relation) with transitive closure.
    pub fn new(input: BoxedOp<'a>, batch_size: usize) -> Self {
        ClosureOp {
            schema: Arc::clone(input.schema()),
            batch_size,
            state: ClosureState::Pending(input),
        }
    }
}

impl Operator for ClosureOp<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        loop {
            match &mut self.state {
                ClosureState::Pending(input) => {
                    let mut rel = Relation::empty(Arc::clone(&self.schema));
                    while let Some(batch) = input.next_batch()? {
                        for (t, m) in batch {
                            rel.insert(t, m)?;
                        }
                    }
                    let closed = crate::reference::transitive_closure(&rel)?;
                    let rows: Vec<Counted> = closed.iter().map(|(t, m)| (t.clone(), m)).collect();
                    self.state = ClosureState::Draining(VecScanOp::new(
                        Arc::clone(&self.schema),
                        rows,
                        self.batch_size,
                    ));
                }
                ClosureState::Draining(scan) => return scan.next_batch(),
            }
        }
    }
}

/// Blocking difference `−`: materialises and merges both sides, emits
/// `max(0, m₁ − m₂)` in batches.
pub struct DifferenceOp<'a> {
    schema: SchemaRef,
    batch_size: usize,
    state: DiffState<'a>,
}

enum DiffState<'a> {
    Pending(BoxedOp<'a>, BoxedOp<'a>),
    Draining(VecScanOp),
}

impl<'a> DifferenceOp<'a> {
    /// Builds `left − right`.
    pub fn new(left: BoxedOp<'a>, right: BoxedOp<'a>, batch_size: usize) -> Self {
        DifferenceOp {
            schema: Arc::clone(left.schema()),
            batch_size,
            state: DiffState::Pending(left, right),
        }
    }
}

impl Operator for DifferenceOp<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        loop {
            match &mut self.state {
                DiffState::Pending(left, right) => {
                    let l = drain_to_bag(left)?;
                    let r = drain_to_bag(right)?;
                    let rows = bag_rows(&l.difference(&r));
                    self.state = DiffState::Draining(VecScanOp::new(
                        Arc::clone(&self.schema),
                        rows,
                        self.batch_size,
                    ));
                }
                DiffState::Draining(scan) => return scan.next_batch(),
            }
        }
    }
}

/// Blocking intersection `∩`: materialises and merges both sides, emits
/// `min(m₁, m₂)` in batches.
pub struct IntersectOp<'a> {
    schema: SchemaRef,
    batch_size: usize,
    state: DiffState<'a>,
}

impl<'a> IntersectOp<'a> {
    /// Builds `left ∩ right`.
    pub fn new(left: BoxedOp<'a>, right: BoxedOp<'a>, batch_size: usize) -> Self {
        IntersectOp {
            schema: Arc::clone(left.schema()),
            batch_size,
            state: DiffState::Pending(left, right),
        }
    }
}

impl Operator for IntersectOp<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        loop {
            match &mut self.state {
                DiffState::Pending(left, right) => {
                    let l = drain_to_bag(left)?;
                    let r = drain_to_bag(right)?;
                    let rows = bag_rows(&l.intersection(&r));
                    self.state = DiffState::Draining(VecScanOp::new(
                        Arc::clone(&self.schema),
                        rows,
                        self.batch_size,
                    ));
                }
                DiffState::Draining(scan) => return scan.next_batch(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::collect;
    use mera_core::tuple;

    fn ints(rows: &[(i64, u64)]) -> Relation {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        Relation::from_counted(schema, rows.iter().map(|&(v, m)| (tuple![v], m))).unwrap()
    }

    fn scan(rel: &Relation) -> BoxedOp<'_> {
        Box::new(ScanOp::new(rel, 2))
    }

    #[test]
    fn scan_streams_counted_batches() {
        let r = ints(&[(1, 2), (2, 1), (3, 1)]);
        let out = collect(scan(&r)).unwrap();
        assert_eq!(out, r);
    }

    #[test]
    fn scan_respects_batch_size() {
        let r = ints(&[(1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]);
        let mut op = ScanOp::new(&r, 2);
        let mut batches = 0;
        let mut rows = 0;
        while let Some(b) = op.next_batch().unwrap() {
            assert!(b.len() <= 2, "scan batch overshot its target");
            batches += 1;
            rows += b.len();
        }
        assert_eq!(rows, 5);
        assert_eq!(batches, 3);
    }

    #[test]
    fn vec_scan_chunks_owned_rows() {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        let rows: Vec<Counted> = (0..7).map(|i| (tuple![i as i64], 1)).collect();
        let mut op = VecScanOp::new(schema, rows, 3);
        let sizes: Vec<usize> = std::iter::from_fn(|| op.next_batch().unwrap())
            .map(|b| b.len())
            .collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn filter_preserves_multiplicity() {
        let r = ints(&[(1, 2), (2, 3)]);
        let op = FilterOp::new(
            scan(&r),
            ScalarExpr::attr(1).cmp(mera_expr::CmpOp::Gt, ScalarExpr::int(1)),
        );
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![2_i64]), 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn project_merges_downstream() {
        let schema = Arc::new(Schema::anon(&[DataType::Int, DataType::Int]));
        let r = Relation::from_counted(
            schema,
            vec![(tuple![1_i64, 10_i64], 2), (tuple![2_i64, 10_i64], 3)],
        )
        .unwrap();
        let out_schema = Arc::new(Schema::anon(&[DataType::Int]));
        let op = ProjectOp::new(scan(&r), vec![ScalarExpr::attr(2)], out_schema);
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![10_i64]), 5);
    }

    #[test]
    fn union_adds() {
        let a = ints(&[(1, 2)]);
        let b = ints(&[(1, 3), (2, 1)]);
        let op = UnionOp::new(scan(&a), scan(&b));
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 5);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn distinct_emits_once() {
        let a = ints(&[(1, 5), (2, 1)]);
        // stack a union to create split rows of the same tuple
        let b = ints(&[(1, 4)]);
        let op = DistinctOp::new(Box::new(UnionOp::new(scan(&a), scan(&b))));
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn difference_merges_chunked_input() {
        // left emits <1> in two rows (2 and 3); right has 4.
        // pointwise law on merged counts: max(0, 5-4) = 1.
        let a = ints(&[(1, 2)]);
        let b = ints(&[(1, 3)]);
        let c = ints(&[(1, 4)]);
        let left = Box::new(UnionOp::new(scan(&a), scan(&b)));
        let out = collect(Box::new(DifferenceOp::new(left, scan(&c), 1024))).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 1);
    }

    #[test]
    fn intersect_merges_chunked_input() {
        let a = ints(&[(1, 2)]);
        let b = ints(&[(1, 3)]);
        let c = ints(&[(1, 4), (9, 1)]);
        let left = Box::new(UnionOp::new(scan(&a), scan(&b)));
        let out = collect(Box::new(IntersectOp::new(left, scan(&c), 1024))).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 4);
        assert_eq!(out.len(), 4);
    }
}
