//! Streaming and blocking operators for the unary and union-family
//! constructs.

use std::sync::Arc;

use mera_core::multiset::Bag;
use mera_core::prelude::*;
use mera_expr::ScalarExpr;
use rustc_hash::FxHashSet;

use super::{BoxedOp, Counted, Operator};

/// Leaf scan over a materialised relation (both database relations and
/// `Values` literals plan to this).
pub struct ScanOp {
    schema: SchemaRef,
    pairs: std::vec::IntoIter<Counted>,
}

impl ScanOp {
    /// Builds a scan by snapshotting a relation's counted pairs.
    pub fn new(rel: &Relation) -> Self {
        ScanOp {
            schema: Arc::clone(rel.schema()),
            pairs: rel
                .iter()
                .map(|(t, m)| (t.clone(), m))
                .collect::<Vec<_>>()
                .into_iter(),
        }
    }
}

impl Operator for ScanOp {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        Ok(self.pairs.next())
    }
}

/// Streaming selection `σ_φ`: multiplicities pass through unchanged.
pub struct FilterOp {
    input: BoxedOp,
    predicate: ScalarExpr,
}

impl FilterOp {
    /// Wraps `input` with predicate `φ`.
    pub fn new(input: BoxedOp, predicate: ScalarExpr) -> Self {
        FilterOp { input, predicate }
    }
}

impl Operator for FilterOp {
    fn schema(&self) -> &SchemaRef {
        self.input.schema()
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        while let Some((t, m)) = self.input.next()? {
            if self.predicate.eval_predicate(&t)? {
                return Ok(Some((t, m)));
            }
        }
        Ok(None)
    }
}

/// Streaming projection (plain or extended). Collapsing tuples may be
/// emitted in separate chunks; downstream merging restores the summed
/// multiplicities, which is exactly the paper's projection law.
pub struct ProjectOp {
    input: BoxedOp,
    exprs: Vec<ScalarExpr>,
    schema: SchemaRef,
}

impl ProjectOp {
    /// Builds a projection with a pre-computed output schema.
    pub fn new(input: BoxedOp, exprs: Vec<ScalarExpr>, schema: SchemaRef) -> Self {
        ProjectOp {
            input,
            exprs,
            schema,
        }
    }
}

impl Operator for ProjectOp {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        match self.input.next()? {
            None => Ok(None),
            Some((t, m)) => {
                let vals: CoreResult<Vec<Value>> =
                    self.exprs.iter().map(|e| e.eval(&t)).collect();
                Ok(Some((Tuple::new(vals?), m)))
            }
        }
    }
}

/// Streaming union `⊎`: concatenates both inputs (multiplicities add once
/// merged downstream).
pub struct UnionOp {
    left: BoxedOp,
    right: BoxedOp,
    on_right: bool,
}

impl UnionOp {
    /// Chains `left` then `right`.
    pub fn new(left: BoxedOp, right: BoxedOp) -> Self {
        UnionOp {
            left,
            right,
            on_right: false,
        }
    }
}

impl Operator for UnionOp {
    fn schema(&self) -> &SchemaRef {
        self.left.schema()
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        if !self.on_right {
            if let Some(pair) = self.left.next()? {
                return Ok(Some(pair));
            }
            self.on_right = true;
        }
        self.right.next()
    }
}

/// Streaming duplicate elimination `δ` with a seen-set: the first chunk of
/// each distinct tuple is emitted with multiplicity 1, later chunks are
/// dropped.
pub struct DistinctOp {
    input: BoxedOp,
    seen: FxHashSet<Tuple>,
}

impl DistinctOp {
    /// Wraps `input` with duplicate elimination.
    pub fn new(input: BoxedOp) -> Self {
        DistinctOp {
            input,
            seen: FxHashSet::default(),
        }
    }
}

impl Operator for DistinctOp {
    fn schema(&self) -> &SchemaRef {
        self.input.schema()
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        while let Some((t, _)) = self.input.next()? {
            if self.seen.insert(t.clone()) {
                return Ok(Some((t, 1)));
            }
        }
        Ok(None)
    }
}

/// Blocking transitive closure `α` (the §5 extension): drains its input
/// into a relation, computes the δ-based fixpoint, streams the result.
pub struct ClosureOp {
    schema: SchemaRef,
    state: ClosureState,
}

enum ClosureState {
    Pending(BoxedOp),
    Draining(std::vec::IntoIter<Counted>),
}

impl ClosureOp {
    /// Wraps `input` (a binary edge relation) with transitive closure.
    pub fn new(input: BoxedOp) -> Self {
        ClosureOp {
            schema: Arc::clone(input.schema()),
            state: ClosureState::Pending(input),
        }
    }
}

impl Operator for ClosureOp {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        loop {
            match &mut self.state {
                ClosureState::Pending(input) => {
                    let mut rel = Relation::empty(Arc::clone(&self.schema));
                    while let Some((t, m)) = input.next()? {
                        rel.insert(t, m)?;
                    }
                    let closed = crate::reference::transitive_closure(&rel)?;
                    let pairs: Vec<Counted> =
                        closed.iter().map(|(t, m)| (t.clone(), m)).collect();
                    self.state = ClosureState::Draining(pairs.into_iter());
                }
                ClosureState::Draining(it) => return Ok(it.next()),
            }
        }
    }
}

/// Drains an operator into a merged bag (helper for the blocking
/// operators, whose laws need the *total* multiplicity per tuple).
fn drain_to_bag(op: &mut BoxedOp) -> CoreResult<Bag<Tuple>> {
    let mut bag = Bag::new();
    while let Some((t, m)) = op.next()? {
        bag.insert(t, m)?;
    }
    Ok(bag)
}

/// Blocking difference `−`: materialises and merges both sides, emits
/// `max(0, m₁ − m₂)`.
pub struct DifferenceOp {
    schema: SchemaRef,
    state: DiffState,
}

enum DiffState {
    Pending(BoxedOp, BoxedOp),
    Draining(std::vec::IntoIter<Counted>),
}

impl DifferenceOp {
    /// Builds `left − right`.
    pub fn new(left: BoxedOp, right: BoxedOp) -> Self {
        DifferenceOp {
            schema: Arc::clone(left.schema()),
            state: DiffState::Pending(left, right),
        }
    }
}

impl Operator for DifferenceOp {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        loop {
            match &mut self.state {
                DiffState::Pending(left, right) => {
                    let l = drain_to_bag(left)?;
                    let r = drain_to_bag(right)?;
                    let d = l.difference(&r);
                    let pairs: Vec<Counted> = d.iter().map(|(t, m)| (t.clone(), m)).collect();
                    self.state = DiffState::Draining(pairs.into_iter());
                }
                DiffState::Draining(it) => return Ok(it.next()),
            }
        }
    }
}

/// Blocking intersection `∩`: materialises and merges both sides, emits
/// `min(m₁, m₂)`.
pub struct IntersectOp {
    schema: SchemaRef,
    state: DiffState,
}

impl IntersectOp {
    /// Builds `left ∩ right`.
    pub fn new(left: BoxedOp, right: BoxedOp) -> Self {
        IntersectOp {
            schema: Arc::clone(left.schema()),
            state: DiffState::Pending(left, right),
        }
    }
}

impl Operator for IntersectOp {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next(&mut self) -> CoreResult<Option<Counted>> {
        loop {
            match &mut self.state {
                DiffState::Pending(left, right) => {
                    let l = drain_to_bag(left)?;
                    let r = drain_to_bag(right)?;
                    let i = l.intersection(&r);
                    let pairs: Vec<Counted> = i.iter().map(|(t, m)| (t.clone(), m)).collect();
                    self.state = DiffState::Draining(pairs.into_iter());
                }
                DiffState::Draining(it) => return Ok(it.next()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::collect;
    use mera_core::tuple;

    fn ints(rows: &[(i64, u64)]) -> Relation {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        Relation::from_counted(schema, rows.iter().map(|&(v, m)| (tuple![v], m))).unwrap()
    }

    fn scan(rel: &Relation) -> BoxedOp {
        Box::new(ScanOp::new(rel))
    }

    #[test]
    fn scan_streams_counted_pairs() {
        let r = ints(&[(1, 2), (2, 1)]);
        let out = collect(scan(&r)).unwrap();
        assert_eq!(out, r);
    }

    #[test]
    fn filter_preserves_multiplicity() {
        let r = ints(&[(1, 2), (2, 3)]);
        let op = FilterOp::new(
            scan(&r),
            ScalarExpr::attr(1).cmp(mera_expr::CmpOp::Gt, ScalarExpr::int(1)),
        );
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![2_i64]), 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn project_merges_downstream() {
        let schema = Arc::new(Schema::anon(&[DataType::Int, DataType::Int]));
        let r = Relation::from_counted(
            schema,
            vec![(tuple![1_i64, 10_i64], 2), (tuple![2_i64, 10_i64], 3)],
        )
        .unwrap();
        let out_schema = Arc::new(Schema::anon(&[DataType::Int]));
        let op = ProjectOp::new(scan(&r), vec![ScalarExpr::attr(2)], out_schema);
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![10_i64]), 5);
    }

    #[test]
    fn union_adds() {
        let a = ints(&[(1, 2)]);
        let b = ints(&[(1, 3), (2, 1)]);
        let op = UnionOp::new(scan(&a), scan(&b));
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 5);
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn distinct_emits_once() {
        let a = ints(&[(1, 5), (2, 1)]);
        // stack a union to create split chunks of the same tuple
        let b = ints(&[(1, 4)]);
        let op = DistinctOp::new(Box::new(UnionOp::new(scan(&a), scan(&b))));
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn difference_merges_chunked_input() {
        // left emits <1> in two chunks (2 and 3); right has 4.
        // pointwise law on merged counts: max(0, 5-4) = 1.
        let a = ints(&[(1, 2)]);
        let b = ints(&[(1, 3)]);
        let left = Box::new(UnionOp::new(scan(&a), scan(&b)));
        let right = scan(&ints(&[(1, 4)]));
        let out = collect(Box::new(DifferenceOp::new(left, right))).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 1);
    }

    #[test]
    fn intersect_merges_chunked_input() {
        let a = ints(&[(1, 2)]);
        let b = ints(&[(1, 3)]);
        let left = Box::new(UnionOp::new(scan(&a), scan(&b)));
        let right = scan(&ints(&[(1, 4), (9, 1)]));
        let out = collect(Box::new(IntersectOp::new(left, right))).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64]), 4);
        assert_eq!(out.len(), 4);
    }
}
