//! Join operators: nested-loop (general predicate, also serves as the
//! product) and hash join (equi-predicates).
//!
//! Both implement `E₁ ⋈_φ E₂ = σ_φ(E₁ × E₂)` (Definition 3.2) with the
//! product's multiplicity law `m₁ · m₂` — without materialising the
//! product. Both are pipelined on the left (probe/outer) side: they pull
//! left batches on demand and accumulate output rows until the batch-size
//! target is reached, saving their loop positions between calls.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::scalar::{CmpOp, ScalarExpr};
use rustc_hash::FxHashMap;

use super::column::{eval_filter_mask, radix_of};
use super::{BoxedOp, Counted, CountedBatch, Operator};

/// Nested-loop join with an optional predicate over the concatenated
/// schema (`None` ⇒ plain Cartesian product).
///
/// The right side is materialised once; the left side streams in batches.
pub struct NestedLoopJoin<'a> {
    left: BoxedOp<'a>,
    right_rows: Vec<Counted>,
    predicate: Option<ScalarExpr>,
    schema: SchemaRef,
    batch_size: usize,
    /// The current left batch and the resume positions within it.
    left_rows: Vec<Counted>,
    left_pos: usize,
    right_pos: usize,
    done: bool,
}

impl<'a> NestedLoopJoin<'a> {
    /// Builds `left ⋈_φ right` (or `left × right` when `predicate` is
    /// `None`), draining the right input immediately.
    pub fn build(
        left: BoxedOp<'a>,
        mut right: BoxedOp<'a>,
        predicate: Option<ScalarExpr>,
        batch_size: usize,
    ) -> CoreResult<Self> {
        let schema = Arc::new(left.schema().concat(right.schema()));
        let mut right_rows = Vec::new();
        while let Some(batch) = right.next_batch()? {
            right_rows.extend(batch);
        }
        Ok(NestedLoopJoin {
            left,
            right_rows,
            predicate,
            schema,
            batch_size: batch_size.max(1),
            left_rows: Vec::new(),
            left_pos: 0,
            right_pos: 0,
            done: false,
        })
    }
}

impl Operator for NestedLoopJoin<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        if self.done {
            return Ok(None);
        }
        let mut out: Vec<Counted> = Vec::with_capacity(self.batch_size);
        'fill: loop {
            if self.left_pos >= self.left_rows.len() {
                match self.left.next_batch()? {
                    None => {
                        self.done = true;
                        break 'fill;
                    }
                    Some(batch) => {
                        self.left_rows = batch.into_rows();
                        self.left_pos = 0;
                        self.right_pos = 0;
                    }
                }
            }
            while self.left_pos < self.left_rows.len() {
                let (lt, lm) = &self.left_rows[self.left_pos];
                while self.right_pos < self.right_rows.len() {
                    let (rt, rm) = &self.right_rows[self.right_pos];
                    self.right_pos += 1;
                    let joined = lt.concat(rt);
                    let keep = match &self.predicate {
                        None => true,
                        Some(p) => p.eval_predicate(&joined)?,
                    };
                    if keep {
                        let m = lm
                            .checked_mul(*rm)
                            .ok_or(CoreError::Overflow("join multiplicity"))?;
                        out.push((joined, m));
                        if out.len() >= self.batch_size {
                            break 'fill;
                        }
                    }
                }
                self.right_pos = 0;
                self.left_pos += 1;
            }
        }
        Ok(if out.is_empty() {
            None
        } else {
            Some(CountedBatch::from_rows(Arc::clone(&self.schema), out))
        })
    }
}

/// An equi-join condition extracted from a predicate: pairs of (left attr,
/// right attr) compared with `=`, plus whatever residual conjuncts remain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiCondition {
    /// 1-based attribute indexes into the *left* schema.
    pub left_keys: Vec<usize>,
    /// 1-based attribute indexes into the *right* schema (already re-based;
    /// `%j` in the joined schema becomes `j − left_arity`).
    pub right_keys: Vec<usize>,
    /// Conjuncts that are not simple cross-side equalities, still expressed
    /// over the concatenated schema.
    pub residual: Option<ScalarExpr>,
}

/// Analyses a join predicate over `left ⊕ right`, extracting hashable
/// equi-key pairs. Returns `None` when no cross-side equality exists (the
/// planner then falls back to a nested loop).
pub fn extract_equi_condition(
    predicate: &ScalarExpr,
    left_arity: usize,
    right_arity: usize,
) -> Option<EquiCondition> {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();
    for conj in predicate.conjuncts() {
        if let ScalarExpr::Cmp(CmpOp::Eq, a, b) = conj {
            if let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) {
                let (i, j) = (*i, *j);
                let (l, r) = if i <= left_arity && j > left_arity {
                    (i, j - left_arity)
                } else if j <= left_arity && i > left_arity {
                    (j, i - left_arity)
                } else {
                    residual.push(conj.clone());
                    continue;
                };
                if r <= right_arity {
                    left_keys.push(l);
                    right_keys.push(r);
                    continue;
                }
            }
        }
        residual.push(conj.clone());
    }
    if left_keys.is_empty() {
        return None;
    }
    Some(EquiCondition {
        left_keys,
        right_keys,
        residual: if residual.is_empty() {
            None
        } else {
            Some(ScalarExpr::conjoin(residual))
        },
    })
}

/// One output column of a probe: a 0-based offset into either the
/// probe-side (left) schema or the build-side (right) schema. A full join
/// emits [`full_probe_cols`]; the morsel engine's probe+projection fusion
/// emits only the projected columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeCol {
    /// Copy from the probe (left) side.
    Left(usize),
    /// Copy from the build (right) side.
    Right(usize),
}

/// The output columns of an unfused probe: the full `left ⊕ right`
/// concatenation.
pub fn full_probe_cols(left_arity: usize, right_arity: usize) -> Vec<ProbeCol> {
    (0..left_arity)
        .map(ProbeCol::Left)
        .chain((0..right_arity).map(ProbeCol::Right))
        .collect()
}

/// The build side of a hash equi-join, stored **columnar**: all build rows
/// appended into one [`CountedBatch`] and bucketed by the columnar hash of
/// their key columns — buckets hold row indexes, not tuples, so the table
/// is one map plus one batch regardless of duplication. A probe hashes its
/// own key columns batch-at-a-time, walks the matching buckets and
/// verifies candidates cell-against-cell (hash-then-verify, so colliding
/// keys are handled exactly), then assembles the output batch with one
/// gather per output column.
///
/// The serial [`HashJoin`] owns one; the morsel-driven engine builds a
/// [`RadixJoinTable`] — one disjoint `JoinTable` per radix partition of
/// the key space, each filled by exactly one worker with no shared state
/// and no merge step.
#[derive(Debug)]
pub struct JoinTable {
    /// Build-side key offsets, resolved once at plan time.
    build_keys: ResolvedAttrs,
    /// All build rows, in insertion order.
    batch: CountedBatch,
    /// Key hash → indexes into `batch`.
    map: FxHashMap<u64, Vec<u32>>,
}

impl JoinTable {
    /// An empty table keyed on the resolved build-side columns.
    pub fn new(build_keys: ResolvedAttrs, schema: SchemaRef) -> Self {
        JoinTable {
            build_keys,
            batch: CountedBatch::new(schema),
            map: FxHashMap::default(),
        }
    }

    /// Inserts every row of a build-side batch under the hash of its key
    /// columns. Cells are appended column-wise (a `Sym`/scalar copy per
    /// cell, never a tuple allocation).
    pub fn insert_batch(&mut self, batch: &CountedBatch) {
        let hashes = batch.key_hashes(self.build_keys.offsets());
        let base = self.batch.len() as u32;
        for (i, h) in hashes.into_iter().enumerate() {
            self.map.entry(h).or_default().push(base + i as u32);
        }
        self.batch.append(batch);
    }

    /// Number of build rows in the table.
    pub fn len(&self) -> usize {
        self.batch.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Probes with a whole batch: for every probe row (in order) and every
    /// matching build row (in insertion order), emits the `cols` columns
    /// of the pair with multiplicity `m₁ · m₂`, after the residual
    /// predicate (which sees the full concatenated schema — callers pass
    /// `cols = full_probe_cols(..)` alongside a residual). `None` when no
    /// pair survives. Matches the row engine exactly: the residual is
    /// evaluated *before* the multiplicity product, so only kept pairs can
    /// overflow.
    pub fn probe_batch(
        &self,
        probe: &CountedBatch,
        keys: &ResolvedAttrs,
        cols: &[ProbeCol],
        out_schema: &SchemaRef,
        residual: Option<&ScalarExpr>,
    ) -> CoreResult<Option<CountedBatch>> {
        let hashes = probe.key_hashes(keys.offsets());
        let rows: Vec<u32> = (0..probe.len() as u32).collect();
        self.probe_rows(probe, &hashes, &rows, keys, cols, out_schema, residual)
    }

    /// [`probe_batch`](JoinTable::probe_batch) over a pre-hashed selection
    /// of probe rows (the radix path probes each partition's table with
    /// only the probe rows that hash into it).
    #[allow(clippy::too_many_arguments)]
    fn probe_rows(
        &self,
        probe: &CountedBatch,
        hashes: &[u64],
        rows: &[u32],
        keys: &ResolvedAttrs,
        cols: &[ProbeCol],
        out_schema: &SchemaRef,
        residual: Option<&ScalarExpr>,
    ) -> CoreResult<Option<CountedBatch>> {
        // collect matching (probe, build) index pairs — hash lookup plus
        // cell-wise key verification, no materialisation yet
        let mut lsel: Vec<u32> = Vec::new();
        let mut rsel: Vec<u32> = Vec::new();
        for &i in rows {
            if let Some(bucket) = self.map.get(&hashes[i as usize]) {
                for &j in bucket {
                    if self.keys_match(probe, keys, i as usize, j as usize) {
                        lsel.push(i);
                        rsel.push(j);
                    }
                }
            }
        }
        if lsel.is_empty() {
            return Ok(None);
        }
        // assemble the output columns: one gather per column, from
        // whichever side it references
        let assemble = |ls: &[u32], rs: &[u32]| -> Vec<super::Column> {
            cols.iter()
                .map(|c| match c {
                    ProbeCol::Left(o) => probe.column(*o).gather(ls),
                    ProbeCol::Right(o) => self.batch.column(*o).gather(rs),
                })
                .collect()
        };
        let (columns, lsel, rsel) = match residual {
            None => (assemble(&lsel, &rsel), lsel, rsel),
            Some(p) => {
                let pairs = CountedBatch::from_parts(
                    Arc::clone(out_schema),
                    assemble(&lsel, &rsel),
                    vec![1; lsel.len()],
                );
                let mask = match eval_filter_mask(p, &pairs) {
                    Ok(mask) => mask,
                    // canonicalize to the row engine's first error in
                    // probe-row order (residual errors interleave with
                    // multiplicity overflows there)
                    Err(e) => {
                        return Err(self
                            .rowwise_probe_error(probe, hashes, rows, keys, residual)
                            .unwrap_or(e))
                    }
                };
                let keep: Vec<u32> = mask
                    .iter()
                    .enumerate()
                    .filter_map(|(k, &b)| b.then_some(k as u32))
                    .collect();
                if keep.is_empty() {
                    return Ok(None);
                }
                let columns = if keep.len() == mask.len() {
                    pairs.into_parts().1
                } else {
                    pairs.gather(&keep).into_parts().1
                };
                let filter = |sel: &[u32]| keep.iter().map(|&k| sel[k as usize]).collect();
                (columns, filter(&lsel), filter(&rsel))
            }
        };
        // multiplicity product, after the residual — exactly the row
        // engine's per-pair order
        let mut counts = Vec::with_capacity(lsel.len());
        for (&i, &j) in lsel.iter().zip(&rsel) {
            let m = probe.counts()[i as usize]
                .checked_mul(self.batch.counts()[j as usize])
                .ok_or(CoreError::Overflow("join multiplicity"))?;
            counts.push(m);
        }
        Ok(Some(CountedBatch::from_parts(
            Arc::clone(out_schema),
            columns,
            counts,
        )))
    }

    /// Cell-wise key verification between probe row `i` and build row `j`.
    fn keys_match(&self, probe: &CountedBatch, keys: &ResolvedAttrs, i: usize, j: usize) -> bool {
        keys.offsets()
            .iter()
            .zip(self.build_keys.offsets())
            .all(|(&po, &bo)| probe.column(po).eq_cells(i, self.batch.column(bo), j))
    }

    /// Row-order re-evaluation after a vectorized probe error: replays the
    /// row engine's exact per-pair sequence (residual on the concatenated
    /// tuple, then the checked multiplicity product) and returns its first
    /// error.
    fn rowwise_probe_error(
        &self,
        probe: &CountedBatch,
        hashes: &[u64],
        rows: &[u32],
        keys: &ResolvedAttrs,
        residual: Option<&ScalarExpr>,
    ) -> Option<CoreError> {
        for &i in rows {
            let Some(bucket) = self.map.get(&hashes[i as usize]) else {
                continue;
            };
            let lt = probe.row(i as usize);
            let lm = probe.counts()[i as usize];
            for &j in bucket {
                if !self.keys_match(probe, keys, i as usize, j as usize) {
                    continue;
                }
                let joined = lt.concat(&self.batch.row(j as usize));
                match residual.map(|p| p.eval_predicate(&joined)).transpose() {
                    Err(e) => return Some(e),
                    Ok(Some(false)) => continue,
                    Ok(_) => {}
                }
                if lm.checked_mul(self.batch.counts()[j as usize]).is_none() {
                    return Some(CoreError::Overflow("join multiplicity"));
                }
            }
        }
        None
    }
}

/// A radix-partitioned join build: one disjoint [`JoinTable`] per
/// partition of the key-hash space ([`radix_of`] on the columnar key
/// hash). The morsel engine's build phase fills each partition's table
/// with exactly one worker — workers own disjoint key ranges, so there is
/// no shared table, no locking and no merge step. Probing partitions each
/// probe batch by the same radix function and probes only the matching
/// table; matching keys always hash — and therefore radix — identically
/// on both sides.
#[derive(Debug)]
pub struct RadixJoinTable {
    tables: Vec<JoinTable>,
}

impl RadixJoinTable {
    /// Wraps per-partition tables (index = radix partition).
    pub fn new(tables: Vec<JoinTable>) -> Self {
        debug_assert!(!tables.is_empty());
        RadixJoinTable { tables }
    }

    /// Total build rows across all partitions.
    pub fn len(&self) -> usize {
        self.tables.iter().map(JoinTable::len).sum()
    }

    /// True when no partition holds rows.
    pub fn is_empty(&self) -> bool {
        self.tables.iter().all(JoinTable::is_empty)
    }

    /// Probes a whole batch: rows are split by key radix and each
    /// partition's table is probed with its selection; partition outputs
    /// concatenate (bag semantics — row order across partitions is
    /// irrelevant once multiplicities merge downstream).
    pub fn probe_batch(
        &self,
        probe: &CountedBatch,
        keys: &ResolvedAttrs,
        cols: &[ProbeCol],
        out_schema: &SchemaRef,
        residual: Option<&ScalarExpr>,
    ) -> CoreResult<Option<CountedBatch>> {
        if self.tables.len() == 1 {
            return self.tables[0].probe_batch(probe, keys, cols, out_schema, residual);
        }
        let hashes = probe.key_hashes(keys.offsets());
        let parts = self.tables.len();
        let mut sels: Vec<Vec<u32>> = vec![Vec::new(); parts];
        for (i, &h) in hashes.iter().enumerate() {
            sels[radix_of(h, parts)].push(i as u32);
        }
        let mut out: Option<CountedBatch> = None;
        for (pi, sel) in sels.iter().enumerate() {
            if sel.is_empty() || self.tables[pi].is_empty() {
                continue;
            }
            if let Some(b) =
                self.tables[pi].probe_rows(probe, &hashes, sel, keys, cols, out_schema, residual)?
            {
                match &mut out {
                    None => out = Some(b),
                    Some(acc) => acc.append(&b),
                }
            }
        }
        Ok(out)
    }
}

/// Hash join on extracted equi-keys: the right side is built into a hash
/// table keyed by its key projection; the left side streams and probes a
/// whole batch at a time (output batch sizes track the probe side's —
/// expanding joins may overshoot the target, as the trait allows).
pub struct HashJoin<'a> {
    left: BoxedOp<'a>,
    table: JoinTable,
    left_keys: ResolvedAttrs,
    cols: Vec<ProbeCol>,
    residual: Option<ScalarExpr>,
    schema: SchemaRef,
}

impl<'a> HashJoin<'a> {
    /// Builds the operator, draining the right input into the hash table.
    pub fn build(
        left: BoxedOp<'a>,
        mut right: BoxedOp<'a>,
        cond: EquiCondition,
        _batch_size: usize,
    ) -> CoreResult<Self> {
        let schema = Arc::new(left.schema().concat(right.schema()));
        let build_keys = ResolvedAttrs::new(&cond.right_keys, right.schema().arity())?;
        let left_keys = ResolvedAttrs::new(&cond.left_keys, left.schema().arity())?;
        let cols = full_probe_cols(left.schema().arity(), right.schema().arity());
        let mut table = JoinTable::new(build_keys, Arc::clone(right.schema()));
        while let Some(batch) = right.next_batch()? {
            table.insert_batch(&batch);
        }
        Ok(HashJoin {
            left,
            table,
            left_keys,
            cols,
            residual: cond.residual,
            schema,
        })
    }
}

impl Operator for HashJoin<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        while let Some(batch) = self.left.next_batch()? {
            if let Some(out) = self.table.probe_batch(
                &batch,
                &self.left_keys,
                &self.cols,
                &self.schema,
                self.residual.as_ref(),
            )? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::collect;
    use crate::physical::ops::ScanOp;
    use mera_core::tuple;

    fn rel(rows: Vec<(Tuple, u64)>, types: &[DataType]) -> Relation {
        Relation::from_counted(Arc::new(Schema::anon(types)), rows).unwrap()
    }

    fn scan(r: &Relation) -> BoxedOp<'_> {
        Box::new(ScanOp::new(r, 2))
    }

    fn left_rel() -> Relation {
        rel(
            vec![
                (tuple![1_i64, "a"], 2),
                (tuple![2_i64, "b"], 1),
                (tuple![3_i64, "c"], 1),
            ],
            &[DataType::Int, DataType::Str],
        )
    }

    fn right_rel() -> Relation {
        rel(
            vec![(tuple![1_i64, 10_i64], 3), (tuple![2_i64, 20_i64], 1)],
            &[DataType::Int, DataType::Int],
        )
    }

    #[test]
    fn nested_loop_product() {
        let l = left_rel();
        let r = right_rel();
        let op = NestedLoopJoin::build(scan(&l), scan(&r), None, 1024).unwrap();
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), l.len() * r.len());
        assert_eq!(out.multiplicity(&tuple![1_i64, "a", 1_i64, 10_i64]), 6);
    }

    #[test]
    fn nested_loop_with_predicate() {
        let l = left_rel();
        let r = right_rel();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let op = NestedLoopJoin::build(scan(&l), scan(&r), Some(pred), 1024).unwrap();
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64, "a", 1_i64, 10_i64]), 6);
        assert_eq!(out.multiplicity(&tuple![2_i64, "b", 2_i64, 20_i64]), 1);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn nested_loop_resumes_mid_row_across_batches() {
        // batch size 1 forces a state save after every output row; the
        // full product must still come out exactly once.
        let l = left_rel();
        let r = right_rel();
        let mut op = NestedLoopJoin::build(scan(&l), scan(&r), None, 1).unwrap();
        let mut total = 0_u64;
        while let Some(b) = op.next_batch().unwrap() {
            assert_eq!(b.len(), 1);
            total += b.total_multiplicity();
        }
        assert_eq!(total, l.len() * r.len());
    }

    #[test]
    fn extract_simple_equi() {
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let c = extract_equi_condition(&pred, 2, 2).unwrap();
        assert_eq!(c.left_keys, vec![1]);
        assert_eq!(c.right_keys, vec![1]);
        assert!(c.residual.is_none());
    }

    #[test]
    fn extract_flipped_and_residual() {
        // %4 = %2 (right-to-left) AND %1 < %3
        let pred = ScalarExpr::attr(4)
            .eq(ScalarExpr::attr(2))
            .and(ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3)));
        let c = extract_equi_condition(&pred, 2, 2).unwrap();
        assert_eq!(c.left_keys, vec![2]);
        assert_eq!(c.right_keys, vec![2]);
        assert!(c.residual.is_some());
    }

    #[test]
    fn extract_rejects_same_side_equalities() {
        // %1 = %2 are both left attributes
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(2));
        assert!(extract_equi_condition(&pred, 2, 2).is_none());
        // literal comparison is no equi-key either
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        assert!(extract_equi_condition(&pred, 2, 2).is_none());
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let l = left_rel();
        let r = right_rel();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let cond = extract_equi_condition(&pred, 2, 2).unwrap();
        let hj = HashJoin::build(scan(&l), scan(&r), cond, 1024).unwrap();
        let nl = NestedLoopJoin::build(scan(&l), scan(&r), Some(pred), 1024).unwrap();
        assert_eq!(
            collect(Box::new(hj)).unwrap(),
            collect(Box::new(nl)).unwrap()
        );
    }

    #[test]
    fn hash_join_agrees_across_batch_sizes() {
        let l = left_rel();
        let r = right_rel();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let want = {
            let cond = extract_equi_condition(&pred, 2, 2).unwrap();
            collect(Box::new(
                HashJoin::build(scan(&l), scan(&r), cond, 1024).unwrap(),
            ))
            .unwrap()
        };
        for batch_size in [1, 2, 7] {
            let cond = extract_equi_condition(&pred, 2, 2).unwrap();
            let hj = HashJoin::build(scan(&l), scan(&r), cond, batch_size).unwrap();
            assert_eq!(collect(Box::new(hj)).unwrap(), want, "batch={batch_size}");
        }
    }

    #[test]
    fn hash_join_applies_residual() {
        let l = left_rel();
        let r = right_rel();
        // equi on %1=%3 plus residual %4 > %1... (int comparisons)
        let pred = ScalarExpr::attr(1)
            .eq(ScalarExpr::attr(3))
            .and(ScalarExpr::attr(4).cmp(CmpOp::Gt, ScalarExpr::int(15)));
        let cond = extract_equi_condition(&pred, 2, 2).unwrap();
        let hj = HashJoin::build(scan(&l), scan(&r), cond, 1024).unwrap();
        let out = collect(Box::new(hj)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.multiplicity(&tuple![2_i64, "b", 2_i64, 20_i64]), 1);
    }

    #[test]
    fn join_with_empty_side_is_empty() {
        let l = left_rel();
        let empty = rel(vec![], &[DataType::Int, DataType::Int]);
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let cond = extract_equi_condition(&pred, 2, 2).unwrap();
        let hj = HashJoin::build(scan(&l), scan(&empty), cond, 1024).unwrap();
        assert!(collect(Box::new(hj)).unwrap().is_empty());
    }
}
