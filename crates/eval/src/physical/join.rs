//! Join operators: nested-loop (general predicate, also serves as the
//! product) and hash join (equi-predicates).
//!
//! Both implement `E₁ ⋈_φ E₂ = σ_φ(E₁ × E₂)` (Definition 3.2) with the
//! product's multiplicity law `m₁ · m₂` — without materialising the
//! product. Both are pipelined on the left (probe/outer) side: they pull
//! left batches on demand and accumulate output rows until the batch-size
//! target is reached, saving their loop positions between calls.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::scalar::{CmpOp, ScalarExpr};
use rustc_hash::FxHashMap;

use super::{BoxedOp, Counted, CountedBatch, Operator};

/// Nested-loop join with an optional predicate over the concatenated
/// schema (`None` ⇒ plain Cartesian product).
///
/// The right side is materialised once; the left side streams in batches.
pub struct NestedLoopJoin<'a> {
    left: BoxedOp<'a>,
    right_rows: Vec<Counted>,
    predicate: Option<ScalarExpr>,
    schema: SchemaRef,
    batch_size: usize,
    /// The current left batch and the resume positions within it.
    left_rows: Vec<Counted>,
    left_pos: usize,
    right_pos: usize,
    done: bool,
}

impl<'a> NestedLoopJoin<'a> {
    /// Builds `left ⋈_φ right` (or `left × right` when `predicate` is
    /// `None`), draining the right input immediately.
    pub fn build(
        left: BoxedOp<'a>,
        mut right: BoxedOp<'a>,
        predicate: Option<ScalarExpr>,
        batch_size: usize,
    ) -> CoreResult<Self> {
        let schema = Arc::new(left.schema().concat(right.schema()));
        let mut right_rows = Vec::new();
        while let Some(batch) = right.next_batch()? {
            right_rows.extend(batch);
        }
        Ok(NestedLoopJoin {
            left,
            right_rows,
            predicate,
            schema,
            batch_size: batch_size.max(1),
            left_rows: Vec::new(),
            left_pos: 0,
            right_pos: 0,
            done: false,
        })
    }
}

impl Operator for NestedLoopJoin<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        if self.done {
            return Ok(None);
        }
        let mut out: Vec<Counted> = Vec::with_capacity(self.batch_size);
        'fill: loop {
            if self.left_pos >= self.left_rows.len() {
                match self.left.next_batch()? {
                    None => {
                        self.done = true;
                        break 'fill;
                    }
                    Some(batch) => {
                        self.left_rows = batch.into_rows();
                        self.left_pos = 0;
                        self.right_pos = 0;
                    }
                }
            }
            while self.left_pos < self.left_rows.len() {
                let (lt, lm) = &self.left_rows[self.left_pos];
                while self.right_pos < self.right_rows.len() {
                    let (rt, rm) = &self.right_rows[self.right_pos];
                    self.right_pos += 1;
                    let joined = lt.concat(rt);
                    let keep = match &self.predicate {
                        None => true,
                        Some(p) => p.eval_predicate(&joined)?,
                    };
                    if keep {
                        let m = lm
                            .checked_mul(*rm)
                            .ok_or(CoreError::Overflow("join multiplicity"))?;
                        out.push((joined, m));
                        if out.len() >= self.batch_size {
                            break 'fill;
                        }
                    }
                }
                self.right_pos = 0;
                self.left_pos += 1;
            }
        }
        Ok(if out.is_empty() {
            None
        } else {
            Some(CountedBatch::from_rows(Arc::clone(&self.schema), out))
        })
    }
}

/// An equi-join condition extracted from a predicate: pairs of (left attr,
/// right attr) compared with `=`, plus whatever residual conjuncts remain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquiCondition {
    /// 1-based attribute indexes into the *left* schema.
    pub left_keys: Vec<usize>,
    /// 1-based attribute indexes into the *right* schema (already re-based;
    /// `%j` in the joined schema becomes `j − left_arity`).
    pub right_keys: Vec<usize>,
    /// Conjuncts that are not simple cross-side equalities, still expressed
    /// over the concatenated schema.
    pub residual: Option<ScalarExpr>,
}

/// Analyses a join predicate over `left ⊕ right`, extracting hashable
/// equi-key pairs. Returns `None` when no cross-side equality exists (the
/// planner then falls back to a nested loop).
pub fn extract_equi_condition(
    predicate: &ScalarExpr,
    left_arity: usize,
    right_arity: usize,
) -> Option<EquiCondition> {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual = Vec::new();
    for conj in predicate.conjuncts() {
        if let ScalarExpr::Cmp(CmpOp::Eq, a, b) = conj {
            if let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) {
                let (i, j) = (*i, *j);
                let (l, r) = if i <= left_arity && j > left_arity {
                    (i, j - left_arity)
                } else if j <= left_arity && i > left_arity {
                    (j, i - left_arity)
                } else {
                    residual.push(conj.clone());
                    continue;
                };
                if r <= right_arity {
                    left_keys.push(l);
                    right_keys.push(r);
                    continue;
                }
            }
        }
        residual.push(conj.clone());
    }
    if left_keys.is_empty() {
        return None;
    }
    Some(EquiCondition {
        left_keys,
        right_keys,
        residual: if residual.is_empty() {
            None
        } else {
            Some(ScalarExpr::conjoin(residual))
        },
    })
}

/// One output column of a fused probe+projection: a 0-based offset into
/// either the probe-side (left) row or the build-side (right) row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeCol {
    /// Copy from the probe (left) tuple.
    Left(usize),
    /// Copy from the build (right) tuple.
    Right(usize),
}

/// The build side of a hash equi-join: build-side rows bucketed by the
/// hash of their key columns, **hashed and verified in place** — no key
/// tuple is ever materialised, on either side. Buckets hold the full build
/// rows; a probe hashes its own key columns, walks the matching bucket and
/// verifies candidates by comparing the projected columns directly
/// (hash-then-verify, so colliding keys are handled exactly).
///
/// The serial [`HashJoin`] owns one; the morsel-driven engine builds one
/// *in parallel* (each worker fills a thread-local table over its morsels,
/// the tables are [`merge`](JoinTable::merge)d once) and then shares it
/// read-only behind an `Arc` so every worker probes the same table — no
/// per-partition cloning of the probe input.
#[derive(Debug)]
pub struct JoinTable {
    /// Build-side key offsets, resolved once at plan time.
    build_keys: ResolvedAttrs,
    map: FxHashMap<u64, Vec<Counted>>,
    rows: usize,
}

impl JoinTable {
    /// An empty table keyed on the resolved build-side columns.
    pub fn new(build_keys: ResolvedAttrs) -> Self {
        JoinTable {
            build_keys,
            map: FxHashMap::default(),
            rows: 0,
        }
    }

    /// Inserts one build-side row under the hash of its key columns.
    pub fn insert_row(&mut self, t: Tuple, m: u64) {
        let h = self.build_keys.hash_key(&t);
        self.map.entry(h).or_default().push((t, m));
        self.rows += 1;
    }

    /// Absorbs another table built over a disjoint chunk of the input.
    /// Rows under the same key concatenate; duplicate build rows stay
    /// separate entries (multiplicities merge downstream, as everywhere in
    /// the counted-stream model).
    pub fn merge(&mut self, other: JoinTable) {
        debug_assert_eq!(self.build_keys, other.build_keys);
        for (h, mut rows) in other.map {
            self.map.entry(h).or_default().append(&mut rows);
        }
        self.rows += other.rows;
    }

    /// Number of build rows in the table.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Probes with one left row: emits `left ⊕ right` with multiplicity
    /// `m₁ · m₂` for every build row under the same key that passes the
    /// residual predicate. The probe key is hashed and compared in place —
    /// a probe miss allocates nothing.
    pub fn probe_into(
        &self,
        lt: &Tuple,
        lm: u64,
        left_keys: &ResolvedAttrs,
        residual: Option<&ScalarExpr>,
        out: &mut Vec<Counted>,
    ) -> CoreResult<()> {
        let h = left_keys.hash_key(lt);
        if let Some(candidates) = self.map.get(&h) {
            for (rt, rm) in candidates {
                if !left_keys.pair_eq(lt, &self.build_keys, rt) {
                    continue;
                }
                let joined = lt.concat(rt);
                let keep = match residual {
                    None => true,
                    Some(p) => p.eval_predicate(&joined)?,
                };
                if keep {
                    let m = lm
                        .checked_mul(*rm)
                        .ok_or(CoreError::Overflow("join multiplicity"))?;
                    out.push((joined, m));
                }
            }
        }
        Ok(())
    }

    /// Fused probe + column projection: like [`probe_into`], but assembles
    /// each output row *directly* in projected form from the two sides —
    /// the concatenated tuple is never materialised, so a matching pair
    /// costs one allocation instead of two. Only valid for joins without a
    /// residual predicate (a residual must evaluate over the full
    /// concatenated row).
    ///
    /// [`probe_into`]: JoinTable::probe_into
    pub fn probe_project_into(
        &self,
        lt: &Tuple,
        lm: u64,
        left_keys: &ResolvedAttrs,
        cols: &[ProbeCol],
        out: &mut Vec<Counted>,
    ) -> CoreResult<()> {
        let h = left_keys.hash_key(lt);
        if let Some(candidates) = self.map.get(&h) {
            for (rt, rm) in candidates {
                if !left_keys.pair_eq(lt, &self.build_keys, rt) {
                    continue;
                }
                let m = lm
                    .checked_mul(*rm)
                    .ok_or(CoreError::Overflow("join multiplicity"))?;
                let vals: Vec<Value> = cols
                    .iter()
                    .map(|c| match c {
                        ProbeCol::Left(i) => lt.values()[*i].clone(),
                        ProbeCol::Right(i) => rt.values()[*i].clone(),
                    })
                    .collect();
                out.push((Tuple::new(vals), m));
            }
        }
        Ok(())
    }
}

/// Hash join on extracted equi-keys: the right side is built into a hash
/// table keyed by its key projection; the left side streams in batches and
/// probes a batch at a time.
pub struct HashJoin<'a> {
    left: BoxedOp<'a>,
    table: JoinTable,
    left_keys: ResolvedAttrs,
    residual: Option<ScalarExpr>,
    schema: SchemaRef,
    batch_size: usize,
    /// The current probe batch and the resume position within it.
    probe_rows: Vec<Counted>,
    probe_pos: usize,
    done: bool,
}

impl<'a> HashJoin<'a> {
    /// Builds the operator, draining the right input into the hash table.
    pub fn build(
        left: BoxedOp<'a>,
        mut right: BoxedOp<'a>,
        cond: EquiCondition,
        batch_size: usize,
    ) -> CoreResult<Self> {
        let schema = Arc::new(left.schema().concat(right.schema()));
        let build_keys = ResolvedAttrs::new(&cond.right_keys, right.schema().arity())?;
        let left_keys = ResolvedAttrs::new(&cond.left_keys, left.schema().arity())?;
        let mut table = JoinTable::new(build_keys);
        while let Some(batch) = right.next_batch()? {
            for (t, m) in batch {
                table.insert_row(t, m);
            }
        }
        Ok(HashJoin {
            left,
            table,
            left_keys,
            residual: cond.residual,
            schema,
            batch_size: batch_size.max(1),
            probe_rows: Vec::new(),
            probe_pos: 0,
            done: false,
        })
    }
}

impl Operator for HashJoin<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        if self.done {
            return Ok(None);
        }
        let mut out: Vec<Counted> = Vec::with_capacity(self.batch_size);
        'fill: loop {
            if self.probe_pos >= self.probe_rows.len() {
                match self.left.next_batch()? {
                    None => {
                        self.done = true;
                        break 'fill;
                    }
                    Some(batch) => {
                        self.probe_rows = batch.into_rows();
                        self.probe_pos = 0;
                    }
                }
            }
            while self.probe_pos < self.probe_rows.len() {
                let (lt, lm) = &self.probe_rows[self.probe_pos];
                self.probe_pos += 1;
                self.table.probe_into(
                    lt,
                    *lm,
                    &self.left_keys,
                    self.residual.as_ref(),
                    &mut out,
                )?;
                if out.len() >= self.batch_size {
                    break 'fill;
                }
            }
        }
        Ok(if out.is_empty() {
            None
        } else {
            Some(CountedBatch::from_rows(Arc::clone(&self.schema), out))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::collect;
    use crate::physical::ops::ScanOp;
    use mera_core::tuple;

    fn rel(rows: Vec<(Tuple, u64)>, types: &[DataType]) -> Relation {
        Relation::from_counted(Arc::new(Schema::anon(types)), rows).unwrap()
    }

    fn scan(r: &Relation) -> BoxedOp<'_> {
        Box::new(ScanOp::new(r, 2))
    }

    fn left_rel() -> Relation {
        rel(
            vec![
                (tuple![1_i64, "a"], 2),
                (tuple![2_i64, "b"], 1),
                (tuple![3_i64, "c"], 1),
            ],
            &[DataType::Int, DataType::Str],
        )
    }

    fn right_rel() -> Relation {
        rel(
            vec![(tuple![1_i64, 10_i64], 3), (tuple![2_i64, 20_i64], 1)],
            &[DataType::Int, DataType::Int],
        )
    }

    #[test]
    fn nested_loop_product() {
        let l = left_rel();
        let r = right_rel();
        let op = NestedLoopJoin::build(scan(&l), scan(&r), None, 1024).unwrap();
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), l.len() * r.len());
        assert_eq!(out.multiplicity(&tuple![1_i64, "a", 1_i64, 10_i64]), 6);
    }

    #[test]
    fn nested_loop_with_predicate() {
        let l = left_rel();
        let r = right_rel();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let op = NestedLoopJoin::build(scan(&l), scan(&r), Some(pred), 1024).unwrap();
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple![1_i64, "a", 1_i64, 10_i64]), 6);
        assert_eq!(out.multiplicity(&tuple![2_i64, "b", 2_i64, 20_i64]), 1);
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn nested_loop_resumes_mid_row_across_batches() {
        // batch size 1 forces a state save after every output row; the
        // full product must still come out exactly once.
        let l = left_rel();
        let r = right_rel();
        let mut op = NestedLoopJoin::build(scan(&l), scan(&r), None, 1).unwrap();
        let mut total = 0_u64;
        while let Some(b) = op.next_batch().unwrap() {
            assert_eq!(b.len(), 1);
            total += b.total_multiplicity();
        }
        assert_eq!(total, l.len() * r.len());
    }

    #[test]
    fn extract_simple_equi() {
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let c = extract_equi_condition(&pred, 2, 2).unwrap();
        assert_eq!(c.left_keys, vec![1]);
        assert_eq!(c.right_keys, vec![1]);
        assert!(c.residual.is_none());
    }

    #[test]
    fn extract_flipped_and_residual() {
        // %4 = %2 (right-to-left) AND %1 < %3
        let pred = ScalarExpr::attr(4)
            .eq(ScalarExpr::attr(2))
            .and(ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3)));
        let c = extract_equi_condition(&pred, 2, 2).unwrap();
        assert_eq!(c.left_keys, vec![2]);
        assert_eq!(c.right_keys, vec![2]);
        assert!(c.residual.is_some());
    }

    #[test]
    fn extract_rejects_same_side_equalities() {
        // %1 = %2 are both left attributes
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(2));
        assert!(extract_equi_condition(&pred, 2, 2).is_none());
        // literal comparison is no equi-key either
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        assert!(extract_equi_condition(&pred, 2, 2).is_none());
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let l = left_rel();
        let r = right_rel();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let cond = extract_equi_condition(&pred, 2, 2).unwrap();
        let hj = HashJoin::build(scan(&l), scan(&r), cond, 1024).unwrap();
        let nl = NestedLoopJoin::build(scan(&l), scan(&r), Some(pred), 1024).unwrap();
        assert_eq!(
            collect(Box::new(hj)).unwrap(),
            collect(Box::new(nl)).unwrap()
        );
    }

    #[test]
    fn hash_join_agrees_across_batch_sizes() {
        let l = left_rel();
        let r = right_rel();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let want = {
            let cond = extract_equi_condition(&pred, 2, 2).unwrap();
            collect(Box::new(
                HashJoin::build(scan(&l), scan(&r), cond, 1024).unwrap(),
            ))
            .unwrap()
        };
        for batch_size in [1, 2, 7] {
            let cond = extract_equi_condition(&pred, 2, 2).unwrap();
            let hj = HashJoin::build(scan(&l), scan(&r), cond, batch_size).unwrap();
            assert_eq!(collect(Box::new(hj)).unwrap(), want, "batch={batch_size}");
        }
    }

    #[test]
    fn hash_join_applies_residual() {
        let l = left_rel();
        let r = right_rel();
        // equi on %1=%3 plus residual %4 > %1... (int comparisons)
        let pred = ScalarExpr::attr(1)
            .eq(ScalarExpr::attr(3))
            .and(ScalarExpr::attr(4).cmp(CmpOp::Gt, ScalarExpr::int(15)));
        let cond = extract_equi_condition(&pred, 2, 2).unwrap();
        let hj = HashJoin::build(scan(&l), scan(&r), cond, 1024).unwrap();
        let out = collect(Box::new(hj)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.multiplicity(&tuple![2_i64, "b", 2_i64, 20_i64]), 1);
    }

    #[test]
    fn join_with_empty_side_is_empty() {
        let l = left_rel();
        let empty = rel(vec![], &[DataType::Int, DataType::Int]);
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::attr(3));
        let cond = extract_equi_condition(&pred, 2, 2).unwrap();
        let hj = HashJoin::build(scan(&l), scan(&empty), cond, 1024).unwrap();
        assert!(collect(Box::new(hj)).unwrap().is_empty());
    }
}
