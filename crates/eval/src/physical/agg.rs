//! Blocking hash aggregation for the group-by construct (Definition 3.4).

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::Aggregate;
use rustc_hash::FxHashMap;

use super::ops::VecScanOp;
use super::{BoxedOp, Counted, CountedBatch, Operator};

/// One group's accumulated state: its key tuple — materialised exactly
/// once, when the group is first seen — and the distinct aggregated values
/// with total multiplicities.
struct Group {
    key: Tuple,
    vals: Vec<(Value, u64)>,
}

/// Accumulated per-group state for hash aggregation, factored out of the
/// serial operator so the morsel engine can parallelise it. Keyed
/// aggregation parallelises by **radix partitioning**: batches are split
/// on the columnar key hash so each worker owns a disjoint slice of the
/// key space and builds a complete `AggState` for it — partition results
/// simply concatenate, no merge step. The empty key list (one global
/// group) cannot be partitioned, so it keeps the two-phase shape: each
/// worker folds a thread-local state, then the states are
/// [`merge`](AggState::merge)d once. Both splits are exact for every
/// aggregate — the same `(group, value)` pair merges associatively
/// (multiplicities add) — including AVG's weighted denominator.
///
/// Groups are looked up hash-then-verify on the columnar key hash: the
/// update path hashes the key columns of each batch **in place** and
/// compares candidates cell-wise against the group's key tuple; a row
/// landing in an existing group allocates nothing.
pub struct AggState {
    keys: Option<ResolvedAttrs>,
    /// 0-based offset of the aggregated attribute.
    attr0: usize,
    groups: FxHashMap<u64, Vec<Group>>,
}

impl AggState {
    /// Fresh state grouping on the resolved `keys` (`None` ⇒ one global
    /// group) and aggregating the 0-based attribute offset `attr0`.
    pub fn new(keys: Option<ResolvedAttrs>, attr0: usize) -> Self {
        AggState {
            keys,
            attr0,
            groups: FxHashMap::default(),
        }
    }

    /// Folds every counted row of a batch into its group.
    pub fn update_batch(&mut self, batch: &CountedBatch) -> CoreResult<()> {
        if self.attr0 >= batch.schema().arity() {
            return Err(CoreError::AttrIndexOutOfRange {
                index: self.attr0 + 1,
                arity: batch.schema().arity(),
            });
        }
        let hashes = match &self.keys {
            Some(k) => batch.key_hashes(k.offsets()),
            None => vec![0; batch.len()],
        };
        let val_col = batch.column(self.attr0);
        for (i, h) in hashes.into_iter().enumerate() {
            let bucket = self.groups.entry(h).or_default();
            let gi = match bucket.iter().position(|g| match &self.keys {
                Some(k) => k
                    .offsets()
                    .iter()
                    .zip(g.key.values())
                    .all(|(&off, kv)| batch.column(off).eq_value(i, kv)),
                None => true,
            }) {
                Some(gi) => gi,
                None => {
                    let key = match &self.keys {
                        Some(k) => Tuple::new(
                            k.offsets()
                                .iter()
                                .map(|&off| batch.column(off).value(i))
                                .collect(),
                        ),
                        None => Tuple::empty(),
                    };
                    bucket.push(Group {
                        key,
                        vals: Vec::new(),
                    });
                    bucket.len() - 1
                }
            };
            // merge rows of the same (key, value) eagerly to bound memory
            let v = val_col.value(i);
            let m = batch.counts()[i];
            let entry = &mut bucket[gi].vals;
            match entry.iter_mut().find(|(ev, _)| ev == &v) {
                Some((_, em)) => {
                    *em = em.checked_add(m).ok_or(CoreError::Overflow("group size"))?;
                }
                None => entry.push((v, m)),
            }
        }
        Ok(())
    }

    /// Absorbs a state built over a disjoint chunk of the same input
    /// (phase two of parallel aggregation). Group keys are already
    /// materialised on both sides, so candidates compare tuple-to-tuple.
    pub fn merge(&mut self, other: AggState) -> CoreResult<()> {
        for (h, groups) in other.groups {
            let bucket = self.groups.entry(h).or_default();
            for g in groups {
                let Some(mine) = bucket.iter_mut().find(|mine| mine.key == g.key) else {
                    bucket.push(g);
                    continue;
                };
                for (v, m) in g.vals {
                    match mine.vals.iter_mut().find(|(ev, _)| ev == &v) {
                        Some((_, em)) => {
                            *em = em.checked_add(m).ok_or(CoreError::Overflow("group size"))?;
                        }
                        None => mine.vals.push((v, m)),
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes the aggregate per group, consuming the state. `in_type` is
    /// the type of the aggregated attribute in the input schema.
    pub fn finish(self, agg: Aggregate, in_type: DataType) -> CoreResult<Vec<Counted>> {
        if self.keys.is_none() {
            let vals = self
                .groups
                .into_values()
                .flatten()
                .next()
                .map(|g| g.vals)
                .unwrap_or_default();
            let v = agg.compute(in_type, vals.iter().map(|(v, m)| (v, *m)))?;
            return Ok(vec![(Tuple::new(vec![v]), 1)]);
        }
        let mut out = Vec::with_capacity(self.groups.len().max(1));
        for g in self.groups.into_values().flatten() {
            let v = agg.compute(in_type, g.vals.iter().map(|(v, m)| (v, *m)))?;
            let mut kv = g.key.into_values();
            kv.push(v);
            out.push((Tuple::new(kv), 1));
        }
        Ok(out)
    }
}

/// Hash-based group-by: drains its input batch by batch, partitions by the
/// key projection, computes the aggregate per group with multiplicities,
/// then streams the result rows in batches.
pub struct HashAggregate<'a> {
    schema: SchemaRef,
    batch_size: usize,
    state: State<'a>,
}

enum State<'a> {
    Pending {
        input: BoxedOp<'a>,
        keys: Option<ResolvedAttrs>,
        agg: Aggregate,
        attr0: usize,
        in_type: DataType,
    },
    Draining(VecScanOp),
}

impl<'a> HashAggregate<'a> {
    /// Builds a group-by over `input`. `keys` may be empty (whole-relation
    /// aggregation producing exactly one tuple). Key offsets are resolved
    /// against the input schema once, here — the per-row path is
    /// index arithmetic only.
    pub fn build(
        input: BoxedOp<'a>,
        keys: &[usize],
        agg: Aggregate,
        attr: usize,
        batch_size: usize,
    ) -> CoreResult<Self> {
        let in_schema = input.schema();
        let key_list = if keys.is_empty() {
            None
        } else {
            let list = AttrList::new_unique(keys.to_vec())?;
            list.check_arity(in_schema.arity())?;
            Some(list)
        };
        let key_schema = match &key_list {
            Some(list) => in_schema.project(list)?,
            None => Schema::new(vec![]),
        };
        let in_type = in_schema.dtype(attr)?;
        let out_type = agg.result_type(in_type)?;
        let schema = Arc::new(key_schema.with_attr(Attribute::anon(out_type)));
        let resolved = match &key_list {
            Some(list) => Some(ResolvedAttrs::from_attr_list(list, in_schema.arity())?),
            None => None,
        };
        Ok(HashAggregate {
            schema,
            batch_size,
            state: State::Pending {
                input,
                keys: resolved,
                agg,
                attr0: attr - 1,
                in_type,
            },
        })
    }

    fn run(
        input: &mut BoxedOp<'a>,
        keys: &Option<ResolvedAttrs>,
        agg: Aggregate,
        attr0: usize,
        in_type: DataType,
    ) -> CoreResult<Vec<Counted>> {
        let mut state = AggState::new(keys.clone(), attr0);
        while let Some(batch) = input.next_batch()? {
            state.update_batch(&batch)?;
        }
        state.finish(agg, in_type)
    }
}

impl Operator for HashAggregate<'_> {
    fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        loop {
            match &mut self.state {
                State::Pending {
                    input,
                    keys,
                    agg,
                    attr0,
                    in_type,
                } => {
                    let rows = Self::run(input, keys, *agg, *attr0, *in_type)?;
                    self.state = State::Draining(VecScanOp::new(
                        Arc::clone(&self.schema),
                        rows,
                        self.batch_size,
                    ));
                }
                State::Draining(scan) => return scan.next_batch(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::collect;
    use crate::physical::ops::{ScanOp, UnionOp};
    use mera_core::tuple;

    const B: usize = 1024;

    fn sales() -> Relation {
        Relation::from_counted(
            Arc::new(Schema::named(&[
                ("city", DataType::Str),
                ("amount", DataType::Int),
            ])),
            vec![
                (tuple!["ams", 10_i64], 2),
                (tuple!["ams", 20_i64], 1),
                (tuple!["ens", 5_i64], 3),
            ],
        )
        .unwrap()
    }

    fn scan(r: &Relation) -> BoxedOp<'_> {
        Box::new(ScanOp::new(r, 2))
    }

    #[test]
    fn grouped_sum_weights_multiplicities() {
        let r = sales();
        let op = HashAggregate::build(scan(&r), &[1], Aggregate::Sum, 2, B).unwrap();
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.multiplicity(&tuple!["ams", 40_i64]), 1);
        assert_eq!(out.multiplicity(&tuple!["ens", 15_i64]), 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn whole_relation_aggregate_single_tuple() {
        let r = sales();
        let op = HashAggregate::build(scan(&r), &[], Aggregate::Cnt, 1, B).unwrap();
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.multiplicity(&tuple![6_i64]), 1);
    }

    #[test]
    fn chunked_input_merges_before_aggregation() {
        // the same tuple arriving in two rows must count once per total
        // multiplicity, e.g. for AVG denominator correctness
        let r = sales();
        let chunked = Box::new(UnionOp::new(scan(&r), scan(&r)));
        let op = HashAggregate::build(chunked, &[1], Aggregate::Avg, 2, B).unwrap();
        let out = collect(Box::new(op)).unwrap();
        // doubling every multiplicity does not change the average
        let expected_ams = (10.0 * 2.0 + 20.0) / 3.0;
        assert_eq!(out.multiplicity(&tuple!["ams", expected_ams]), 1);
    }

    #[test]
    fn result_streams_in_batches() {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        let mut r = Relation::empty(schema);
        for i in 0..10_i64 {
            r.insert(tuple![i], 1).unwrap();
        }
        // 10 groups drained with batch size 3 → batches of 3,3,3,1
        let mut op = HashAggregate::build(scan(&r), &[1], Aggregate::Cnt, 1, 3).unwrap();
        let mut sizes = Vec::new();
        while let Some(b) = op.next_batch().unwrap() {
            sizes.push(b.len());
        }
        assert_eq!(sizes, vec![3, 3, 3, 1]);
    }

    #[test]
    fn empty_input_with_keys_yields_empty() {
        let empty = Relation::empty(Arc::new(Schema::named(&[
            ("city", DataType::Str),
            ("amount", DataType::Int),
        ])));
        let op = HashAggregate::build(scan(&empty), &[1], Aggregate::Avg, 2, B).unwrap();
        assert!(collect(Box::new(op)).unwrap().is_empty());
    }

    #[test]
    fn empty_input_without_keys_partial_aggregate_errors() {
        let empty = Relation::empty(Arc::new(Schema::named(&[
            ("city", DataType::Str),
            ("amount", DataType::Int),
        ])));
        let op = HashAggregate::build(scan(&empty), &[], Aggregate::Min, 2, B).unwrap();
        assert_eq!(
            collect(Box::new(op)).unwrap_err(),
            CoreError::AggregateOnEmpty("MIN")
        );
    }

    #[test]
    fn build_validates_keys() {
        let r = sales();
        assert!(HashAggregate::build(scan(&r), &[1, 1], Aggregate::Cnt, 1, B).is_err());
        assert!(HashAggregate::build(scan(&r), &[9], Aggregate::Cnt, 1, B).is_err());
        // SUM over str
        assert!(HashAggregate::build(scan(&r), &[1], Aggregate::Sum, 1, B).is_err());
    }
}
