//! Translation of algebra expressions into physical operator trees.
//!
//! The planner is deliberately simple — operator *choice* is local:
//!
//! * joins with at least one cross-side equality conjunct become
//!   [`HashJoin`]s (residual conjuncts are applied post-probe); all other
//!   joins and every product become [`NestedLoopJoin`]s;
//! * plain and extended projections share [`ProjectOp`];
//! * difference/intersection materialise both sides (their multiplicity
//!   laws need merged counts);
//! * group-by becomes a [`HashAggregate`].
//!
//! Plan-*level* optimisation (pushdowns, join ordering) lives in
//! `mera-opt`, which rewrites the algebra tree before it reaches this
//! planner.
//!
//! Plans borrow the expression and the provider (`BoxedOp<'a>`): scans
//! stream lazily out of the stored relations, so nothing is snapshotted at
//! plan time.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::rel::RelExpr;
use mera_expr::ScalarExpr;

use crate::engine::ExecOptions;
use crate::provider::{RelationProvider, Schemas};

use super::agg::HashAggregate;
use super::join::{extract_equi_condition, HashJoin, NestedLoopJoin};
use super::ops::{DifferenceOp, DistinctOp, FilterOp, IntersectOp, ProjectOp, ScanOp, UnionOp};
use super::stats::{ExecStats, Instrumented};
use super::BoxedOp;

/// Plans an expression into an operator tree with default options,
/// validating schemas up front.
pub fn plan<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
) -> CoreResult<BoxedOp<'a>> {
    plan_with(expr, provider, ExecOptions::default())
}

/// Plans an expression into an operator tree with explicit options,
/// validating schemas up front.
pub fn plan_with<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    opts: ExecOptions,
) -> CoreResult<BoxedOp<'a>> {
    expr.schema(&Schemas(provider))?;
    plan_node(expr, provider, opts.effective_batch_size(), None)
}

/// Plans with per-operator instrumentation; every operator registers a
/// counter in `stats` labelled with its display form.
pub fn plan_instrumented<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    stats: &mut ExecStats,
) -> CoreResult<BoxedOp<'a>> {
    plan_instrumented_with(expr, provider, ExecOptions::default(), stats)
}

/// Plans with instrumentation and explicit options.
pub fn plan_instrumented_with<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> CoreResult<BoxedOp<'a>> {
    expr.schema(&Schemas(provider))?;
    plan_node(expr, provider, opts.effective_batch_size(), Some(stats))
}

fn plan_node<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    batch: usize,
    mut stats: Option<&mut ExecStats>,
) -> CoreResult<BoxedOp<'a>> {
    let op: BoxedOp<'a> = match expr {
        RelExpr::Scan(name) => Box::new(ScanOp::new(provider.relation(name)?, batch)),
        RelExpr::Values(rel) => Box::new(ScanOp::new(rel, batch)),
        RelExpr::Union(l, r) => {
            let left = plan_node(l, provider, batch, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, stats.as_deref_mut())?;
            Box::new(UnionOp::new(left, right))
        }
        RelExpr::Difference(l, r) => {
            let left = plan_node(l, provider, batch, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, stats.as_deref_mut())?;
            Box::new(DifferenceOp::new(left, right, batch))
        }
        RelExpr::Intersect(l, r) => {
            let left = plan_node(l, provider, batch, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, stats.as_deref_mut())?;
            Box::new(IntersectOp::new(left, right, batch))
        }
        RelExpr::Product(l, r) => {
            let left = plan_node(l, provider, batch, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, stats.as_deref_mut())?;
            Box::new(NestedLoopJoin::build(left, right, None, batch)?)
        }
        RelExpr::Select { input, predicate } => {
            let child = plan_node(input, provider, batch, stats.as_deref_mut())?;
            Box::new(FilterOp::new(child, predicate.clone()))
        }
        RelExpr::Project { input, attrs } => {
            let child = plan_node(input, provider, batch, stats.as_deref_mut())?;
            let out_schema = Arc::new(child.schema().project(attrs)?);
            let exprs = attrs
                .indexes()
                .iter()
                .map(|&i| ScalarExpr::Attr(i))
                .collect();
            Box::new(ProjectOp::new(child, exprs, out_schema))
        }
        RelExpr::ExtProject { input, exprs } => {
            let child = plan_node(input, provider, batch, stats.as_deref_mut())?;
            let out_schema = ext_project_schema(child.schema(), exprs)?;
            Box::new(ProjectOp::new(child, exprs.clone(), out_schema))
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let l = plan_node(left, provider, batch, stats.as_deref_mut())?;
            let r = plan_node(right, provider, batch, stats.as_deref_mut())?;
            let la = l.schema().arity();
            let ra = r.schema().arity();
            match extract_equi_condition(predicate, la, ra) {
                Some(cond) => Box::new(HashJoin::build(l, r, cond, batch)?),
                None => Box::new(NestedLoopJoin::build(l, r, Some(predicate.clone()), batch)?),
            }
        }
        RelExpr::Distinct(input) => {
            let child = plan_node(input, provider, batch, stats.as_deref_mut())?;
            Box::new(DistinctOp::new(child))
        }
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let child = plan_node(input, provider, batch, stats.as_deref_mut())?;
            Box::new(HashAggregate::build(child, keys, *agg, *attr, batch)?)
        }
        RelExpr::Closure(input) => {
            let child = plan_node(input, provider, batch, stats.as_deref_mut())?;
            Box::new(super::ops::ClosureOp::new(child, batch))
        }
    };
    Ok(match stats {
        Some(stats) => {
            let counter = stats.register(describe(expr));
            Box::new(Instrumented::new(op, counter))
        }
        None => op,
    })
}

/// Output schema of an extended projection over a known input schema
/// (shared with the morsel-driven pipeline compiler).
pub(crate) fn ext_project_schema(input: &SchemaRef, exprs: &[ScalarExpr]) -> CoreResult<SchemaRef> {
    let mut attrs = Vec::with_capacity(exprs.len());
    for e in exprs {
        let t = e.infer_type(input)?;
        let name = match e {
            ScalarExpr::Attr(i) => input.attr(*i)?.name.clone(),
            _ => None,
        };
        attrs.push(Attribute { name, dtype: t });
    }
    Ok(Arc::new(Schema::new(attrs)))
}

/// A short label for instrumentation (operator name plus scanned relation
/// where applicable).
fn describe(expr: &RelExpr) -> String {
    match expr {
        RelExpr::Scan(name) => format!("scan({name})"),
        other => other.op_name().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{collect, execute, execute_with};
    use crate::reference;
    use mera_core::tuple;
    use mera_expr::Aggregate;

    fn db() -> Database {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Str]))
            .unwrap()
            .with("s", Schema::anon(&[DataType::Int, DataType::Int]))
            .unwrap();
        let mut db = Database::new(schema);
        let rs = Arc::clone(db.schema().get("r").unwrap());
        db.replace(
            "r",
            Relation::from_counted(
                rs,
                vec![
                    (tuple![1_i64, "a"], 2),
                    (tuple![2_i64, "b"], 1),
                    (tuple![3_i64, "a"], 3),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let ss = Arc::clone(db.schema().get("s").unwrap());
        db.replace(
            "s",
            Relation::from_counted(
                ss,
                vec![(tuple![1_i64, 10_i64], 1), (tuple![3_i64, 30_i64], 2)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    /// A grab-bag of plans covering every operator; each must agree with
    /// the reference evaluator.
    fn plans() -> Vec<RelExpr> {
        use mera_expr::CmpOp;
        let r = RelExpr::scan("r");
        let s = RelExpr::scan("s");
        vec![
            r.clone(),
            r.clone().union(r.clone()),
            r.clone()
                .difference(r.clone().select(ScalarExpr::attr(1).eq(ScalarExpr::int(1)))),
            r.clone().intersect(r.clone()),
            r.clone().product(s.clone()),
            r.clone()
                .select(ScalarExpr::attr(2).eq(ScalarExpr::str("a"))),
            r.clone().project(&[2]),
            r.clone()
                .ext_project(vec![ScalarExpr::attr(1).mul(ScalarExpr::int(10))]),
            r.clone()
                .join(s.clone(), ScalarExpr::attr(1).eq(ScalarExpr::attr(3))),
            // non-equi join → nested loop
            r.clone().join(
                s.clone(),
                ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3)),
            ),
            // equi + residual
            r.clone().join(
                s.clone(),
                ScalarExpr::attr(1)
                    .eq(ScalarExpr::attr(3))
                    .and(ScalarExpr::attr(4).cmp(CmpOp::Gt, ScalarExpr::int(15))),
            ),
            r.clone().distinct(),
            r.clone().group_by(&[2], Aggregate::Cnt, 1),
            r.clone().group_by(&[2], Aggregate::Sum, 1),
            r.clone().group_by(&[], Aggregate::Avg, 1),
            r.clone()
                .union(r)
                .project(&[2])
                .distinct()
                .product(s)
                .select(ScalarExpr::attr(2).eq(ScalarExpr::int(1)))
                .group_by(&[1], Aggregate::Cnt, 1),
        ]
    }

    #[test]
    fn physical_agrees_with_reference_on_all_operators() {
        let db = db();
        for e in plans() {
            let expected = reference::eval(&e, &db).unwrap();
            let actual = execute(&e, &db).unwrap();
            assert_eq!(actual, expected, "plan disagreed for {e}");
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let db = db();
        for e in plans() {
            let expected = reference::eval(&e, &db).unwrap();
            for batch_size in [1, 3, 1024] {
                let opts = ExecOptions {
                    batch_size,
                    partitions: 1,
                };
                let actual = execute_with(&e, &db, &opts).unwrap();
                assert_eq!(actual, expected, "batch={batch_size} disagreed for {e}");
            }
        }
    }

    #[test]
    fn instrumented_plan_counts_rows() {
        let db = db();
        let e = RelExpr::scan("r")
            .select(ScalarExpr::attr(2).eq(ScalarExpr::str("a")))
            .project(&[1]);
        let mut stats = ExecStats::new();
        let plan = plan_instrumented(&e, &db, &mut stats).unwrap();
        let out = collect(plan).unwrap();
        assert_eq!(out.len(), 5);
        let rows = stats.rows_out();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("scan(r)".to_owned(), 6));
        assert_eq!(rows[1], ("select".to_owned(), 5));
        assert_eq!(rows[2], ("project".to_owned(), 5));
        assert_eq!(stats.total_intermediate(), 16);
    }

    #[test]
    fn plan_rejects_invalid_expressions() {
        let db = db();
        let bad = RelExpr::scan("r").union(RelExpr::scan("s"));
        assert!(plan(&bad, &db).is_err());
        assert!(plan(&RelExpr::scan("zzz"), &db).is_err());
    }
}
