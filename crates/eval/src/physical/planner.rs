//! Translation of algebra expressions into physical operator trees.
//!
//! The planner is deliberately simple — operator *choice* is local:
//!
//! * joins with at least one cross-side equality conjunct become
//!   [`HashJoin`]s (residual conjuncts are applied post-probe); all other
//!   joins and every product become [`NestedLoopJoin`]s;
//! * plain and extended projections share [`ProjectOp`];
//! * difference/intersection materialise both sides (their multiplicity
//!   laws need merged counts);
//! * group-by becomes a [`HashAggregate`].
//!
//! Plan-*level* optimisation (pushdowns, join ordering) lives in
//! `mera-opt`, which rewrites the algebra tree before it reaches this
//! planner.
//!
//! Plans borrow the expression and the provider (`BoxedOp<'a>`): scans
//! stream lazily out of the stored relations, so nothing is snapshotted at
//! plan time.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::rel::RelExpr;
use mera_expr::ScalarExpr;

use crate::engine::ExecOptions;
use crate::index::{split_point_conjuncts, IndexJoinHints, IndexSet};
use crate::provider::{RelationProvider, Schemas};

use super::agg::HashAggregate;
use super::index_ops::{IndexLookupOp, IndexNestedLoopJoin};
use super::join::{extract_equi_condition, HashJoin, NestedLoopJoin};
use super::ops::{DifferenceOp, DistinctOp, FilterOp, IntersectOp, ProjectOp, ScanOp, UnionOp};
use super::stats::{ExecStats, Instrumented};
use super::BoxedOp;

/// Index access paths available to the planner: the catalog's indexes plus
/// the cost-model hints naming the joins that should run index-nested-loop.
///
/// Point-selections over an indexed base relation always take the index
/// (a lookup is never worse than scan-and-filter); joins only do when the
/// cost model hinted them, because probing per left row loses to a hash
/// build once the probe side grows — a statistics question the planner
/// itself does not answer.
#[derive(Clone, Copy)]
pub struct IndexAccess<'a> {
    /// The registered indexes (the catalog objects).
    pub indexes: &'a IndexSet,
    /// `(relation, sorted key attrs)` joins chosen for index-nested-loop.
    pub hints: &'a IndexJoinHints,
}

/// Plans an expression into an operator tree with default options,
/// validating schemas up front.
pub fn plan<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
) -> CoreResult<BoxedOp<'a>> {
    plan_with(expr, provider, ExecOptions::default())
}

/// Plans an expression into an operator tree with explicit options,
/// validating schemas up front.
pub fn plan_with<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    opts: ExecOptions,
) -> CoreResult<BoxedOp<'a>> {
    plan_indexed_with(expr, provider, opts, None)
}

/// Plans with index access paths: point-selections over indexed base
/// relations become [`IndexLookupOp`]s and hinted joins become
/// [`IndexNestedLoopJoin`]s.
pub fn plan_indexed_with<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    opts: ExecOptions,
    access: Option<IndexAccess<'a>>,
) -> CoreResult<BoxedOp<'a>> {
    expr.schema(&Schemas(provider))?;
    plan_node(expr, provider, opts.effective_batch_size(), access, None)
}

/// Plans with per-operator instrumentation; every operator registers a
/// counter in `stats` labelled with its display form.
pub fn plan_instrumented<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    stats: &mut ExecStats,
) -> CoreResult<BoxedOp<'a>> {
    plan_instrumented_with(expr, provider, ExecOptions::default(), stats)
}

/// Plans with instrumentation and explicit options.
pub fn plan_instrumented_with<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    opts: ExecOptions,
    stats: &mut ExecStats,
) -> CoreResult<BoxedOp<'a>> {
    plan_instrumented_indexed_with(expr, provider, opts, None, stats)
}

/// Plans with both instrumentation and index access paths — the EXPLAIN
/// entry point: counters are labelled with the chosen access path
/// (`index_lookup(r)`, `index_nl_join(r)`) where an index was taken.
pub fn plan_instrumented_indexed_with<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    opts: ExecOptions,
    access: Option<IndexAccess<'a>>,
    stats: &mut ExecStats,
) -> CoreResult<BoxedOp<'a>> {
    expr.schema(&Schemas(provider))?;
    plan_node(
        expr,
        provider,
        opts.effective_batch_size(),
        access,
        Some(stats),
    )
}

fn plan_node<'a>(
    expr: &'a RelExpr,
    provider: &'a (impl RelationProvider + ?Sized),
    batch: usize,
    access: Option<IndexAccess<'a>>,
    mut stats: Option<&mut ExecStats>,
) -> CoreResult<BoxedOp<'a>> {
    let mut label: Option<String> = None;
    let op: BoxedOp<'a> = match expr {
        RelExpr::Scan(name) => Box::new(ScanOp::new(provider.relation(name)?, batch)),
        RelExpr::Values(rel) => Box::new(ScanOp::new(rel, batch)),
        RelExpr::Union(l, r) => {
            let left = plan_node(l, provider, batch, access, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, access, stats.as_deref_mut())?;
            Box::new(UnionOp::new(left, right))
        }
        RelExpr::Difference(l, r) => {
            let left = plan_node(l, provider, batch, access, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, access, stats.as_deref_mut())?;
            Box::new(DifferenceOp::new(left, right, batch))
        }
        RelExpr::Intersect(l, r) => {
            let left = plan_node(l, provider, batch, access, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, access, stats.as_deref_mut())?;
            Box::new(IntersectOp::new(left, right, batch))
        }
        RelExpr::Product(l, r) => {
            let left = plan_node(l, provider, batch, access, stats.as_deref_mut())?;
            let right = plan_node(r, provider, batch, access, stats.as_deref_mut())?;
            Box::new(NestedLoopJoin::build(left, right, None, batch)?)
        }
        RelExpr::Select { input, predicate } => {
            match try_index_select(input, predicate, access, batch)? {
                Some((op, l)) => {
                    label = Some(l);
                    op
                }
                None => {
                    let child = plan_node(input, provider, batch, access, stats.as_deref_mut())?;
                    Box::new(FilterOp::new(child, predicate.clone()))
                }
            }
        }
        RelExpr::Project { input, attrs } => {
            let child = plan_node(input, provider, batch, access, stats.as_deref_mut())?;
            let out_schema = Arc::new(child.schema().project(attrs)?);
            let exprs = attrs
                .indexes()
                .iter()
                .map(|&i| ScalarExpr::Attr(i))
                .collect();
            Box::new(ProjectOp::new(child, exprs, out_schema))
        }
        RelExpr::ExtProject { input, exprs } => {
            let child = plan_node(input, provider, batch, access, stats.as_deref_mut())?;
            let out_schema = ext_project_schema(child.schema(), exprs)?;
            Box::new(ProjectOp::new(child, exprs.clone(), out_schema))
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let l = plan_node(left, provider, batch, access, stats.as_deref_mut())?;
            match try_index_join(l, right, predicate, access, provider, batch)? {
                IndexJoinOutcome::Indexed(op, l) => {
                    label = Some(l);
                    op
                }
                IndexJoinOutcome::Fallback(l) => {
                    let r = plan_node(right, provider, batch, access, stats.as_deref_mut())?;
                    let la = l.schema().arity();
                    let ra = r.schema().arity();
                    match extract_equi_condition(predicate, la, ra) {
                        Some(cond) => Box::new(HashJoin::build(l, r, cond, batch)?),
                        None => {
                            Box::new(NestedLoopJoin::build(l, r, Some(predicate.clone()), batch)?)
                        }
                    }
                }
            }
        }
        RelExpr::Distinct(input) => {
            let child = plan_node(input, provider, batch, access, stats.as_deref_mut())?;
            Box::new(DistinctOp::new(child))
        }
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let child = plan_node(input, provider, batch, access, stats.as_deref_mut())?;
            Box::new(HashAggregate::build(child, keys, *agg, *attr, batch)?)
        }
        RelExpr::Closure(input) => {
            let child = plan_node(input, provider, batch, access, stats.as_deref_mut())?;
            Box::new(super::ops::ClosureOp::new(child, batch))
        }
    };
    Ok(match stats {
        Some(stats) => {
            let counter = stats.register(label.unwrap_or_else(|| describe(expr)));
            Box::new(Instrumented::new(op, counter))
        }
        None => op,
    })
}

/// Plans `σ_{predicate}(input)` as an index lookup when `input` is a scan
/// of an indexed base relation and the point-equality conjuncts exactly
/// cover an index's key set. Returns the operator and its access-path
/// label, or `None` to fall back to scan-and-filter.
fn try_index_select<'a>(
    input: &'a RelExpr,
    predicate: &ScalarExpr,
    access: Option<IndexAccess<'a>>,
    batch: usize,
) -> CoreResult<Option<(BoxedOp<'a>, String)>> {
    let (Some(access), RelExpr::Scan(rel)) = (access, input) else {
        return Ok(None);
    };
    let (points, rest) = split_point_conjuncts(predicate);
    if points.is_empty() {
        return Ok(None);
    }
    let attrs: Vec<usize> = points.iter().map(|(i, _)| *i).collect();
    let Some(index) = access.indexes.find(rel, &attrs) else {
        return Ok(None);
    };
    // assemble the key tuple in the index's key-attribute order
    let mut key_vals = Vec::with_capacity(attrs.len());
    for &k in index.key_attrs() {
        let v = points
            .iter()
            .find(|(i, _)| *i == k)
            .map(|(_, v)| v.clone())
            .expect("index keys match point attributes");
        key_vals.push(v);
    }
    let lookup: BoxedOp<'a> = Box::new(IndexLookupOp::new(index, Tuple::new(key_vals), batch));
    let op = if rest.is_empty() {
        lookup
    } else {
        Box::new(FilterOp::new(lookup, ScalarExpr::conjoin(rest)))
    };
    Ok(Some((op, format!("index_lookup({rel})"))))
}

/// What [`try_index_join`] decided: an index-nested-loop operator (with
/// its label), or the untouched left plan for the hash/nested-loop
/// fallback.
enum IndexJoinOutcome<'a> {
    Indexed(BoxedOp<'a>, String),
    Fallback(BoxedOp<'a>),
}

/// Plans `l ⋈_{predicate} right` as an index-nested-loop join when `right`
/// scans an indexed base relation and the cost model hinted an index whose
/// key set is covered by the join's equi-keys. The hint may bind only a
/// subset of the equi-keys (a partial-key probe): leftover equalities join
/// the predicate's non-equality conjuncts as a residual filter over the
/// concatenated schema.
fn try_index_join<'a>(
    l: BoxedOp<'a>,
    right: &'a RelExpr,
    predicate: &ScalarExpr,
    access: Option<IndexAccess<'a>>,
    provider: &'a (impl RelationProvider + ?Sized),
    batch: usize,
) -> CoreResult<IndexJoinOutcome<'a>> {
    let (Some(access), RelExpr::Scan(rel)) = (access, right) else {
        return Ok(IndexJoinOutcome::Fallback(l));
    };
    let la = l.schema().arity();
    let ra = provider.relation(rel)?.schema().arity();
    let Some(cond) = extract_equi_condition(predicate, la, ra) else {
        return Ok(IndexJoinOutcome::Fallback(l));
    };
    let mut keys: Vec<usize> = cond.right_keys.clone();
    keys.sort_unstable();
    keys.dedup();
    // best hinted index for this join: every hinted key must be an
    // equi-key; prefer the longest (most selective) hinted key set
    let mut hint_keys: Option<&Vec<usize>> = None;
    for (r, k) in access.hints.iter() {
        if r != rel || !k.iter().all(|a| keys.contains(a)) {
            continue;
        }
        let better = match hint_keys {
            None => true,
            Some(b) => k.len() > b.len() || (k.len() == b.len() && k < b),
        };
        if better {
            hint_keys = Some(k);
        }
    }
    let Some(hint_keys) = hint_keys else {
        return Ok(IndexJoinOutcome::Fallback(l));
    };
    let Some(index) = access.indexes.find(rel, hint_keys) else {
        return Ok(IndexJoinOutcome::Fallback(l));
    };
    // split the equi pairs into probe keys — one per index key attribute —
    // and leftover equalities; the condition carries 1-based attribute
    // numbers, the operator takes 0-based offsets into each side's schema
    let mut probe_left = Vec::with_capacity(hint_keys.len());
    let mut probe_right = Vec::with_capacity(hint_keys.len());
    let mut used = vec![false; cond.right_keys.len()];
    for &ik in index.key_attrs() {
        let Some(pos) = cond.right_keys.iter().position(|&rk| rk == ik) else {
            return Ok(IndexJoinOutcome::Fallback(l));
        };
        used[pos] = true;
        probe_left.push(cond.left_keys[pos] - 1);
        probe_right.push(cond.right_keys[pos] - 1);
    }
    // unbound equi pairs are re-evaluated as residual equalities over the
    // concatenated schema (right attributes shift by the left arity)
    let mut residuals: Vec<ScalarExpr> = Vec::new();
    for (i, &rk) in cond.right_keys.iter().enumerate() {
        if !used[i] {
            residuals.push(ScalarExpr::attr(cond.left_keys[i]).eq(ScalarExpr::attr(la + rk)));
        }
    }
    residuals.extend(cond.residual);
    let residual = (!residuals.is_empty()).then(|| ScalarExpr::conjoin(residuals));
    let op = IndexNestedLoopJoin::build(l, index, &probe_left, &probe_right, residual, batch)?;
    Ok(IndexJoinOutcome::Indexed(
        Box::new(op),
        format!("index_nl_join({rel})"),
    ))
}

/// Output schema of an extended projection over a known input schema
/// (shared with the morsel-driven pipeline compiler).
pub(crate) fn ext_project_schema(input: &SchemaRef, exprs: &[ScalarExpr]) -> CoreResult<SchemaRef> {
    let mut attrs = Vec::with_capacity(exprs.len());
    for e in exprs {
        let t = e.infer_type(input)?;
        let name = match e {
            ScalarExpr::Attr(i) => input.attr(*i)?.name.clone(),
            _ => None,
        };
        attrs.push(Attribute { name, dtype: t });
    }
    Ok(Arc::new(Schema::new(attrs)))
}

/// A short label for instrumentation (operator name plus scanned relation
/// where applicable).
fn describe(expr: &RelExpr) -> String {
    match expr {
        RelExpr::Scan(name) => format!("scan({name})"),
        other => other.op_name().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{collect, execute, execute_with};
    use crate::reference;
    use mera_core::tuple;
    use mera_expr::Aggregate;

    fn db() -> Database {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int, DataType::Str]))
            .unwrap()
            .with("s", Schema::anon(&[DataType::Int, DataType::Int]))
            .unwrap();
        let mut db = Database::new(schema);
        let rs = Arc::clone(db.schema().get("r").unwrap());
        db.replace(
            "r",
            Relation::from_counted(
                rs,
                vec![
                    (tuple![1_i64, "a"], 2),
                    (tuple![2_i64, "b"], 1),
                    (tuple![3_i64, "a"], 3),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let ss = Arc::clone(db.schema().get("s").unwrap());
        db.replace(
            "s",
            Relation::from_counted(
                ss,
                vec![(tuple![1_i64, 10_i64], 1), (tuple![3_i64, 30_i64], 2)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    /// A grab-bag of plans covering every operator; each must agree with
    /// the reference evaluator.
    fn plans() -> Vec<RelExpr> {
        use mera_expr::CmpOp;
        let r = RelExpr::scan("r");
        let s = RelExpr::scan("s");
        vec![
            r.clone(),
            r.clone().union(r.clone()),
            r.clone()
                .difference(r.clone().select(ScalarExpr::attr(1).eq(ScalarExpr::int(1)))),
            r.clone().intersect(r.clone()),
            r.clone().product(s.clone()),
            r.clone()
                .select(ScalarExpr::attr(2).eq(ScalarExpr::str("a"))),
            r.clone().project(&[2]),
            r.clone()
                .ext_project(vec![ScalarExpr::attr(1).mul(ScalarExpr::int(10))]),
            r.clone()
                .join(s.clone(), ScalarExpr::attr(1).eq(ScalarExpr::attr(3))),
            // non-equi join → nested loop
            r.clone().join(
                s.clone(),
                ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::attr(3)),
            ),
            // equi + residual
            r.clone().join(
                s.clone(),
                ScalarExpr::attr(1)
                    .eq(ScalarExpr::attr(3))
                    .and(ScalarExpr::attr(4).cmp(CmpOp::Gt, ScalarExpr::int(15))),
            ),
            r.clone().distinct(),
            r.clone().group_by(&[2], Aggregate::Cnt, 1),
            r.clone().group_by(&[2], Aggregate::Sum, 1),
            r.clone().group_by(&[], Aggregate::Avg, 1),
            r.clone()
                .union(r)
                .project(&[2])
                .distinct()
                .product(s)
                .select(ScalarExpr::attr(2).eq(ScalarExpr::int(1)))
                .group_by(&[1], Aggregate::Cnt, 1),
        ]
    }

    #[test]
    fn physical_agrees_with_reference_on_all_operators() {
        let db = db();
        for e in plans() {
            let expected = reference::eval(&e, &db).unwrap();
            let actual = execute(&e, &db).unwrap();
            assert_eq!(actual, expected, "plan disagreed for {e}");
        }
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let db = db();
        for e in plans() {
            let expected = reference::eval(&e, &db).unwrap();
            for batch_size in [1, 3, 1024] {
                let opts = ExecOptions {
                    batch_size,
                    partitions: 1,
                };
                let actual = execute_with(&e, &db, &opts).unwrap();
                assert_eq!(actual, expected, "batch={batch_size} disagreed for {e}");
            }
        }
    }

    #[test]
    fn instrumented_plan_counts_rows() {
        let db = db();
        let e = RelExpr::scan("r")
            .select(ScalarExpr::attr(2).eq(ScalarExpr::str("a")))
            .project(&[1]);
        let mut stats = ExecStats::new();
        let plan = plan_instrumented(&e, &db, &mut stats).unwrap();
        let out = collect(plan).unwrap();
        assert_eq!(out.len(), 5);
        let rows = stats.rows_out();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], ("scan(r)".to_owned(), 6));
        assert_eq!(rows[1], ("select".to_owned(), 5));
        assert_eq!(rows[2], ("project".to_owned(), 5));
        assert_eq!(stats.total_intermediate(), 16);
    }

    #[test]
    fn partial_key_hint_takes_the_index_path() {
        let db = db();
        let mut indexes = crate::index::IndexSet::new();
        indexes.create(&db, "s", &[1]).unwrap();
        let mut hints = crate::index::IndexJoinHints::default();
        hints.insert(("s".to_owned(), vec![1]));
        // two equi conjuncts, but only the first is indexed: the probe
        // binds %1, the second equality is re-checked as a residual
        let e = RelExpr::scan("s").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1)
                .eq(ScalarExpr::attr(3))
                .and(ScalarExpr::attr(2).eq(ScalarExpr::attr(4))),
        );
        let expected = reference::eval(&e, &db).unwrap();
        let mut stats = ExecStats::new();
        let plan = plan_instrumented_indexed_with(
            &e,
            &db,
            ExecOptions::default(),
            Some(IndexAccess {
                indexes: &indexes,
                hints: &hints,
            }),
            &mut stats,
        )
        .unwrap();
        let out = collect(plan).unwrap();
        assert_eq!(out, expected);
        assert_eq!(out.len(), 5, "self-join multiplicities multiply");
        assert!(
            stats
                .rows_out()
                .iter()
                .any(|(label, _)| label == "index_nl_join(s)"),
            "partial-key hint should take the index path, got {:?}",
            stats.rows_out()
        );
    }

    #[test]
    fn plan_rejects_invalid_expressions() {
        let db = db();
        let bad = RelExpr::scan("r").union(RelExpr::scan("s"));
        assert!(plan(&bad, &db).is_err());
        assert!(plan(&RelExpr::scan("zzz"), &db).is_err());
    }
}
