//! Execution statistics: per-operator row counters.
//!
//! Example 3.2's point is that inserting a projection *reduces the size of
//! intermediate results*. To measure that claim (experiment E5) the planner
//! can wrap every operator in an [`Instrumented`] shell that counts the
//! tuples (with multiplicity) flowing out of it; [`ExecStats`] aggregates
//! the counters per operator for reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mera_core::prelude::*;

use super::{BoxedOp, CountedBatch, Operator};

/// One operator's counters.
#[derive(Debug, Default)]
pub struct OpCounter {
    /// Tuples produced, counted with multiplicity.
    pub rows_out: AtomicU64,
    /// Attribute values produced (`rows × arity`) — the paper's "size of
    /// intermediate results" is data volume, so narrowing projections
    /// shrink this even when the row count is unchanged.
    pub cells_out: AtomicU64,
    /// Stream batches produced (distinct `next_batch()` yields).
    pub chunks_out: AtomicU64,
}

/// Shared execution statistics for one plan.
#[derive(Debug, Default, Clone)]
pub struct ExecStats {
    counters: Vec<(String, Arc<OpCounter>)>,
}

impl ExecStats {
    /// Creates an empty stats registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter for an operator label, returning the handle the
    /// instrumented operator updates.
    pub fn register(&mut self, label: impl Into<String>) -> Arc<OpCounter> {
        let c = Arc::new(OpCounter::default());
        self.counters.push((label.into(), Arc::clone(&c)));
        c
    }

    /// `(label, rows_out)` per registered operator, in registration order
    /// (bottom-up plan order).
    pub fn rows_out(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(l, c)| (l.clone(), c.rows_out.load(Ordering::Relaxed)))
            .collect()
    }

    /// `(label, cells_out)` per registered operator, in registration order
    /// (bottom-up plan order: an operator's input precedes it).
    pub fn cells_out(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(l, c)| (l.clone(), c.cells_out.load(Ordering::Relaxed)))
            .collect()
    }

    /// Total tuples that crossed operator boundaries.
    pub fn total_intermediate(&self) -> u64 {
        self.counters
            .iter()
            .map(|(_, c)| c.rows_out.load(Ordering::Relaxed))
            .sum()
    }

    /// Total attribute values that crossed operator boundaries — the
    /// intermediate *data volume* of the plan (rows × arity summed over
    /// operators).
    pub fn total_cells(&self) -> u64 {
        self.counters
            .iter()
            .map(|(_, c)| c.cells_out.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders a small per-operator report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        for (label, rows) in self.rows_out() {
            s.push_str(&format!("{rows:>12}  {label}\n"));
        }
        s.push_str(&format!(
            "{:>12}  total intermediate tuples\n",
            self.total_intermediate()
        ));
        s
    }
}

/// Wraps an operator, counting its output.
pub struct Instrumented<'a> {
    inner: BoxedOp<'a>,
    counter: Arc<OpCounter>,
}

impl<'a> Instrumented<'a> {
    /// Wraps `inner`, reporting into `counter`.
    pub fn new(inner: BoxedOp<'a>, counter: Arc<OpCounter>) -> Self {
        Instrumented { inner, counter }
    }
}

impl Operator for Instrumented<'_> {
    fn schema(&self) -> &SchemaRef {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> CoreResult<Option<CountedBatch>> {
        let out = self.inner.next_batch()?;
        if let Some(batch) = &out {
            let arity = batch.schema().arity() as u64;
            let rows = batch.total_multiplicity();
            self.counter.rows_out.fetch_add(rows, Ordering::Relaxed);
            self.counter
                .cells_out
                .fetch_add(rows * arity, Ordering::Relaxed);
            self.counter.chunks_out.fetch_add(1, Ordering::Relaxed);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::collect;
    use crate::physical::ops::ScanOp;
    use mera_core::tuple;
    use std::sync::Arc as StdArc;

    #[test]
    fn counters_track_rows_and_chunks() {
        let rel = Relation::from_counted(
            StdArc::new(Schema::anon(&[DataType::Int])),
            vec![(tuple![1_i64], 5), (tuple![2_i64], 1)],
        )
        .unwrap();
        let mut stats = ExecStats::new();
        let c = stats.register("scan(r)");
        let op = Instrumented::new(Box::new(ScanOp::new(&rel, 1024)), c);
        let out = collect(Box::new(op)).unwrap();
        assert_eq!(out.len(), 6);
        let rows = stats.rows_out();
        assert_eq!(rows, vec![("scan(r)".to_owned(), 6)]);
        assert_eq!(stats.total_intermediate(), 6);
        assert_eq!(stats.total_cells(), 6); // arity 1
        assert!(stats.report().contains("scan(r)"));
    }
}
