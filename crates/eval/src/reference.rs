//! The reference evaluator — the executable form of Definitions 3.1–3.4.
//!
//! Each operator is computed directly from its multiplicity law via the
//! counted-bag kernels in `mera-core`. No attempt is made to be fast; this
//! evaluator is the *semantics oracle* the physical engine and every
//! optimizer rewrite are checked against.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::rel::RelExpr;
use mera_expr::Aggregate;

use crate::provider::{RelationProvider, Schemas};

use rustc_hash::FxHashMap;

/// Evaluates an algebra expression to a materialised relation, reading
/// stored relations from `provider`.
///
/// The expression is schema-checked as a whole before any tuple is
/// processed, so evaluation itself can only fail on *value-level* partial
/// operations: division by zero, overflow, and the partial aggregates
/// AVG/MIN/MAX on an empty group (Definition 3.3).
pub fn eval(expr: &RelExpr, provider: &(impl RelationProvider + ?Sized)) -> CoreResult<Relation> {
    // static check first: ill-typed trees never reach the data
    expr.schema(&Schemas(provider))?;
    eval_unchecked(expr, provider)
}

/// Evaluates without the up-front schema check (callers that already
/// validated the tree, e.g. the transaction engine, skip the re-walk).
pub fn eval_unchecked(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
) -> CoreResult<Relation> {
    match expr {
        RelExpr::Scan(name) => Ok(provider.relation(name)?.clone()),
        RelExpr::Values(rel) => Ok(rel.as_ref().clone()),
        RelExpr::Union(l, r) => eval_unchecked(l, provider)?.union(&eval_unchecked(r, provider)?),
        RelExpr::Difference(l, r) => {
            eval_unchecked(l, provider)?.difference(&eval_unchecked(r, provider)?)
        }
        RelExpr::Intersect(l, r) => {
            eval_unchecked(l, provider)?.intersection(&eval_unchecked(r, provider)?)
        }
        RelExpr::Product(l, r) => {
            eval_unchecked(l, provider)?.product(&eval_unchecked(r, provider)?)
        }
        RelExpr::Select { input, predicate } => {
            eval_unchecked(input, provider)?.select(|t| predicate.eval_predicate(t))
        }
        RelExpr::Project { input, attrs } => eval_unchecked(input, provider)?.project(attrs),
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            // Definition 3.2: E₁ ⋈_φ E₂ = σ_φ(E₁ × E₂)
            let prod =
                eval_unchecked(left, provider)?.product(&eval_unchecked(right, provider)?)?;
            prod.select(|t| predicate.eval_predicate(t))
        }
        RelExpr::ExtProject { input, exprs } => {
            let rel = eval_unchecked(input, provider)?;
            let out_schema = expr_schema_for_ext_project(&rel, exprs)?;
            rel.map_tuples(out_schema, |t| {
                let vals: CoreResult<Vec<Value>> = exprs.iter().map(|e| e.eval(t)).collect();
                Ok(Tuple::new(vals?))
            })
        }
        RelExpr::Distinct(input) => Ok(eval_unchecked(input, provider)?.distinct()),
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let rel = eval_unchecked(input, provider)?;
            group_by(&rel, keys, *agg, *attr)
        }
        RelExpr::Closure(input) => {
            let rel = eval_unchecked(input, provider)?;
            transitive_closure(&rel)
        }
    }
}

/// Transitive closure `α(E)` of a binary edge relation (the §5
/// extension): the duplicate-free set of pairs connected by a path of at
/// least one edge, computed by semi-naive fixpoint iteration.
///
/// Closure is inherently *set*-valued — a bag fixpoint diverges on cycles
/// because every lap multiplies multiplicities — so the result carries
/// multiplicity 1 throughout, like `δ`.
pub fn transitive_closure(rel: &Relation) -> CoreResult<Relation> {
    use rustc_hash::FxHashSet;
    if rel.schema().arity() != 2 {
        return Err(CoreError::TypeError(format!(
            "transitive closure needs a binary relation, found arity {}",
            rel.schema().arity()
        )));
    }
    // adjacency over the support
    let mut succ: FxHashMap<&Value, Vec<&Value>> = FxHashMap::default();
    for t in rel.support() {
        succ.entry(t.attr(1)?).or_default().push(t.attr(2)?);
    }
    let mut reached: FxHashSet<(Value, Value)> = FxHashSet::default();
    let mut frontier: Vec<(Value, Value)> = Vec::new();
    for t in rel.support() {
        let pair = (t.attr(1)?.clone(), t.attr(2)?.clone());
        if reached.insert(pair.clone()) {
            frontier.push(pair);
        }
    }
    // semi-naive: extend only the pairs discovered last round
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (x, y) in &frontier {
            if let Some(zs) = succ.get(y) {
                for &z in zs {
                    let pair = (x.clone(), z.clone());
                    if reached.insert(pair.clone()) {
                        next.push(pair);
                    }
                }
            }
        }
        frontier = next;
    }
    let mut out = Relation::empty(Arc::clone(rel.schema()));
    for (x, y) in reached {
        out.insert(Tuple::new(vec![x, y]), 1)?;
    }
    Ok(out)
}

/// Schema of an extended projection's output, re-derived from the input
/// relation (used after the top-level check so sub-results stay typed).
fn expr_schema_for_ext_project(
    rel: &Relation,
    exprs: &[mera_expr::ScalarExpr],
) -> CoreResult<SchemaRef> {
    use mera_expr::ScalarExpr;
    let s = rel.schema();
    let mut attrs = Vec::with_capacity(exprs.len());
    for e in exprs {
        let t = e.infer_type(s)?;
        let name = match e {
            ScalarExpr::Attr(i) => s.attr(*i)?.name.clone(),
            _ => None,
        };
        attrs.push(Attribute { name, dtype: t });
    }
    Ok(Arc::new(Schema::new(attrs)))
}

/// Direct implementation of the group-by construct (Definition 3.4).
///
/// Groups are classes of tuples equal on the key attributes; the aggregate
/// runs over the bag of `x.attr` values *with multiplicities*. An empty key
/// list produces exactly one tuple aggregating the whole input — in that
/// case partial aggregates (AVG/MIN/MAX) over an empty input propagate the
/// error the paper's partiality implies.
pub fn group_by(
    rel: &Relation,
    keys: &[usize],
    agg: Aggregate,
    attr: usize,
) -> CoreResult<Relation> {
    let key_list = if keys.is_empty() {
        None
    } else {
        let list = AttrList::new_unique(keys.to_vec())?;
        list.check_arity(rel.schema().arity())?;
        Some(list)
    };
    let in_type = rel.schema().dtype(attr)?;
    let out_type = agg.result_type(in_type)?;
    let key_schema = match &key_list {
        Some(list) => rel.schema().project(list)?,
        None => Schema::new(vec![]),
    };
    let out_schema = Arc::new(key_schema.with_attr(Attribute::anon(out_type)));

    // partition: key tuple → bag of (aggregated value, multiplicity)
    let mut groups: FxHashMap<Tuple, Vec<(Value, u64)>> = FxHashMap::default();
    for (t, m) in rel.iter() {
        let key = match &key_list {
            Some(list) => t.project(list)?,
            None => Tuple::empty(),
        };
        let v = t.attr(attr)?.clone();
        groups.entry(key).or_default().push((v, m));
    }

    let mut out = Relation::empty(out_schema);
    if key_list.is_none() {
        // whole-relation aggregation always yields exactly one tuple
        let empty = Vec::new();
        let vals = groups.remove(&Tuple::empty()).unwrap_or(empty);
        let v = agg.compute(in_type, vals.iter().map(|(v, m)| (v, *m)))?;
        out.insert(Tuple::new(vec![v]), 1)?;
        return Ok(out);
    }
    for (key, vals) in groups {
        let v = agg.compute(in_type, vals.iter().map(|(v, m)| (v, *m)))?;
        let mut kv = key.into_values();
        kv.push(v);
        out.insert(Tuple::new(kv), 1)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::NoRelations;
    use mera_core::tuple;
    use mera_expr::ScalarExpr;

    /// The paper's beer database, §3 examples.
    pub(crate) fn beer_db() -> Database {
        let schema = DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .unwrap()
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .unwrap();
        let mut db = Database::new(schema);
        let beer_schema = Arc::clone(db.schema().get("beer").unwrap());
        db.replace(
            "beer",
            Relation::from_tuples(
                beer_schema,
                vec![
                    tuple!["Grolsch", "Grolsche", 5.0_f64],
                    tuple!["Heineken", "Heineken", 5.0_f64],
                    tuple!["Amstel", "Heineken", 5.1_f64],
                    tuple!["Guinness", "StJames", 4.2_f64],
                    // two different Dutch brewers brew a beer named "Bock"
                    tuple!["Bock", "Grolsche", 6.5_f64],
                    tuple!["Bock", "Heineken", 6.3_f64],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let brewery_schema = Arc::clone(db.schema().get("brewery").unwrap());
        db.replace(
            "brewery",
            Relation::from_tuples(
                brewery_schema,
                vec![
                    tuple!["Grolsche", "Enschede", "NL"],
                    tuple!["Heineken", "Amsterdam", "NL"],
                    tuple!["StJames", "Dublin", "IE"],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    /// Example 3.1: names of beers brewed in the Netherlands, duplicates
    /// preserved.
    fn dutch_beers() -> RelExpr {
        RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .select(ScalarExpr::attr(6).eq(ScalarExpr::str("NL")))
            .project(&[1])
    }

    #[test]
    fn example_3_1_keeps_duplicates() {
        let db = beer_db();
        let result = eval(&dutch_beers(), &db).unwrap();
        // Bock is brewed by two Dutch brewers → multiplicity 2
        assert_eq!(result.multiplicity(&tuple!["Bock"]), 2);
        assert_eq!(result.multiplicity(&tuple!["Grolsch"]), 1);
        assert_eq!(result.multiplicity(&tuple!["Guinness"]), 0);
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn join_is_selection_over_product() {
        let db = beer_db();
        let join = RelExpr::scan("beer").join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        );
        let desugared = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .select(ScalarExpr::attr(2).eq(ScalarExpr::attr(4)));
        assert_eq!(eval(&join, &db).unwrap(), eval(&desugared, &db).unwrap());
    }

    #[test]
    fn intersect_is_double_difference() {
        let db = beer_db();
        let strong = RelExpr::scan("beer")
            .select(ScalarExpr::attr(3).cmp(mera_expr::CmpOp::Gt, ScalarExpr::real(5.0)));
        let heineken =
            RelExpr::scan("beer").select(ScalarExpr::attr(2).eq(ScalarExpr::str("Heineken")));
        let inter = strong.clone().intersect(heineken.clone());
        let desugar = strong.clone().difference(strong.difference(heineken));
        assert_eq!(eval(&inter, &db).unwrap(), eval(&desugar, &db).unwrap());
    }

    #[test]
    fn example_3_2_avg_per_country() {
        let db = beer_db();
        // gamma[(country), AVG, alcperc] over the join; country is %6,
        // alcperc is %3
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .group_by(&[6], Aggregate::Avg, 3);
        let r = eval(&e, &db).unwrap();
        assert_eq!(r.len(), 2);
        // NL: (5.0 + 5.0 + 5.1 + 6.5 + 6.3) / 5 = 5.58
        let nl_avg = (5.0 + 5.0 + 5.1 + 6.5 + 6.3) / 5.0;
        assert_eq!(r.multiplicity(&tuple!["NL", nl_avg]), 1, "result was: {r}");
        assert_eq!(r.multiplicity(&tuple!["IE", 4.2_f64]), 1);
    }

    #[test]
    fn example_3_2_projection_insertion_is_safe_under_bags() {
        let db = beer_db();
        let join = RelExpr::scan("beer").join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        );
        let direct = join.clone().group_by(&[6], Aggregate::Avg, 3);
        // insert pi(alcperc, country) before grouping: alcperc is now %1,
        // country %2
        let reduced = join.project(&[3, 6]).group_by(&[2], Aggregate::Avg, 1);
        assert_eq!(eval(&direct, &db).unwrap(), eval(&reduced, &db).unwrap());
    }

    #[test]
    fn ext_project_guineken_update_expression() {
        // Example 4.1's attribute expression list: (name, brewery, alcperc*1.1)
        let db = beer_db();
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::attr(2).eq(ScalarExpr::str("Heineken")))
            .ext_project(vec![
                ScalarExpr::attr(1),
                ScalarExpr::attr(2),
                ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)),
            ]);
        let r = eval(&e, &db).unwrap();
        assert_eq!(
            r.multiplicity(&tuple!["Heineken", "Heineken", 5.0 * 1.1]),
            1
        );
        assert_eq!(r.len(), 3);
        // schema is structure-preserving: (str, str, real)
        assert!(r.schema().same_types(db.relation("beer").unwrap().schema()));
    }

    #[test]
    fn distinct_collapses_multiplicities() {
        let db = beer_db();
        let e = dutch_beers().distinct();
        let r = eval(&e, &db).unwrap();
        assert_eq!(r.multiplicity(&tuple!["Bock"]), 1);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn group_by_counts_duplicates() {
        let db = beer_db();
        // CNT of beers per brewery (p = %1 is a dummy for CNT)
        let e = RelExpr::scan("beer").group_by(&[2], Aggregate::Cnt, 1);
        let r = eval(&e, &db).unwrap();
        assert_eq!(r.multiplicity(&tuple!["Heineken", 3_i64]), 1);
        assert_eq!(r.multiplicity(&tuple!["Grolsche", 2_i64]), 1);
        assert_eq!(r.multiplicity(&tuple!["StJames", 1_i64]), 1);
    }

    #[test]
    fn group_by_empty_keys_aggregates_all() {
        let db = beer_db();
        let e = RelExpr::scan("beer").group_by(&[], Aggregate::Max, 3);
        let r = eval(&e, &db).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.multiplicity(&tuple![6.5_f64]), 1);
    }

    #[test]
    fn group_by_empty_input_partial_aggregates_error() {
        let db = beer_db();
        let none = RelExpr::scan("beer").select(ScalarExpr::bool(false));
        // CNT of nothing is 0 — total
        let cnt = none.clone().group_by(&[], Aggregate::Cnt, 1);
        let r = eval(&cnt, &db).unwrap();
        assert_eq!(r.multiplicity(&tuple![0_i64]), 1);
        // SUM of nothing is the typed zero of the domain — total
        let sum = none.clone().group_by(&[], Aggregate::Sum, 3);
        let r = eval(&sum, &db).unwrap();
        assert_eq!(r.multiplicity(&tuple![0.0_f64]), 1);
        // AVG of nothing is undefined — partial
        let avg = none.clone().group_by(&[], Aggregate::Avg, 3);
        assert_eq!(
            eval(&avg, &db).unwrap_err(),
            CoreError::AggregateOnEmpty("AVG")
        );
        // with a non-empty grouping list there are no groups, hence no error
        let avg_by = none.group_by(&[2], Aggregate::Avg, 3);
        assert!(eval(&avg_by, &db).unwrap().is_empty());
    }

    #[test]
    fn sum_of_empty_group_is_typed_zero() {
        // SUM of the empty bag is the zero of the attribute's domain, so
        // the result stays schema-correct for real columns too.
        let schema = Arc::new(Schema::anon(&[DataType::Real]));
        let rel = Relation::empty(schema);
        let r = group_by(&rel, &[], Aggregate::Sum, 1).unwrap();
        assert_eq!(r.multiplicity(&tuple![0.0_f64]), 1);
    }

    #[test]
    fn runtime_errors_surface() {
        let rel = relation_of(Schema::anon(&[DataType::Int]), vec![tuple![0_i64]]).unwrap();
        let e = RelExpr::values(rel).select(
            ScalarExpr::int(1)
                .div(ScalarExpr::attr(1))
                .eq(ScalarExpr::int(1)),
        );
        assert_eq!(
            eval(&e, &NoRelations).unwrap_err(),
            CoreError::DivisionByZero
        );
    }

    #[test]
    fn eval_checks_schema_first() {
        let db = beer_db();
        let bad = RelExpr::scan("beer").union(RelExpr::scan("brewery"));
        assert!(matches!(
            eval(&bad, &db),
            Err(CoreError::SchemaMismatch { .. })
        ));
        let bad = RelExpr::scan("nosuch");
        assert!(matches!(
            eval(&bad, &db),
            Err(CoreError::UnknownRelation(_))
        ));
    }
}
