//! Engine equivalence: the physical Volcano engine, the hash-partitioned
//! parallel kernels, the morsel-driven parallel engine, and the reference
//! evaluator implement the *same* algebra.
//!
//! Random databases (with heavy duplication, the regime bag semantics is
//! about) and random well-typed expression trees are generated; all
//! engines must produce pointwise-equal relations — or fail with the same
//! error (for the parallel engines, whose workers race to report first,
//! with *an* error).

use std::sync::Arc;

use mera_core::prelude::*;
use mera_eval::{eval, execute, Engine};
use mera_expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use proptest::prelude::*;

/// r: (int, str) with multiplicities up to 4.
fn rel_r() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(((0i64..5), (0u8..3), (1u64..5)), 0..8).prop_map(|rows| {
        let schema = Arc::new(Schema::named(&[
            ("a", DataType::Int),
            ("tag", DataType::Str),
        ]));
        let tags = ["x", "y", "z"];
        Relation::from_counted(
            schema,
            rows.into_iter()
                .map(|(a, t, m)| (tuple![a, tags[t as usize]], m)),
        )
        .expect("well-typed by construction")
    })
}

/// s: (int, int).
fn rel_s() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(((0i64..5), (0i64..50), (1u64..4)), 0..6).prop_map(|rows| {
        let schema = Arc::new(Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]));
        Relation::from_counted(schema, rows.into_iter().map(|(k, v, m)| (tuple![k, v], m)))
            .expect("well-typed by construction")
    })
}

/// m: (bool, real, money) — the mixed-type relation that exercises the
/// boxed `Val` column path (the columnar layout unboxes only Int and Str).
/// Multiplicities are either small or enormous (`1 << 40`): two enormous
/// rows meeting in a product overflow `u64` multiplicity arithmetic, so
/// every engine must surface the overflow, and difference/intersection
/// shapes drive merged counts through zero.
fn rel_m() -> impl Strategy<Value = Relation> {
    let mult = (0u64..5).prop_map(|i| if i == 0 { 1u64 << 40 } else { i });
    proptest::collection::vec((any::<bool>(), (0i64..4), (-2i64..3), mult), 0..6).prop_map(|rows| {
        let schema = Arc::new(Schema::named(&[
            ("flag", DataType::Bool),
            ("x", DataType::Real),
            ("amt", DataType::Money),
        ]));
        Relation::from_counted(
            schema,
            rows.into_iter().map(|(b, x, c, m)| {
                let t = Tuple::new(vec![
                    Value::Bool(b),
                    Value::real(x as f64 * 0.5).expect("finite"),
                    Value::Money(Money(c * 25)),
                ]);
                (t, m)
            }),
        )
        .expect("well-typed by construction")
    })
}

/// A database with relations r, s, and the mixed-type m.
fn db_strategy() -> impl Strategy<Value = Database> {
    (rel_r(), rel_s(), rel_m()).prop_map(|(r, s, m)| {
        let schema = DatabaseSchema::new()
            .with(
                "r",
                Schema::named(&[("a", DataType::Int), ("tag", DataType::Str)]),
            )
            .expect("fresh schema")
            .with(
                "s",
                Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
            )
            .expect("fresh schema")
            .with(
                "m",
                Schema::named(&[
                    ("flag", DataType::Bool),
                    ("x", DataType::Real),
                    ("amt", DataType::Money),
                ]),
            )
            .expect("fresh schema");
        let mut db = Database::new(schema);
        db.replace("r", r).expect("schema matches");
        db.replace("s", s).expect("schema matches");
        db.replace("m", m).expect("schema matches");
        db
    })
}

/// Random predicates over r's schema (int attr %1, str attr %2).
fn pred_r() -> impl Strategy<Value = ScalarExpr> {
    prop_oneof![
        (0i64..5).prop_map(|c| ScalarExpr::attr(1).eq(ScalarExpr::int(c))),
        (0i64..5).prop_map(|c| ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::int(c))),
        Just(ScalarExpr::attr(2).eq(ScalarExpr::str("x"))),
        (0i64..5).prop_map(|c| {
            ScalarExpr::attr(1)
                .cmp(CmpOp::Ge, ScalarExpr::int(c))
                .and(ScalarExpr::attr(2).eq(ScalarExpr::str("y")).not())
        }),
        Just(ScalarExpr::bool(true)),
        Just(ScalarExpr::bool(false)),
    ]
}

/// Random well-typed expressions over schema (int, str) — closed under the
/// r-schema so unary operators compose freely.
fn expr_r(depth: u32) -> BoxedStrategy<RelExpr> {
    let leaf = Just(RelExpr::scan("r")).boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = expr_r(depth - 1);
    prop_oneof![
        inner
            .clone()
            .prop_flat_map(|e| { pred_r().prop_map(move |p| e.clone().select(p)) }),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
        inner.clone().prop_map(|e| e.distinct()),
        // schema-preserving extended projection keeps the tree closed
        inner.prop_map(|e| {
            e.ext_project(vec![
                ScalarExpr::attr(1).mul(ScalarExpr::int(2)),
                ScalarExpr::attr(2),
            ])
        }),
        leaf,
    ]
    .boxed()
}

/// Terminal shapes applied on top: projections, joins, group-bys.
fn full_expr() -> impl Strategy<Value = RelExpr> {
    let base = expr_r(3);
    prop_oneof![
        base.clone(),
        base.clone().prop_map(|e| e.project(&[1])),
        base.clone().prop_map(|e| e.project(&[2, 1, 2])),
        base.clone().prop_map(|e| e.join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3))
        )),
        base.clone().prop_map(|e| e.product(RelExpr::scan("s"))),
        base.clone().prop_map(|e| {
            e.join(
                RelExpr::scan("s"),
                ScalarExpr::attr(1).cmp(CmpOp::Le, ScalarExpr::attr(4)),
            )
        }),
        base.clone()
            .prop_map(|e| e.group_by(&[2], Aggregate::Cnt, 1)),
        base.clone()
            .prop_map(|e| e.group_by(&[2], Aggregate::Avg, 1)),
        // string-keyed equi-join feeding a string-keyed group-by: the
        // interned-key probe and group paths must agree with the oracle
        base.clone().prop_map(|e| {
            e.join(
                RelExpr::scan("r"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .group_by(&[2], Aggregate::Min, 3)
        }),
        base.clone()
            .prop_map(|e| e.group_by(&[], Aggregate::Sum, 1)),
        base.prop_map(|e| e.group_by(&[], Aggregate::Max, 1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn physical_engine_agrees_with_reference(db in db_strategy(), e in full_expr()) {
        let expected = eval(&e, &db);
        let actual = execute(&e, &db);
        match (expected, actual) {
            (Ok(want), Ok(got)) => prop_assert_eq!(got, want, "plan: {}", e),
            (Err(we), Err(ge)) => prop_assert_eq!(we, ge, "errors differ for plan: {}", e),
            (want, got) => prop_assert!(
                false,
                "one engine failed for plan {}: reference={:?} physical={:?}",
                e, want, got
            ),
        }
    }

    /// Relation-level metamorphic check: evaluating `E u+ E` doubles every
    /// multiplicity of `E` — across arbitrary generated plans.
    #[test]
    fn self_union_doubles(db in db_strategy(), e in expr_r(2)) {
        if let Ok(single) = eval(&e, &db) {
            let doubled = execute(&e.clone().union(e.clone()), &db).expect("union of valid plans");
            for (t, m) in single.iter() {
                prop_assert_eq!(doubled.multiplicity(t), 2 * m);
            }
            prop_assert_eq!(doubled.len(), 2 * single.len());
        }
    }

    /// Batch-size invariance: the batched engine computes the same
    /// multi-set whether it streams one row at a time, odd mid-size
    /// chunks, or the default 1024-row batches.
    #[test]
    fn batch_size_never_changes_results(db in db_strategy(), e in full_expr()) {
        if let Ok(want) = eval(&e, &db) {
            for batch_size in [1usize, 2, 7, 1024] {
                let got = Engine::physical()
                    .with_batch_size(batch_size)
                    .run(&e, &db)
                    .expect("valid plan evaluates at any batch size");
                prop_assert_eq!(
                    got, want.clone(),
                    "batch_size={} differs on plan: {}", batch_size, e
                );
            }
        }
    }

    /// `E − E` is always empty; `E ∩ E = E`; `δE ⊑ E`.
    #[test]
    fn self_identities(db in db_strategy(), e in expr_r(2)) {
        if eval(&e, &db).is_ok() {
            let minus = execute(&e.clone().difference(e.clone()), &db).expect("valid");
            prop_assert!(minus.is_empty());
            let inter = execute(&e.clone().intersect(e.clone()), &db).expect("valid");
            let orig = eval(&e, &db).expect("checked above");
            prop_assert_eq!(&inter, &orig);
            let dist = execute(&e.clone().distinct(), &db).expect("valid");
            prop_assert!(dist.is_submultiset(&orig).expect("same schema"));
        }
    }
}

/// Plans over the mixed-type relation m: selections on the bool/real
/// columns, products and self-joins that multiply the `1 << 40`
/// multiplicities into overflow, differences that cancel counts to zero,
/// and money aggregates. All of these run through the boxed `Val` columns.
fn expr_m() -> impl Strategy<Value = RelExpr> {
    let m = || RelExpr::scan("m");
    prop_oneof![
        Just(m().select(ScalarExpr::attr(1).eq(ScalarExpr::bool(true)))),
        Just(m().select(ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::real(1.0)))),
        // two 1<<40 rows pairing up overflows u64 multiplicity arithmetic:
        // every engine must report the overflow, not wrap
        Just(m().product(m())),
        Just(m().join(m(), ScalarExpr::attr(1).eq(ScalarExpr::attr(4)))),
        // E − E and E − σE drive merged multiplicities to (or toward) zero
        Just(m().difference(m())),
        Just(m().difference(m().select(ScalarExpr::attr(1).eq(ScalarExpr::bool(false))))),
        Just(m().intersect(m())),
        Just(m().union(m()).distinct()),
        Just(m().group_by(&[1], Aggregate::Cnt, 2)),
        Just(m().group_by(&[1], Aggregate::Sum, 3)),
        Just(m().union(m()).group_by(&[3], Aggregate::Max, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Mixed-type differential test: bool/real/money columns (the boxed
    /// `Val` column representation), zero-multiplicity results from
    /// differences, and `1 << 40` multiplicities whose products overflow —
    /// all four engines agree with the reference, or all fail.
    #[test]
    fn mixed_type_engines_agree(db in db_strategy(), e in expr_m()) {
        let expected = eval(&e, &db);
        for partitions in [1usize, 2, 8] {
            for engine in [Engine::physical(), Engine::parallel(), Engine::morsel()] {
                let kind = engine.kind();
                let got = engine.with_partitions(partitions).run(&e, &db);
                match (&expected, got) {
                    (Ok(want), Ok(got)) => prop_assert_eq!(
                        &got, want,
                        "{:?} differs (partitions={}) on plan: {}",
                        kind, partitions, e
                    ),
                    (Err(_), Err(_)) => {}
                    (want, got) => prop_assert!(
                        false,
                        "{:?} disagrees about failure (partitions={}) on plan {}: reference={:?} engine={:?}",
                        kind, partitions, e, want, got
                    ),
                }
            }
        }
    }

    /// Four-engine differential test: physical, hash-partitioned parallel,
    /// and morsel-driven engines all agree with the reference across
    /// partition counts and batch/morsel sizes — including the plans hash
    /// partitioning cannot decompose (δ, empty-key γ, −, ∩, θ-joins).
    ///
    /// On plans whose evaluation errors (partial aggregates, arithmetic),
    /// every engine must fail too; the parallel engines' workers race, so
    /// only *that* they error is required, not which error wins.
    #[test]
    fn all_engines_agree_across_partitions(db in db_strategy(), e in full_expr()) {
        let expected = eval(&e, &db);
        for partitions in [1usize, 2, 8] {
            for batch_size in [1usize, 7, 1024] {
                for engine in [Engine::physical(), Engine::parallel(), Engine::morsel()] {
                    let kind = engine.kind();
                    let got = engine
                        .with_partitions(partitions)
                        .with_batch_size(batch_size)
                        .run(&e, &db);
                    match (&expected, got) {
                        (Ok(want), Ok(got)) => prop_assert_eq!(
                            &got, want,
                            "{:?} differs (partitions={}, batch={}) on plan: {}",
                            kind, partitions, batch_size, e
                        ),
                        (Err(_), Err(_)) => {}
                        (want, got) => prop_assert!(
                            false,
                            "{:?} disagrees about failure (partitions={}, batch={}) on plan {}: reference={:?} engine={:?}",
                            kind, partitions, batch_size, e, want, got
                        ),
                    }
                }
            }
        }
    }
}
