//! Allocation-regression tests for the hot row loops.
//!
//! The compact-row work (interned strings, `Arc`-shared tuples, resolved
//! key offsets with in-place hashing) is supposed to make the steady-state
//! per-row paths — filter rejection, hash-probe misses, group updates into
//! existing groups — allocation-free: the engine should allocate O(1) per
//! *batch* (the batch vectors themselves), never O(rows).
//!
//! The methodology makes that directly observable: run the same plan at
//! two input sizes chosen so the **number of batches is identical** (rows
//! and batch size scale together). If per-row work allocates, the larger
//! run's allocation count grows ~4×; if only per-batch work allocates, the
//! counts are nearly equal. We assert the large run stays under 2× the
//! small one — loose enough for hash-map resizes and other O(log n) noise,
//! far below the 4× an O(rows) regression would produce.
//!
//! The counter is a process-global [`CountingAlloc`], so the measuring
//! sections are serialised behind a mutex (the test harness runs tests on
//! concurrent threads).

use std::sync::{Mutex, OnceLock};

use mera_core::counting_alloc::{allocations_during, CountingAlloc};
use mera_core::prelude::*;
use mera_core::tuple;
use mera_eval::{execute_with, ExecOptions};
use mera_expr::rel::RelExpr;
use mera_expr::{Aggregate, ScalarExpr};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `r(k, v)` with `rows` rows: `k = i mod 16`, `v = i`.
fn db_with_r(rows: i64) -> Database {
    let schema = DatabaseSchema::new()
        .with("r", Schema::anon(&[DataType::Int, DataType::Int]))
        .expect("fresh")
        .with("s", Schema::anon(&[DataType::Int, DataType::Int]))
        .expect("fresh");
    let mut db = Database::new(schema);
    let rs = Arc::clone(db.schema().get("r").expect("declared"));
    let mut r = Relation::empty(rs);
    for i in 0..rows {
        r.insert(tuple![i % 16, i], 1).expect("typed");
    }
    db.replace("r", r).expect("replace");
    // s's keys are all negative: every probe from r misses
    let ss = Arc::clone(db.schema().get("s").expect("declared"));
    let mut s = Relation::empty(ss);
    for i in 0..64_i64 {
        s.insert(tuple![-(i + 1), i], 1).expect("typed");
    }
    db.replace("s", s).expect("replace");
    db
}

/// Runs `expr` serially at two scales with the same batch *count* and
/// asserts the allocation totals stay flat (per-batch, not per-row, cost).
fn assert_flat_allocations(expr: &RelExpr, what: &str) {
    let _guard = lock();
    const SMALL_ROWS: i64 = 2_048;
    const BIG_ROWS: i64 = 8_192;
    const BATCHES: usize = 8;
    let small_db = db_with_r(SMALL_ROWS);
    let big_db = db_with_r(BIG_ROWS);
    let small_opts = ExecOptions {
        batch_size: SMALL_ROWS as usize / BATCHES,
        partitions: 1,
    };
    let big_opts = ExecOptions {
        batch_size: BIG_ROWS as usize / BATCHES,
        partitions: 1,
    };
    // warm-up: populate lazy statics (empty tuple, interner shards) and
    // fault in code paths so neither measured run pays one-time costs
    execute_with(expr, &small_db, &small_opts).expect("evaluates");
    execute_with(expr, &big_db, &big_opts).expect("evaluates");

    let (small, _) = allocations_during(|| execute_with(expr, &small_db, &small_opts));
    let (big, _) = allocations_during(|| execute_with(expr, &big_db, &big_opts));
    assert!(small > 0, "{what}: counting allocator not engaged");
    assert!(
        big < small * 2,
        "{what}: allocations scale with rows, not batches \
         ({SMALL_ROWS} rows -> {small} allocs, {BIG_ROWS} rows -> {big} allocs)"
    );
}

#[test]
fn filter_rejection_is_allocation_free_per_row() {
    // σ rejects every row: the only allocations are the batch vectors
    let e = RelExpr::scan("r")
        .select(ScalarExpr::attr(2).cmp(mera_expr::CmpOp::Lt, ScalarExpr::int(-1)));
    assert_flat_allocations(&e, "filter reject-all");
}

#[test]
fn probe_misses_are_allocation_free_per_row() {
    // every r key misses the build side: probing hashes key columns in
    // place and produces no output rows
    let e = RelExpr::scan("r").join(
        RelExpr::scan("s"),
        ScalarExpr::attr(2).eq(ScalarExpr::attr(3)),
    );
    assert_flat_allocations(&e, "hash-probe all-miss");
}

#[test]
fn filter_project_probe_steady_state_allocates_per_batch() {
    // the survivor count is fixed (v < 64 keeps 64 rows at every input
    // size), so projection and probe output stay constant while the
    // filtered row volume scales
    let e = RelExpr::scan("r")
        .select(ScalarExpr::attr(2).cmp(mera_expr::CmpOp::Lt, ScalarExpr::int(64)))
        .project(&[2, 1])
        .join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
    assert_flat_allocations(&e, "filter -> project -> probe");
}

#[test]
fn columnar_project_then_reject_all_allocates_per_batch() {
    // a bare-column projection reorders whole columns (per-batch gathers,
    // no per-row tuple assembly); the reject-all filter after it proves the
    // projected batches flow through the vectorized mask without
    // materialising rows
    let e = RelExpr::scan("r")
        .project(&[2, 1])
        .select(ScalarExpr::attr(1).cmp(mera_expr::CmpOp::Lt, ScalarExpr::int(-1)));
    assert_flat_allocations(&e, "columnar project -> filter reject-all");
}

#[test]
fn columnar_int_arithmetic_allocates_per_batch() {
    // κ with Int arithmetic runs element-wise over the unboxed i64 column
    // (one output vector per batch); the reject-all filter keeps the
    // pipeline's output empty so only the per-batch vectors remain
    let e = RelExpr::scan("r")
        .ext_project(vec![
            ScalarExpr::attr(1),
            ScalarExpr::attr(2)
                .mul(ScalarExpr::int(3))
                .add(ScalarExpr::attr(1)),
        ])
        .select(ScalarExpr::attr(2).cmp(mera_expr::CmpOp::Lt, ScalarExpr::int(-1)));
    assert_flat_allocations(&e, "columnar int arithmetic -> filter reject-all");
}

#[test]
fn group_updates_into_existing_groups_do_not_allocate() {
    // 16 groups at every scale; the group count (and each group's distinct
    // value set) is fixed, so updates after warm-up hit existing entries
    let e = RelExpr::scan("r").group_by(&[1], Aggregate::Cnt, 1);
    assert_flat_allocations(&e, "group-by fixed groups");
}
