//! Join-order report: cost-based planning on maintained statistics (plus
//! hinted index access paths) versus the rule-only optimizer, over star
//! and chain join workloads whose *written* order is deliberately bad.
//!
//! Two query shapes:
//!
//! * `chain3` — `(R ⋈ S) ⋈ T` where `R ⋈ S` is a many-to-many blowup and
//!   `S ⋈ T` is highly selective; the statistics license rotating the
//!   selective join first (Theorem 3.3).
//! * `star4` — a fact table joined to three dimensions with the
//!   needle-in-a-haystack dimension restriction written *last*; the cost
//!   model pulls it first, shrinking every downstream intermediate, and
//!   hints index-nested-loop probes into the indexed fact keys where the
//!   probe side is small.
//! * `buildside` — a single restricted-dimension-to-fact join written
//!   with the fact table on the hash-build side; the asymmetric hash cost
//!   (`HASH_BUILD_FACTOR` per build row vs 1 per probe row) licenses
//!   commuting the join so the one-row dimension is built instead.
//!
//! Each query runs through both plans on the serial physical engine (the
//! cost-based plan additionally gets the maintained secondary indexes and
//! the cost model's join hints — exactly what the transaction layer hands
//! the engine at query time). Both results are asserted equal before any
//! timing is reported, so the sweep is also an end-to-end soundness check
//! of reordering + access-path selection.
//!
//! JSON is hand-rendered (the vendored serde crates are empty shells).
//!
//! Usage: `cargo run --release -p mera-bench --bin join_order
//! [output.json]` — default output `BENCH_pr8.json`. Pass `--smoke` for a
//! seconds-long CI variant that checks plan equivalence (rule-only ≡
//! cost-based ≡ cost-based+indexes) on a small instance and exits nonzero
//! on any divergence.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mera_bench::rng;
use mera_core::prelude::*;
use mera_eval::{Engine, IndexSet};
use mera_expr::{RelExpr, ScalarExpr};
use mera_opt::{choose_access_paths, estimate_rows, CatalogStats, Optimizer};
use rand::rngs::StdRng;
use rand::Rng;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("b", DataType::Int), ("payload", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("b", DataType::Int), ("c", DataType::Int)]),
        )
        .expect("fresh")
        .with("t", Schema::named(&[("c", DataType::Int)]))
        .expect("fresh")
        .with(
            "fact",
            Schema::named(&[
                ("ka", DataType::Int),
                ("kb", DataType::Int),
                ("kc", DataType::Int),
                ("amount", DataType::Int),
            ]),
        )
        .expect("fresh")
        .with(
            "dim_a",
            Schema::named(&[("id", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh")
        .with(
            "dim_b",
            Schema::named(&[("id", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh")
        .with(
            "dim_c",
            Schema::named(&[("id", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh")
}

struct Sizes {
    r: usize,
    s: usize,
    t: usize,
    fact: usize,
    dims: usize,
}

fn fill<F: FnMut(&mut StdRng) -> Tuple>(
    db: &mut Database,
    name: &str,
    n: usize,
    r: &mut StdRng,
    mut row: F,
) {
    let schema = Arc::clone(db.relation(name).expect("declared").schema());
    let mut rel = Relation::empty(schema);
    for _ in 0..n {
        rel.insert(row(r), 1).expect("well-typed");
    }
    db.replace(name, rel).expect("schema matches");
}

fn load(sizes: &Sizes, seed: u64) -> Database {
    let mut r = rng(seed);
    let mut db = Database::new(schema());
    // r ⋈ s on b is many-to-many: 10 distinct keys on both sides
    fill(&mut db, "r", sizes.r, &mut r, |r| {
        tuple![r.gen_range(0..10_i64), r.gen_range(0..1_000_i64)]
    });
    // s.c is near-unique, so s ⋈ t keeps only a handful of rows
    fill(&mut db, "s", sizes.s, &mut r, |r| {
        tuple![r.gen_range(0..10_i64), r.gen_range(0..100_000_i64)]
    });
    fill(&mut db, "t", sizes.t, &mut r, |r| {
        tuple![r.gen_range(0..100_000_i64)]
    });
    fill(&mut db, "fact", sizes.fact, &mut r, |r| {
        tuple![
            r.gen_range(0..sizes.dims as i64),
            r.gen_range(0..sizes.dims as i64),
            r.gen_range(0..sizes.dims as i64),
            r.gen_range(0..1_000_i64)
        ]
    });
    for dim in ["dim_a", "dim_b", "dim_c"] {
        let schema = Arc::clone(db.relation(dim).expect("declared").schema());
        let mut rel = Relation::empty(schema);
        for id in 0..sizes.dims {
            rel.insert(tuple![id as i64, format!("t{id}")], 1)
                .expect("well-typed");
        }
        db.replace(dim, rel).expect("schema matches");
    }
    db
}

/// `(r ⋈ s) ⋈ t` with the blowup join written first.
fn chain3() -> RelExpr {
    RelExpr::scan("r")
        .join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
        .join(
            RelExpr::scan("t"),
            ScalarExpr::attr(4).eq(ScalarExpr::attr(5)),
        )
}

/// `((fact ⋈ dim_a) ⋈ dim_b) ⋈ σ[tag='t7'](dim_c)` — the needle
/// restriction written last.
fn star4() -> RelExpr {
    RelExpr::scan("fact")
        .join(
            RelExpr::scan("dim_a"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(5)),
        )
        .join(
            RelExpr::scan("dim_b"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(7)),
        )
        .join(
            RelExpr::scan("dim_c").select(ScalarExpr::attr(2).eq(ScalarExpr::str("t7"))),
            ScalarExpr::attr(3).eq(ScalarExpr::attr(9)),
        )
}

/// `σ[tag='t7'](dim_a) ⋈ fact` written with the 100k-row fact table on
/// the hash-build side — a single join where the only planning decision
/// is *which operand to build the hash table from*. The cost model
/// weighs the build input at [`mera_opt::HASH_BUILD_FACTOR`]× the probe
/// input, so it commutes the join and builds from the one-row restricted
/// dimension instead of the fact table.
fn buildside() -> RelExpr {
    RelExpr::scan("dim_a")
        .select(ScalarExpr::attr(2).eq(ScalarExpr::str("t7")))
        .join(
            RelExpr::scan("fact"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
}

/// Secondary indexes the transaction layer would maintain: every
/// dimension key plus the fact table's foreign keys, individually and
/// pairwise — the star schema's natural index complement, and the access
/// paths a merged two-dimension join into the fact table can probe.
fn build_indexes(db: &Database) -> IndexSet {
    let mut ix = IndexSet::new();
    for (rel, keys) in [
        ("fact", vec![1]),
        ("fact", vec![2]),
        ("fact", vec![3]),
        ("fact", vec![1, 2]),
        ("fact", vec![1, 3]),
        ("fact", vec![2, 3]),
        ("dim_a", vec![1]),
        ("dim_b", vec![1]),
        ("dim_c", vec![1]),
        ("s", vec![1]),
        ("t", vec![1]),
    ] {
        ix.create(db, rel, &keys).expect("index");
    }
    ix
}

struct Report {
    query: &'static str,
    joins: usize,
    written_order: String,
    chosen_order: String,
    est_rows: u64,
    actual_rows: u64,
    rule_ns: u128,
    cost_ns: u128,
    speedup: f64,
    index_joins_hinted: usize,
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn count_joins(e: &RelExpr) -> usize {
    let here = matches!(e, RelExpr::Join { .. }) as usize;
    here + e.children().iter().map(|c| count_joins(c)).sum::<usize>()
}

fn measure(query: &'static str, expr: &RelExpr, db: &Database, iters: usize) -> Report {
    let stats = Arc::new(CatalogStats::from_database(db).expect("analyze"));
    let rule_plan = Optimizer::standard()
        .optimize(expr, db.schema())
        .expect("rule-only optimize")
        .expr;
    let cost_plan = Optimizer::standard()
        .with_stats(Arc::clone(&stats))
        .optimize(expr, db.schema())
        .expect("cost-based optimize")
        .expr;
    let indexes = build_indexes(db);
    let hints = choose_access_paths(&cost_plan, &stats, &indexes.definitions(), db.schema())
        .expect("hints");
    let hinted = hints.len();

    let rule_engine = Engine::physical();
    let cost_engine = Engine::physical()
        .with_indexes(indexes)
        .with_index_hints(hints);

    let want = rule_engine.run(&rule_plan, db).expect("rule plan runs");
    let got = cost_engine.run(&cost_plan, db).expect("cost plan runs");
    assert_eq!(
        got, want,
        "{query}: cost-based plan diverged from rule-only plan"
    );

    let mut rule_times = Vec::with_capacity(iters);
    let mut cost_times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let out = rule_engine.run(&rule_plan, db).expect("rule plan runs");
        rule_times.push(start.elapsed());
        assert_eq!(out.len(), want.len());
        let start = Instant::now();
        let out = cost_engine.run(&cost_plan, db).expect("cost plan runs");
        cost_times.push(start.elapsed());
        assert_eq!(out.len(), want.len());
    }
    let rule = median(rule_times);
    let cost = median(cost_times);
    Report {
        query,
        joins: count_joins(expr),
        written_order: format!("{rule_plan}"),
        chosen_order: format!("{cost_plan}"),
        est_rows: estimate_rows(&cost_plan, &stats).round() as u64,
        actual_rows: want.len(),
        rule_ns: rule.as_nanos(),
        cost_ns: cost.as_nanos(),
        speedup: rule.as_secs_f64() / cost.as_secs_f64().max(f64::EPSILON),
        index_joins_hinted: hinted,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(sizes: &Sizes, iters: usize, reports: &[Report]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"join_order\",");
    let _ = writeln!(
        j,
        "  \"rows\": {{\"r\": {}, \"s\": {}, \"t\": {}, \"fact\": {}, \"dims\": {}}},",
        sizes.r, sizes.s, sizes.t, sizes.fact, sizes.dims
    );
    let _ = writeln!(j, "  \"iters_per_point\": {iters},");
    let _ = writeln!(
        j,
        "  \"note\": \"rule_ns: the written plan after the rule-only optimizer (no \
         statistics, hash joins only); cost_ns: the same query planned against maintained \
         statistics (cost-based join order) and executed with secondary indexes plus the \
         cost model's index-nested-loop hints; both plans asserted to produce the same \
         multi-set before timing; speedup = rule_ns / cost_ns, medians over \
         iters_per_point runs; regenerate with \
         `cargo run --release -p mera-bench --bin join_order`\","
    );
    j.push_str("  \"queries\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"query\": \"{}\", \"joins\": {}, \"written_order\": \"{}\", \
             \"chosen_order\": \"{}\", \"est_rows\": {}, \"actual_rows\": {}, \
             \"rule_ns\": {}, \"cost_ns\": {}, \"speedup\": {:.2}, \
             \"index_joins_hinted\": {}}}",
            r.query,
            r.joins,
            json_escape(&r.written_order),
            json_escape(&r.chosen_order),
            r.est_rows,
            r.actual_rows,
            r.rule_ns,
            r.cost_ns,
            r.speedup,
            r.index_joins_hinted
        );
        j.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Smoke mode: a small instance, every plan variant must agree.
fn smoke() -> Result<(), String> {
    let sizes = Sizes {
        r: 2_000,
        s: 1_000,
        t: 200,
        fact: 4_000,
        dims: 20,
    };
    let db = load(&sizes, 17);
    let stats = Arc::new(CatalogStats::from_database(&db).map_err(|e| format!("analyze: {e}"))?);
    // the smoke instance's dim_c has 20 tags, so the needle predicate
    // still matches exactly one dimension row
    for (name, expr) in [
        ("chain3", chain3()),
        ("star4", star4()),
        ("buildside", buildside()),
    ] {
        let canonical =
            mera_eval::eval(&expr, &db).map_err(|e| format!("{name} canonical: {e}"))?;
        let rule_plan = Optimizer::standard()
            .optimize(&expr, db.schema())
            .map_err(|e| format!("{name} rule optimize: {e}"))?
            .expr;
        let cost_plan = Optimizer::standard()
            .with_stats(Arc::clone(&stats))
            .optimize(&expr, db.schema())
            .map_err(|e| format!("{name} cost optimize: {e}"))?
            .expr;
        let indexes = build_indexes(&db);
        let hints = choose_access_paths(&cost_plan, &stats, &indexes.definitions(), db.schema())
            .map_err(|e| format!("{name} hints: {e}"))?;
        let variants: [(&str, &RelExpr, Engine); 3] = [
            ("rule-only", &rule_plan, Engine::physical()),
            ("cost-based", &cost_plan, Engine::physical()),
            (
                "cost-based+indexes",
                &cost_plan,
                Engine::physical()
                    .with_indexes(indexes)
                    .with_index_hints(hints),
            ),
        ];
        for (label, plan, engine) in variants {
            let got = engine
                .run(plan, &db)
                .map_err(|e| format!("{name} {label}: {e}"))?;
            if got != canonical {
                return Err(format!("{name}: plan `{label}` diverged from canonical"));
            }
        }
        println!(
            "smoke: {name} ok ({} rows, all plans agree)",
            canonical.len()
        );
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr8.json".to_owned());

    if smoke_mode {
        if let Err(msg) = smoke() {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
        println!("smoke: cost-based plans equal rule-only plans on every workload");
        return;
    }

    let sizes = Sizes {
        r: 20_000,
        s: 10_000,
        t: 2_000,
        fact: 100_000,
        dims: 100,
    };
    let iters = 7;
    let db = load(&sizes, 1);

    let reports = vec![
        measure("chain3", &chain3(), &db, iters),
        measure("star4", &star4(), &db, iters),
        measure("buildside", &buildside(), &db, iters),
    ];

    let json = render_json(&sizes, iters, &reports);
    std::fs::write(&out_path, json).expect("writable output path");
    println!("wrote {out_path}");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>12} {:>12} {:>9} {:>7}",
        "query", "joins", "est", "actual", "rule", "cost", "speedup", "hinted"
    );
    for r in &reports {
        println!(
            "{:>8} {:>6} {:>10} {:>10} {:>12.2?} {:>12.2?} {:>8.1}x {:>7}",
            r.query,
            r.joins,
            r.est_rows,
            r.actual_rows,
            Duration::from_nanos(r.rule_ns as u64),
            Duration::from_nanos(r.cost_ns as u64),
            r.speedup,
            r.index_joins_hinted
        );
    }
    // the PR's acceptance bounds: at three or more joins the cost-based
    // plan must be at least 2× the rule-only plan on this workload, and
    // its output-cardinality estimate must land within 2× of the actual
    for r in &reports {
        if r.joins >= 3 {
            assert!(
                r.speedup >= 2.0,
                "{}: speedup {:.2}x below the 2x acceptance bound",
                r.query,
                r.speedup
            );
            let (est, actual) = (r.est_rows as f64, r.actual_rows.max(1) as f64);
            assert!(
                est <= 2.0 * actual && actual <= 2.0 * est,
                "{}: estimate {} outside 2x of actual {}",
                r.query,
                r.est_rows,
                r.actual_rows
            );
        }
    }
}
