//! Materialized-view refresh report: incremental signed-delta
//! maintenance vs. from-scratch recomputation, swept across churn rates.
//!
//! The workload is the view subsystem's target shape — a join + group-by
//! over two base relations:
//!
//! ```text
//! region_totals = γ[(region), SUM, amount](orders ⋈[cust = id] customers)
//! ```
//!
//! Each measured point applies a steady-state churn transaction (delete
//! `churn/2` live rows, insert `churn/2` fresh ones) to the base data and
//! times (a) `refresh` — pushing the commit's signed delta through the
//! view's maintenance plan via [`ViewSet::refresh_after_commit`], the
//! exact work the commit pipeline adds per view — against (b)
//! `recompute` — a full re-evaluation of the definition over the
//! post-commit database, which is what a viewless system pays to answer
//! the same query. The base-table update itself (`base_apply_ns`) is
//! reported alongside for scale. After every commit the refreshed view is
//! asserted equal to the recomputation, so the sweep is also a
//! correctness check.
//!
//! JSON is hand-rendered (the vendored serde crates are empty shells) and
//! includes the worker count and `available_parallelism()` so numbers
//! from different machines are comparable.
//!
//! Usage: `cargo run --release -p mera-bench --bin view_refresh
//! [output.json]` — default output `BENCH_pr7.json`. Pass `--smoke` for a
//! seconds-long CI variant that churns a small database through real
//! [`TransactionManager`] commits and exits nonzero unless the maintained
//! view equals a reference recomputation after every commit.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mera_bench::rng;
use mera_core::counting_alloc::{allocations_during, CountingAlloc};
use mera_core::prelude::*;
use mera_eval::Engine;
use mera_expr::{Aggregate, RelExpr, ScalarExpr};
use mera_txn::{DeltaMap, ExecConfig, Program, Statement, TransactionManager, TupleDelta, ViewSet};
use rand::rngs::StdRng;
use rand::Rng;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const REGIONS: usize = 64;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "orders",
            Schema::named(&[("cust", DataType::Int), ("amount", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "customers",
            Schema::named(&[("id", DataType::Int), ("region", DataType::Str)]),
        )
        .expect("fresh")
}

/// The benchmark view: per-region revenue.
fn view_expr() -> RelExpr {
    RelExpr::scan("orders")
        .join(
            RelExpr::scan("customers"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
        .group_by(&[4], Aggregate::Sum, 2)
}

fn relation_of(schema: &Arc<Schema>, rows: &[(i64, i64)]) -> Relation {
    let mut rel = Relation::empty(Arc::clone(schema));
    for &(a, b) in rows {
        rel.insert(tuple![a, b], 1).expect("well-typed");
    }
    rel
}

fn customers_relation(schema: &Arc<Schema>, n: usize) -> Relation {
    let mut rel = Relation::empty(Arc::clone(schema));
    for id in 0..n {
        rel.insert(tuple![id as i64, format!("r{}", id % REGIONS)], 1)
            .expect("well-typed");
    }
    rel
}

fn random_order(r: &mut StdRng, customers: usize) -> (i64, i64) {
    (r.gen_range(0..customers as i64), r.gen_range(0..1_000))
}

/// A loaded database plus the live list of physical order rows (the
/// churn generator deletes rows that are actually present).
fn load(orders: usize, customers: usize, seed: u64) -> (Database, Vec<(i64, i64)>) {
    let mut r = rng(seed);
    let live: Vec<(i64, i64)> = (0..orders)
        .map(|_| random_order(&mut r, customers))
        .collect();
    let mut db = Database::new(schema());
    let orders_schema = Arc::clone(db.relation("orders").expect("declared").schema());
    let customers_schema = Arc::clone(db.relation("customers").expect("declared").schema());
    db.replace("orders", relation_of(&orders_schema, &live))
        .expect("schema matches");
    db.replace(
        "customers",
        customers_relation(&customers_schema, customers),
    )
    .expect("schema matches");
    (db, live)
}

/// Physical order rows, one entry per tuple instance.
type Rows = Vec<(i64, i64)>;

/// One steady-state churn step: picks `churn/2` live rows to delete and
/// draws `churn/2` fresh rows to insert, updating `live` to match.
fn churn_rows(live: &mut Rows, churn: usize, customers: usize, r: &mut StdRng) -> (Rows, Rows) {
    let half = (churn / 2).max(1);
    let mut deleted = Vec::with_capacity(half);
    for _ in 0..half.min(live.len()) {
        deleted.push(live.swap_remove(r.gen_range(0..live.len())));
    }
    let inserted: Vec<(i64, i64)> = (0..half).map(|_| random_order(r, customers)).collect();
    live.extend_from_slice(&inserted);
    (deleted, inserted)
}

/// The commit's signed delta on `orders`.
fn orders_delta(deleted: &[(i64, i64)], inserted: &[(i64, i64)]) -> DeltaMap {
    let mut d = TupleDelta::new();
    for &(a, b) in deleted {
        d.insert(tuple![a, b], -1).expect("small counts");
    }
    for &(a, b) in inserted {
        d.insert(tuple![a, b], 1).expect("small counts");
    }
    let mut map = DeltaMap::new();
    map.insert("orders".to_owned(), d);
    map
}

struct Point {
    churn_fraction: f64,
    churn_rows: usize,
    refresh_ns: u128,
    base_apply_ns: u128,
    recompute_ns: u128,
    speedup: f64,
    refresh_allocs: u64,
    recompute_allocs: u64,
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Measures one churn level over `commits` steady-state churn
/// transactions, checking refresh == recompute after every one.
fn measure(orders: usize, customers: usize, churn_fraction: f64, commits: usize) -> Point {
    let churn = ((orders as f64 * churn_fraction) as usize).max(2);
    let config = ExecConfig::default();
    let expr = view_expr();
    let (mut db, mut live) = load(orders, customers, 1);
    let mut views = ViewSet::new();
    views
        .create("region_totals", expr.clone(), &db, config)
        .expect("view accepted");

    let mut refresh_times = Vec::with_capacity(commits);
    let mut base_times = Vec::with_capacity(commits);
    let mut recompute_times = Vec::with_capacity(commits);
    let mut refresh_allocs = 0u64;
    let mut recompute_allocs = 0u64;
    let engine = Engine::physical();
    let mut r = rng(7);
    for i in 0..commits {
        let (deleted, inserted) = churn_rows(&mut live, churn, customers, &mut r);
        let deltas = orders_delta(&deleted, &inserted);

        // the base-table write the commit performs anyway
        let start = Instant::now();
        let mut rel = db.relation("orders").expect("declared").clone();
        for (t, m) in deltas["orders"].iter() {
            if m > 0 {
                rel.insert(t.clone(), m as u64).expect("well-typed");
            } else {
                rel.remove(t, m.unsigned_abs());
            }
        }
        db.replace("orders", rel).expect("schema matches");
        base_times.push(start.elapsed());

        // incremental refresh: the view subsystem's per-commit work
        let start = Instant::now();
        let (allocs, _) = allocations_during(|| {
            views
                .refresh_after_commit(deltas.clone(), &db, config)
                .expect("refresh succeeds")
        });
        refresh_times.push(start.elapsed());
        if i == 0 {
            refresh_allocs = allocs;
        }

        // what a viewless system pays for the same answer
        let start = Instant::now();
        let (allocs, fresh) = allocations_during(|| engine.run(&expr, &db).expect("recompute"));
        recompute_times.push(start.elapsed());
        if i == 0 {
            recompute_allocs = allocs;
        }
        assert_eq!(
            views
                .get("region_totals")
                .expect("view exists")
                .data()
                .as_ref(),
            &fresh,
            "refresh diverged from recompute at churn {churn_fraction}"
        );
    }
    let (_, fallbacks) = views
        .get("region_totals")
        .expect("view exists")
        .refresh_stats();
    assert_eq!(
        fallbacks, 0,
        "join+group-by view must maintain incrementally"
    );

    let refresh = median(refresh_times);
    let recompute = median(recompute_times);
    Point {
        churn_fraction,
        churn_rows: churn,
        refresh_ns: refresh.as_nanos(),
        base_apply_ns: median(base_times).as_nanos(),
        recompute_ns: recompute.as_nanos(),
        speedup: recompute.as_secs_f64() / refresh.as_secs_f64().max(f64::EPSILON),
        refresh_allocs,
        recompute_allocs,
    }
}

fn render_json(
    orders: usize,
    customers: usize,
    commits: usize,
    workers: usize,
    available: usize,
    points: &[Point],
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"view_refresh\",");
    let _ = writeln!(j, "  \"orders_rows\": {orders},");
    let _ = writeln!(j, "  \"customers_rows\": {customers},");
    let _ = writeln!(j, "  \"regions\": {REGIONS},");
    let _ = writeln!(j, "  \"commits_per_point\": {commits},");
    let _ = writeln!(j, "  \"workers\": {workers},");
    let _ = writeln!(j, "  \"available_parallelism\": {available},");
    let _ = writeln!(
        j,
        "  \"view\": \"groupby[(%4), SUM, %2](join[(%1 = %3)](orders, customers))\","
    );
    let _ = writeln!(
        j,
        "  \"note\": \"per point: median over commits_per_point steady-state churn \
         transactions; refresh_ns pushes the commit's signed delta through the view's \
         maintenance plan (ViewSet::refresh_after_commit), base_apply_ns is the base-table \
         write itself, recompute_ns a full re-evaluation of the definition over the \
         post-commit database; speedup = recompute_ns / refresh_ns; every commit asserts \
         refresh == recompute; regenerate with \
         `cargo run --release -p mera-bench --bin view_refresh`\","
    );
    j.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"churn_fraction\": {}, \"churn_rows\": {}, \"refresh_ns\": {}, \
             \"base_apply_ns\": {}, \"recompute_ns\": {}, \"speedup\": {:.2}, \
             \"refresh_allocs\": {}, \"recompute_allocs\": {}}}",
            p.churn_fraction,
            p.churn_rows,
            p.refresh_ns,
            p.base_apply_ns,
            p.recompute_ns,
            p.speedup,
            p.refresh_allocs,
            p.recompute_allocs
        );
        j.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Smoke mode: a small database churned through real transaction-manager
/// commits, with a hard equality check of the maintained view against the
/// reference evaluator after every commit (the measured path checks
/// against the physical engine; this one closes the loop down to the
/// paper's definitions).
fn smoke() -> Result<(), String> {
    let (db, mut live) = load(2_000, 200, 42);
    let expr = view_expr();
    let mgr = TransactionManager::with_config(db.schema().clone(), ExecConfig::default());
    let orders_schema = Arc::clone(db.relation("orders").expect("declared").schema());
    let load_program = Program::new()
        .then(Statement::insert(
            "customers",
            RelExpr::values(db.relation("customers").expect("declared").clone()),
        ))
        .then(Statement::insert(
            "orders",
            RelExpr::values(db.relation("orders").expect("declared").clone()),
        ));
    mgr.execute(&load_program)
        .map_err(|e| format!("load: {e}"))?;
    mgr.create_view("region_totals", expr.clone())
        .map_err(|e| format!("view rejected: {e}"))?;
    let mut r = rng(43);
    for i in 0..4 {
        let (deleted, inserted) = churn_rows(&mut live, 20, 200, &mut r);
        let p = Program::new()
            .then(Statement::delete(
                "orders",
                RelExpr::values(relation_of(&orders_schema, &deleted)),
            ))
            .then(Statement::insert(
                "orders",
                RelExpr::values(relation_of(&orders_schema, &inserted)),
            ));
        mgr.execute(&p).map_err(|e| format!("commit {i}: {e}"))?;
        let fresh =
            mera_eval::eval(&expr, &mgr.snapshot()).map_err(|e| format!("recompute {i}: {e}"))?;
        let view = mgr
            .view("region_totals")
            .map_err(|e| format!("view read {i}: {e}"))?;
        if view != fresh {
            return Err(format!("commit {i}: refresh diverged from recompute"));
        }
        println!("smoke: commit {i} ok ({} groups)", view.len());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr7.json".to_owned());

    if smoke_mode {
        if let Err(msg) = smoke() {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
        println!("smoke: incremental refresh equals recompute on every commit");
        return;
    }

    let orders = 100_000usize;
    let customers = 5_000usize;
    let commits = 5usize;
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // the commit pipeline executes view deltas on the serial columnar
    // engine — one worker; the metadata records both so runs on wider
    // machines stay comparable
    let workers = 1usize;

    let points: Vec<Point> = [0.001, 0.005, 0.01, 0.05]
        .iter()
        .map(|&churn| measure(orders, customers, churn, commits))
        .collect();

    let json = render_json(orders, customers, commits, workers, available, &points);
    std::fs::write(&out_path, json).expect("writable output path");
    println!("wrote {out_path}");
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>9}",
        "churn", "rows", "refresh", "base_apply", "recompute", "speedup"
    );
    for p in &points {
        println!(
            "{:>7.1}% {:>8} {:>14.2?} {:>14.2?} {:>14.2?} {:>8.1}x",
            p.churn_fraction * 100.0,
            p.churn_rows,
            Duration::from_nanos(p.refresh_ns as u64),
            Duration::from_nanos(p.base_apply_ns as u64),
            Duration::from_nanos(p.recompute_ns as u64),
            p.speedup
        );
    }
}
