//! Durability report: commit throughput under the three WAL fsync
//! policies, and recovery cost — full-log replay versus snapshot restore
//! — on real files. Writes the results as JSON (hand-rendered — the
//! vendored serde crates are empty shells).
//!
//! Usage: `cargo run --release -p mera-bench --bin durability
//! [output.json]` — the default output path is `BENCH_pr5.json`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mera_core::prelude::*;
use mera_expr::RelExpr;
use mera_store::{DirStorage, DurableDb, FsyncPolicy, MemStorage, StoreOptions, WAL_FILE};
use mera_txn::{Program, Statement};

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "accounts",
            Schema::named(&[("owner", DataType::Str), ("balance", DataType::Int)]),
        )
        .expect("fresh schema")
}

/// One single-row insert transaction (the classic OLTP commit shape).
fn insert_txn(rel_schema: &SchemaRef, i: i64) -> Program {
    let rel = Relation::from_tuples(
        Arc::clone(rel_schema),
        vec![Tuple::new(vec![
            Value::str(format!("acct-{i}")),
            Value::Int(i),
        ])],
    )
    .expect("well-typed row");
    Program::single(Statement::insert(
        "accounts",
        RelExpr::Values(Arc::new(rel)),
    ))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("mera-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct ThroughputPoint {
    policy: &'static str,
    commits: usize,
    total: Duration,
    wal_bytes: u64,
}

impl ThroughputPoint {
    fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.total.as_secs_f64().max(f64::EPSILON)
    }
}

/// Commits `commits` single-row transactions under `policy` on real files.
fn throughput(policy: FsyncPolicy, label: &'static str, commits: usize) -> ThroughputPoint {
    let dir = TempDir::new(label);
    let storage = DirStorage::open(&dir.0).expect("open dir");
    let options = StoreOptions {
        fsync: policy,
        ..StoreOptions::default()
    };
    let mut db = DurableDb::open(storage, schema(), options).expect("open");
    let rel_schema = Arc::clone(
        db.database()
            .relation("accounts")
            .expect("declared")
            .schema(),
    );

    let start = Instant::now();
    for i in 0..commits {
        let p = insert_txn(&rel_schema, i as i64);
        db.execute(&p).expect("commits");
    }
    let total = start.elapsed();
    let wal_bytes = std::fs::metadata(dir.0.join(WAL_FILE))
        .expect("wal exists")
        .len();
    ThroughputPoint {
        policy: label,
        commits,
        total,
        wal_bytes,
    }
}

struct RecoveryPoint {
    mode: &'static str,
    history: usize,
    open_time: Duration,
}

/// Builds a `history`-commit database in memory and times recovery from
/// (a) the raw WAL and (b) a checkpoint snapshot of the same state.
fn recovery(history: usize) -> (RecoveryPoint, RecoveryPoint) {
    let storage = MemStorage::new();
    let mut db = DurableDb::open(storage.clone(), schema(), StoreOptions::default()).expect("open");
    let rel_schema = Arc::clone(
        db.database()
            .relation("accounts")
            .expect("declared")
            .schema(),
    );
    for i in 0..history {
        let p = insert_txn(&rel_schema, i as i64);
        db.execute(&p).expect("commits");
    }
    let replay_image = storage.image();
    db.checkpoint().expect("checkpoint");
    let snapshot_image = storage.image();
    let expected = db.database().clone();
    drop(db);

    let start = Instant::now();
    let replayed = DurableDb::open(
        MemStorage::from_image(replay_image),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("replay recovery");
    let replay_time = start.elapsed();
    assert_eq!(replayed.database(), &expected);

    let start = Instant::now();
    let restored = DurableDb::open(
        MemStorage::from_image(snapshot_image),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("snapshot recovery");
    let restore_time = start.elapsed();
    assert_eq!(restored.database(), &expected);

    (
        RecoveryPoint {
            mode: "wal_replay",
            history,
            open_time: replay_time,
        },
        RecoveryPoint {
            mode: "snapshot_restore",
            history,
            open_time: restore_time,
        },
    )
}

fn render_json(points: &[ThroughputPoint], recoveries: &[RecoveryPoint]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"durability\",");
    let _ = writeln!(
        j,
        "  \"note\": \"commit = one single-row insert transaction on real files \
         (std temp dir); recovery timings use the deterministic in-memory backend; \
         regenerate with `cargo run --release -p mera-bench --bin durability`\","
    );
    j.push_str("  \"commit_throughput\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"fsync\": \"{}\", \"commits\": {}, \"ns_per_commit\": {}, \
             \"commits_per_sec\": {:.1}, \"wal_bytes\": {}}}",
            p.policy,
            p.commits,
            p.total.as_nanos() / p.commits.max(1) as u128,
            p.commits_per_sec(),
            p.wal_bytes
        );
        j.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    j.push_str("  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"mode\": \"{}\", \"committed_transactions\": {}, \"open_ns\": {}}}",
            r.mode,
            r.history,
            r.open_time.as_nanos()
        );
        j.push_str(if i + 1 < recoveries.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr5.json".to_owned());
    let commits = 300usize;

    let points = vec![
        throughput(FsyncPolicy::Always, "always", commits),
        throughput(FsyncPolicy::EveryN(8), "every_8", commits),
        throughput(FsyncPolicy::Never, "never", commits),
    ];
    let (replay, restore) = recovery(500);
    let recoveries = vec![replay, restore];

    for p in &points {
        eprintln!(
            "fsync={:<8} {:>8.1} commits/s  ({} commits, {} WAL bytes)",
            p.policy,
            p.commits_per_sec(),
            p.commits,
            p.wal_bytes
        );
    }
    for r in &recoveries {
        eprintln!(
            "recovery={:<17} {:>10} ns for {} committed transactions",
            r.mode,
            r.open_time.as_nanos(),
            r.history
        );
    }

    let json = render_json(&points, &recoveries);
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
