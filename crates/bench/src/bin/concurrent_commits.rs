//! Concurrent-commit report: commits/sec and snapshot-read QPS through
//! the network server, as client count grows, under `Always` fsync
//! versus `EveryN` group commit. The single-writer `Always` baseline for
//! comparison is BENCH_pr5's durability report (~7.2k commits/s on the
//! same machine class).
//!
//! Commits run twice: on real files (std temp dir — whatever this
//! machine's fsync costs, which inside a VM can be almost nothing) and
//! against a modeled 1ms commodity-SSD fsync that isolates the policy
//! difference reproducibly. The read sweep uses in-memory storage
//! (reads never touch the WAL).
//!
//! Usage: `cargo run --release -p mera-bench --bin concurrent_commits
//! [output.json]` — default output `BENCH_pr10.json`. Pass `--smoke` for
//! a fast correctness-only pass (used by CI): every acknowledged commit
//! must be recoverable, group commit must batch fsyncs, and concurrent
//! readers must make progress while a writer runs.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mera_core::prelude::*;
use mera_server::{serve, Client, ServerOptions};
use mera_store::{
    ConcurrentDb, DirStorage, FsyncPolicy, MemStorage, Storage, StoreOptions, StoreResult,
};

/// In-memory storage whose `sync` takes real time, standing in for disk
/// fsync latency. Natural group commit only batches when flushes are
/// slower than arrivals, so the smoke check needs syncs that are not
/// instantaneous to observe batching deterministically.
#[derive(Clone)]
struct SlowSync {
    inner: MemStorage,
    delay: Duration,
}

impl Storage for SlowSync {
    fn read(&self, name: &str) -> StoreResult<Option<Vec<u8>>> {
        self.inner.read(name)
    }
    fn append(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        self.inner.append(name, bytes)
    }
    fn sync(&mut self, name: &str) -> StoreResult<()> {
        thread::sleep(self.delay);
        self.inner.sync(name)
    }
    fn replace_atomic(&mut self, name: &str, bytes: &[u8]) -> StoreResult<()> {
        self.inner.replace_atomic(name, bytes)
    }
    fn truncate(&mut self, name: &str, len: u64) -> StoreResult<()> {
        self.inner.truncate(name, len)
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("mera-ccommit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn options(fsync: FsyncPolicy) -> StoreOptions {
    StoreOptions {
        fsync,
        ..StoreOptions::default()
    }
}

struct CommitPoint {
    disk: &'static str,
    policy: &'static str,
    clients: usize,
    commits: usize,
    total: Duration,
}

impl CommitPoint {
    fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.total.as_secs_f64().max(f64::EPSILON)
    }
}

/// Debit-credit commit workload: `clients` loopback sessions each
/// commit `per_client` balance bumps against their own account row.
/// The key on `client` keeps the writes conflict-free (key-point
/// validation), and the table size stays flat at `clients` rows, so
/// the measurement is commit-path plus durability cost — not retry
/// churn or table growth.
///
/// Runs once on real files (this machine's fsync, whatever it costs —
/// VM page caches routinely make it almost free) and once against a
/// modeled commodity-SSD fsync of 1ms, which isolates the *policy*
/// difference reproducibly: group commit amortizes that latency across
/// concurrent committers, `Always` pays it per commit.
fn commit_sweep_real(
    policy: FsyncPolicy,
    label: &'static str,
    clients: usize,
    per_client: usize,
) -> CommitPoint {
    let dir = TempDir::new(label);
    let storage = DirStorage::open(&dir.0).expect("open dir");
    let db = Arc::new(
        ConcurrentDb::open(storage, DatabaseSchema::new(), options(policy)).expect("opens"),
    );
    commit_sweep_on(db, "real", label, clients, per_client)
}

fn commit_sweep_modeled(
    policy: FsyncPolicy,
    label: &'static str,
    clients: usize,
    per_client: usize,
) -> CommitPoint {
    let storage = SlowSync {
        inner: MemStorage::new(),
        delay: Duration::from_millis(1),
    };
    let db = Arc::new(
        ConcurrentDb::open(storage, DatabaseSchema::new(), options(policy)).expect("opens"),
    );
    commit_sweep_on(db, "modeled_fsync_1ms", label, clients, per_client)
}

fn commit_sweep_on<S: Storage + Send + 'static>(
    db: Arc<ConcurrentDb<S>>,
    disk: &'static str,
    label: &'static str,
    clients: usize,
    per_client: usize,
) -> CommitPoint {
    db.add_relation(RelationSchema::new(
        "acct",
        Schema::named(&[("client", DataType::Int), ("bal", DataType::Int)]),
    ))
    .expect("declares");
    db.declare_key("acct", &[1]).expect("key declares");
    for c in 0..clients {
        db.run_sql(&format!("INSERT INTO acct VALUES ({c}, 0)"))
            .expect("seed");
    }
    let server = serve(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default()).expect("binds");
    let addr = server.local_addr();

    let start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                let stmt = format!("UPDATE acct SET bal = bal + 1 WHERE client = {c}");
                for _ in 0..per_client {
                    loop {
                        let reply = client.sql(&stmt).expect("io ok");
                        if reply.all_committed() {
                            break;
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client joins");
    }
    let total = start.elapsed();

    // every acknowledged commit must be in the final state: each row's
    // balance counts exactly its client's acked updates
    let version = db.pin();
    let rel = version.database().relation("acct").expect("present");
    assert_eq!(rel.len(), clients as u64);
    for c in 0..clients {
        assert_eq!(
            rel.multiplicity(&mera_core::tuple![c as i64, per_client as i64]),
            1,
            "client {c} lost acked commits"
        );
    }
    server.shutdown();

    CommitPoint {
        disk,
        policy: label,
        clients,
        commits: clients * per_client,
        total,
    }
}

struct ReadPoint {
    readers: usize,
    reads: usize,
    total: Duration,
    writer_commits: usize,
}

impl ReadPoint {
    fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / self.total.as_secs_f64().max(f64::EPSILON)
    }
}

/// `readers` loopback sessions each run `per_reader` snapshot SELECTs
/// while one writer commits continuously; the writer's progress shows
/// readers don't block it.
fn read_sweep(readers: usize, per_reader: usize) -> ReadPoint {
    let db = Arc::new(
        ConcurrentDb::open(
            MemStorage::new(),
            DatabaseSchema::new(),
            options(FsyncPolicy::EveryN(8)),
        )
        .expect("opens"),
    );
    db.run_sql("CREATE TABLE log (writer INT, n INT)")
        .expect("ddl");
    for n in 0..64 {
        db.run_sql(&format!("INSERT INTO log VALUES (0, {n})"))
            .expect("seed");
    }
    let server = serve(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerOptions {
            workers: readers + 1,
        },
    )
    .expect("binds");
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connects");
            let mut n = 64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let reply = client
                    .sql(&format!("INSERT INTO log VALUES (1, {n})"))
                    .expect("io ok");
                if reply.all_committed() {
                    n += 1;
                }
            }
            n - 64
        })
    };

    let start = Instant::now();
    let workers: Vec<_> = (0..readers)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for _ in 0..per_reader {
                    let reply = client
                        .sql("SELECT COUNT(*) FROM log GROUP BY writer")
                        .expect("query");
                    assert!(!reply.results[0].is_empty());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("reader joins");
    }
    let total = start.elapsed();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let writer_commits = writer.join().expect("writer joins");
    server.shutdown();

    ReadPoint {
        readers,
        reads: readers * per_reader,
        total,
        writer_commits,
    }
}

fn render_json(commits: &[CommitPoint], reads: &[ReadPoint]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"concurrent_commits\",");
    let _ = writeln!(
        j,
        "  \"note\": \"commit = one debit-credit balance update acked over a loopback TCP session; \
         disk=real runs on files in the std temp dir (VM page caches can make fsync almost \
         free), disk=modeled_fsync_1ms charges each sync a commodity-SSD 1ms, isolating the \
         policy difference reproducibly; reads are in-memory; single-writer Always baseline \
         is BENCH_pr5 commit_throughput; regenerate with `cargo run --release -p mera-bench \
         --bin concurrent_commits`\","
    );
    j.push_str("  \"commit_throughput\": [\n");
    for (i, p) in commits.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"disk\": \"{}\", \"fsync\": \"{}\", \"clients\": {}, \"commits\": {}, \
             \"ns_per_commit\": {}, \"commits_per_sec\": {:.1}}}",
            p.disk,
            p.policy,
            p.clients,
            p.commits,
            p.total.as_nanos() / p.commits.max(1) as u128,
            p.commits_per_sec()
        );
        j.push_str(if i + 1 < commits.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n");
    j.push_str("  \"snapshot_reads\": [\n");
    for (i, r) in reads.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"readers\": {}, \"reads\": {}, \"reads_per_sec\": {:.1}, \
             \"writer_commits_meanwhile\": {}}}",
            r.readers,
            r.reads,
            r.reads_per_sec(),
            r.writer_commits
        );
        j.push_str(if i + 1 < reads.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Correctness-only pass for CI: small counts, hard asserts.
fn smoke() -> Result<(), String> {
    // group commit batches fsyncs and loses nothing; batching is
    // natural (arises from arrivals during an in-flight flush), so the
    // smoke gives syncs a real-disk-like latency to batch against
    let storage = MemStorage::new();
    let slow = SlowSync {
        inner: storage.clone(),
        delay: Duration::from_millis(2),
    };
    let db = Arc::new(
        ConcurrentDb::open(slow, DatabaseSchema::new(), options(FsyncPolicy::EveryN(4)))
            .map_err(|e| e.to_string())?,
    );
    db.add_relation(RelationSchema::new(
        "hits",
        Schema::named(&[("client", DataType::Int), ("n", DataType::Int)]),
    ))
    .map_err(|e| e.to_string())?;
    db.declare_key("hits", &[1, 2]).map_err(|e| e.to_string())?;
    let server = serve(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default())
        .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let syncs_before = storage.sync_count();

    let workers: Vec<_> = (0..4)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                for n in 0..10 {
                    loop {
                        let reply = client
                            .sql(&format!("INSERT INTO hits VALUES ({c}, {n})"))
                            .expect("io ok");
                        if reply.all_committed() {
                            break;
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().map_err(|_| "client panicked".to_owned())?;
    }
    let commits = 40u64;
    let synced = storage.sync_count() - syncs_before;
    if synced >= commits {
        return Err(format!(
            "group commit did not batch: {synced} fsyncs for {commits} commits"
        ));
    }
    db.sync().map_err(|e| e.to_string())?;
    server.shutdown();
    drop(db);
    let recovered = ConcurrentDb::open(
        MemStorage::from_image(storage.image()),
        DatabaseSchema::new(),
        options(FsyncPolicy::Always),
    )
    .map_err(|e| e.to_string())?;
    let got = recovered
        .pin()
        .database()
        .relation("hits")
        .map_err(|e| e.to_string())?
        .len();
    if got != commits {
        return Err(format!("recovered {got} of {commits} acked commits"));
    }
    println!("smoke: 40 commits over 4 loopback clients, {synced} fsyncs, recovery exact");

    // readers make progress while a writer runs
    let point = read_sweep(2, 20);
    if point.reads != 40 {
        return Err("readers did not finish".to_owned());
    }
    println!(
        "smoke: {} snapshot reads alongside {} writer commits",
        point.reads, point.writer_commits
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        if let Err(msg) = smoke() {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
        println!("smoke: concurrent commit path acks only durable-bound work");
        return;
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_pr10.json".to_owned());
    let per_client = 400usize;

    let mut commits = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        commits.push(commit_sweep_real(
            FsyncPolicy::Always,
            "always",
            clients,
            per_client,
        ));
        commits.push(commit_sweep_real(
            FsyncPolicy::EveryN(8),
            "every_8",
            clients,
            per_client,
        ));
    }
    for clients in [1usize, 2, 4, 8] {
        commits.push(commit_sweep_modeled(
            FsyncPolicy::Always,
            "always",
            clients,
            per_client,
        ));
        commits.push(commit_sweep_modeled(
            FsyncPolicy::EveryN(8),
            "every_8",
            clients,
            per_client,
        ));
    }
    let reads: Vec<ReadPoint> = [1usize, 2, 4, 8]
        .iter()
        .map(|&r| read_sweep(r, 200))
        .collect();

    for p in &commits {
        eprintln!(
            "disk={:<17} fsync={:<8} clients={} {:>9.1} commits/s ({} commits)",
            p.disk,
            p.policy,
            p.clients,
            p.commits_per_sec(),
            p.commits
        );
    }
    for r in &reads {
        eprintln!(
            "readers={} {:>9.1} reads/s ({} reads, writer committed {})",
            r.readers,
            r.reads_per_sec(),
            r.reads,
            r.writer_commits
        );
    }

    let json = render_json(&commits, &reads);
    std::fs::write(&out_path, json).expect("write report");
    eprintln!("wrote {out_path}");
}
