//! Distinct-elimination report: the property-inference pass (declared
//! keys → duplicate-freeness) versus the same plans without key
//! knowledge, over distinct-heavy workloads.
//!
//! Four query shapes over a relation keyed on its first column:
//!
//! * `dedup_group` — `γ_{key; max}(δ(member))`: a δ feeding a keyed γ;
//!   the property pass eliminates the δ *and* collapses the γ to an
//!   extended projection — the two licensed rewrites composing.
//! * `dedup_scan` — `δ(member)`: with the key the δ is the identity and
//!   the plan is a bare scan. Both plans still materialize the full
//!   million-row output, so this point is bounded by the copy cost the
//!   rewrite cannot remove.
//! * `dedup_filter` — `δ(σ_{φ}(member))`: selection preserves keys, so
//!   the δ above a filtered keyed scan is likewise eliminated.
//! * `keyed_group` — `γ_{key; sum}(member)`: grouping by a candidate key
//!   makes every group a singleton; the γ (hash aggregation) collapses to
//!   an extended projection.
//!
//! Each query runs through the standard optimizer twice — once without
//! and once with the [`KeyEnv`] carrying the declared key — and both
//! plans execute on the serial physical engine. Results are asserted
//! equal before any timing is reported, so the sweep doubles as an
//! end-to-end soundness check of the property-licensed rewrites.
//!
//! JSON is hand-rendered (the vendored serde crates are empty shells).
//!
//! Usage: `cargo run --release -p mera-bench --bin distinct_elim
//! [output.json]` — default output `BENCH_pr9.json`. Pass `--smoke` for a
//! seconds-long CI variant that checks plan equivalence on a small
//! instance and exits nonzero on any divergence.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mera_analyze::KeyEnv;
use mera_bench::rng;
use mera_core::prelude::*;
use mera_eval::Engine;
use mera_expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use mera_opt::Optimizer;
use rand::Rng;

fn schema() -> DatabaseSchema {
    DatabaseSchema::new()
        .with(
            "member",
            Schema::named(&[
                ("id", DataType::Int),
                ("town", DataType::Int),
                ("score", DataType::Int),
                ("tag", DataType::Str),
            ]),
        )
        .expect("fresh")
}

/// `n` rows with a genuinely unique first column — the data the key
/// enforcement path guarantees for live relations. The string tag makes
/// the δ's whole-tuple hashing representative of real records.
fn load(n: usize, seed: u64) -> Database {
    let mut r = rng(seed);
    let mut db = Database::new(schema());
    let rel_schema = Arc::clone(db.relation("member").expect("declared").schema());
    let mut rel = Relation::empty(rel_schema);
    for id in 0..n {
        rel.insert(
            tuple![
                id as i64,
                r.gen_range(0..100_i64),
                r.gen_range(0..1_000_i64),
                format!("member-{id:010}-{:010}", r.gen_range(0..1_000_000_i64))
            ],
            1,
        )
        .expect("well-typed");
    }
    db.replace("member", rel).expect("schema matches");
    db
}

fn keys() -> KeyEnv {
    let mut env = KeyEnv::new();
    env.declare("member", vec![1]);
    env
}

fn queries() -> Vec<(&'static str, RelExpr)> {
    let member = || RelExpr::scan("member");
    vec![
        (
            "dedup_group",
            member().distinct().group_by(&[1], Aggregate::Max, 3),
        ),
        ("dedup_scan", member().distinct()),
        (
            "dedup_filter",
            member()
                .select(ScalarExpr::attr(3).cmp(CmpOp::Lt, ScalarExpr::int(900)))
                .distinct(),
        ),
        ("keyed_group", member().group_by(&[1], Aggregate::Sum, 3)),
    ]
}

struct Report {
    query: &'static str,
    plain_plan: String,
    keyed_plan: String,
    rows_out: u64,
    plain_ns: u128,
    keyed_ns: u128,
    speedup: f64,
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn measure(query: &'static str, expr: &RelExpr, db: &Database, iters: usize) -> Report {
    let plain_plan = Optimizer::standard()
        .optimize(expr, db.schema())
        .expect("keyless optimize")
        .expr;
    let keyed_plan = Optimizer::standard()
        .with_keys(keys())
        .optimize(expr, db.schema())
        .expect("key-aware optimize")
        .expr;

    let engine = Engine::physical();
    let want = engine.run(&plain_plan, db).expect("plain plan runs");
    let got = engine.run(&keyed_plan, db).expect("keyed plan runs");
    assert_eq!(got, want, "{query}: key-licensed plan diverged");

    let mut plain_times = Vec::with_capacity(iters);
    let mut keyed_times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let out = engine.run(&plain_plan, db).expect("plain plan runs");
        plain_times.push(start.elapsed());
        assert_eq!(out.len(), want.len());
        let start = Instant::now();
        let out = engine.run(&keyed_plan, db).expect("keyed plan runs");
        keyed_times.push(start.elapsed());
        assert_eq!(out.len(), want.len());
    }
    let plain = median(plain_times);
    let keyed = median(keyed_times);
    Report {
        query,
        plain_plan: format!("{plain_plan}"),
        keyed_plan: format!("{keyed_plan}"),
        rows_out: want.len(),
        plain_ns: plain.as_nanos(),
        keyed_ns: keyed.as_nanos(),
        speedup: plain.as_secs_f64() / keyed.as_secs_f64().max(f64::EPSILON),
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(rows: usize, iters: usize, reports: &[Report]) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"distinct_elim\",");
    let _ = writeln!(j, "  \"rows\": {rows},");
    let _ = writeln!(j, "  \"iters_per_point\": {iters},");
    let _ = writeln!(
        j,
        "  \"note\": \"plain_ns: the query planned without key knowledge (the \\u03b4 / \
         \\u03b3 hashes every row); keyed_ns: the same query planned with `key member(id)` \
         declared, so the property pass proves the input duplicate-free and the rewrite \
         drops the operator; both plans asserted to produce the same multi-set before \
         timing; speedup = plain_ns / keyed_ns, medians over iters_per_point runs; \
         regenerate with `cargo run --release -p mera-bench --bin distinct_elim`\","
    );
    j.push_str("  \"queries\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"query\": \"{}\", \"plain_plan\": \"{}\", \"keyed_plan\": \"{}\", \
             \"rows_out\": {}, \"plain_ns\": {}, \"keyed_ns\": {}, \"speedup\": {:.2}}}",
            r.query,
            json_escape(&r.plain_plan),
            json_escape(&r.keyed_plan),
            r.rows_out,
            r.plain_ns,
            r.keyed_ns,
            r.speedup
        );
        j.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Smoke mode: a small instance; the keyed plan must drop its δ/γ and
/// still agree with the canonical result on every query.
fn smoke() -> Result<(), String> {
    let db = load(5_000, 17);
    for (name, expr) in queries() {
        let canonical =
            mera_eval::eval(&expr, &db).map_err(|e| format!("{name} canonical: {e}"))?;
        let keyed_plan = Optimizer::standard()
            .with_keys(keys())
            .optimize(&expr, db.schema())
            .map_err(|e| format!("{name} optimize: {e}"))?
            .expr;
        let rendered = format!("{keyed_plan}");
        if rendered.contains("distinct") {
            return Err(format!(
                "{name}: key-licensed \u{3b4}-elimination did not fire, plan is {rendered}"
            ));
        }
        if matches!(name, "keyed_group" | "dedup_group") && rendered.contains("groupby") {
            return Err(format!(
                "{name}: keyed-\u{3b3} simplification did not fire, plan is {rendered}"
            ));
        }
        let got = Engine::physical()
            .run(&keyed_plan, &db)
            .map_err(|e| format!("{name}: {e}"))?;
        if got != canonical {
            return Err(format!("{name}: keyed plan diverged from canonical"));
        }
        println!("smoke: {name} ok ({} rows, keyed plan agrees)", got.len());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr9.json".to_owned());

    if smoke_mode {
        if let Err(msg) = smoke() {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
        println!("smoke: key-licensed plans equal canonical plans on every workload");
        return;
    }

    let rows = 1_000_000;
    let iters = 7;
    let db = load(rows, 1);

    let reports: Vec<Report> = queries()
        .into_iter()
        .map(|(name, expr)| measure(name, &expr, &db, iters))
        .collect();

    let json = render_json(rows, iters, &reports);
    std::fs::write(&out_path, json).expect("writable output path");
    println!("wrote {out_path}");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>9}",
        "query", "rows_out", "plain", "keyed", "speedup"
    );
    for r in &reports {
        println!(
            "{:>12} {:>10} {:>12.2?} {:>12.2?} {:>8.1}x",
            r.query,
            r.rows_out,
            Duration::from_nanos(r.plain_ns as u64),
            Duration::from_nanos(r.keyed_ns as u64),
            r.speedup
        );
    }
    // the PR's acceptance bound: across the distinct-heavy workload the
    // property-licensed rewrites must buy at least 2×; individual points
    // must never lose (the rewrites only remove work)
    let plain_total: u128 = reports.iter().map(|r| r.plain_ns).sum();
    let keyed_total: u128 = reports.iter().map(|r| r.keyed_ns).sum();
    let overall = plain_total as f64 / (keyed_total as f64).max(f64::EPSILON);
    println!("workload speedup: {overall:.1}x");
    assert!(
        overall >= 2.0,
        "workload speedup {overall:.2}x below the 2x acceptance bound"
    );
    for r in &reports {
        assert!(
            r.speedup >= 1.2,
            "{}: speedup {:.2}x — the rewrite made the plan slower",
            r.query,
            r.speedup
        );
    }
}
