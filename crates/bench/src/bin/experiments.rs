//! Experiment report generator: runs every measured experiment from
//! `EXPERIMENTS.md` and prints the markdown tables recorded there.
//!
//! Usage: `cargo run --release -p mera-bench --bin experiments [--quick]`
//!
//! `--quick` shrinks the sweep sizes (used in CI and by the test suite);
//! the full run takes a couple of minutes. Timings are single-shot
//! wall-clock; the Criterion benches (`cargo bench`) are the
//! statistically careful version of the same workloads.

use mera_bench::experiments::two_column_db;
use mera_bench::experiments::*;
use mera_bench::scaled_beer_db;
use mera_eval::execute;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 1 } else { 10 };

    println!("# mera experiment report\n");
    println!(
        "workloads: seeded generators (see `mera-bench`); times are \
         single-shot wall clock on this machine.\n"
    );

    e1_report(scale);
    e5_report(scale);
    e6_report(scale);
    e7_report(scale);
    e12_report(scale);
}

/// E1 — Theorem 3.1: native operators vs their desugared forms.
fn e1_report(scale: usize) {
    println!("## E1 — Theorem 3.1 desugarings (native vs desugared)\n");
    println!("| rows | plan | result rows | time |");
    println!("|---|---|---|---|");
    for rows in [2_000 * scale, 10_000 * scale] {
        let db = two_column_db(rows, rows / 10, 0xE1);
        for (label, plan) in e1_plans() {
            let (out, t) = time_once(|| execute(&plan, &db).expect("executes"));
            println!("| {rows} | {label} | {} | {t:.2?} |", out.len());
        }
    }
    println!();
}

/// E5 — Example 3.2: projection insertion before group-by.
fn e5_report(scale: usize) {
    println!("## E5 — Example 3.2 projection insertion (bag semantics)\n");
    println!("| beers | γ-input cells (direct) | γ-input cells (reduced) | reduction | t(direct) | t(reduced) |");
    println!("|---|---|---|---|---|---|");
    for n in [1_000 * scale, 5_000 * scale, 20_000 * scale] {
        let run = e5_run(n).expect("e5 runs");
        println!(
            "| {} | {} | {} | {:.1}x | {:.2?} | {:.2?} |",
            run.n_beers,
            run.direct_cells,
            run.reduced_cells,
            run.direct_cells as f64 / run.reduced_cells as f64,
            run.direct_time,
            run.reduced_time,
        );
    }
    println!();
}

/// E6 — set semantics corrupts aggregates when the projection is
/// inserted.
fn e6_report(scale: usize) {
    println!("## E6 — Example 3.2 under set semantics (correctness)\n");
    println!("| beers | countries | diverging averages | max abs error |");
    println!("|---|---|---|---|");
    // the set baseline evaluates ⋈ as literal σ(×) — correctness needs no
    // scale, so the sweep is capped independently of the global scale
    let cap = if scale > 1 { 10 } else { scale };
    for n in [1_000 * cap.min(2), 5_000 * cap.min(2)] {
        let run = e6_run(n).expect("e6 runs");
        println!(
            "| {n} | {} | {} | {:.4} |",
            run.countries, run.diverging_countries, run.max_abs_error
        );
    }
    println!();
}

/// E7 — the cost of duplicate removal: bag engine vs dedup-everywhere.
fn e7_report(scale: usize) {
    println!("## E7 — duplicate-removal cost (bag engine vs set engine)\n");
    println!("| rows | dup factor | t(bag) | t(set) | set/bag | dedup work (tuples) |");
    println!("|---|---|---|---|---|---|");
    for rows in [10_000 * scale, 50_000 * scale] {
        for dup in [1, 10, 100] {
            let run = e7_run(rows, dup).expect("e7 runs");
            println!(
                "| {} | {} | {:.2?} | {:.2?} | {:.2}x | {} |",
                run.rows,
                run.dup_factor,
                run.bag_time,
                run.set_time,
                run.set_time.as_secs_f64() / run.bag_time.as_secs_f64().max(1e-9),
                run.dedup_work,
            );
        }
    }
    println!();
}

/// E12 — optimizer ablation.
fn e12_report(scale: usize) {
    println!("## E12 — optimizer ablation (Example 3.1+3.2 pipeline)\n");
    // the ablation necessarily runs *unoptimized* (quadratic) plans, so
    // the sweep size is capped independently of the global scale
    let n = if scale > 1 { 10_000 } else { 5_000 };
    println!("(beer database with {n} beers)\n");
    println!("| dropped rule | plan time | estimated cost |");
    println!("|---|---|---|");
    for run in e12_run(n).expect("e12 runs") {
        println!(
            "| {} | {:.2?} | {:.0} |",
            run.dropped, run.time, run.est_cost
        );
    }
    println!();
    let db = scaled_beer_db(n, n / 20 + 2, 8, n / 4 + 2, 0xE12);
    let stats = mera_opt::CatalogStats::from_database(&db).expect("analyze");
    let raw = mera_opt::cost::estimate_cost(&e12_query(), &stats);
    let (_, raw_time) = time_once(|| execute(&e12_query(), &db).expect("executes"));
    println!("| (no optimizer at all) | {raw_time:.2?} | {raw:.0} |\n");
}
