//! Parallel-scaling report: times the serial batched engine and the
//! morsel-driven engine across partition counts on the E14 workloads —
//! including the string-heavy `string_join` and `string_group_by` plans —
//! and writes the sweep as JSON (hand-rendered — the vendored serde
//! crates are empty shells). Each point also records the heap-allocation
//! count of one run, measured by the counting global allocator, so
//! allocation regressions in the hot loops show up next to the timings.
//!
//! The operator-at-a-time partitioned kernels are *not* part of the
//! recorded sweep: that engine clones inputs into partitions and
//! materialises a relation per plan node, so at `partitions > 1` it is
//! slower than serial by design — it is kept as a differential/debug
//! engine (see `mera_eval::parallel`), not a performance path.
//!
//! Usage: `cargo run --release -p mera-bench --bin parallel_scaling
//! [output.json]` — the default output path is `BENCH_pr6.json`. Pass
//! `--smoke` for a seconds-long CI variant on a tiny database that also
//! cross-checks every engine (reference, physical, operator-at-a-time,
//! morsel) for result equality and exits nonzero on divergence. The
//! Criterion version of the same sweep is the `parallel_scaling` bench.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use mera_bench::scaling::{partition_sweep, scaling_db, scaling_plans};
use mera_core::counting_alloc::{allocations_during, CountingAlloc};
use mera_core::prelude::*;
use mera_eval::Engine;
use mera_expr::RelExpr;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Point {
    engine: &'static str,
    partitions: usize,
    ns_per_run: u128,
    speedup_vs_serial: f64,
    allocs_per_run: u64,
}

struct Workload {
    name: &'static str,
    result_rows: u64,
    points: Vec<Point>,
}

/// Median wall-clock time of `runs` executions (after one warm-up), plus
/// the allocation count of one post-warm-up execution.
fn median_time<T>(runs: usize, mut f: impl FnMut() -> T) -> (Duration, u64) {
    f();
    let (allocs, _) = allocations_during(&mut f);
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    (times[times.len() / 2], allocs)
}

fn measure(
    engine: &'static str,
    partitions: usize,
    runs: usize,
    serial: Duration,
    make: impl Fn() -> Engine,
    plan: &RelExpr,
    db: &Database,
) -> Point {
    let e = make().with_partitions(partitions);
    let (t, allocs) = median_time(runs, || e.run(plan, db).expect("plan executes"));
    Point {
        engine,
        partitions,
        ns_per_run: t.as_nanos(),
        speedup_vs_serial: serial.as_secs_f64() / t.as_secs_f64().max(f64::EPSILON),
        allocs_per_run: allocs,
    }
}

fn render_json(
    rows: usize,
    cores: usize,
    workers: usize,
    runs: usize,
    workloads: &[Workload],
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"parallel_scaling\",");
    let _ = writeln!(j, "  \"rows\": {rows},");
    let _ = writeln!(j, "  \"cores\": {cores},");
    let _ = writeln!(j, "  \"available_parallelism\": {cores},");
    let _ = writeln!(j, "  \"workers\": {workers},");
    let _ = writeln!(j, "  \"runs_per_point\": {runs},");
    let _ = writeln!(
        j,
        "  \"note\": \"median wall-clock of runs_per_point executions after one warm-up; \
         allocs_per_run counts heap allocations of one execution; \
         regenerate with `cargo run --release -p mera-bench --bin parallel_scaling`\","
    );
    j.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        j.push_str("    {\n");
        let _ = writeln!(j, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(j, "      \"result_rows\": {},", w.result_rows);
        j.push_str("      \"points\": [\n");
        for (pi, p) in w.points.iter().enumerate() {
            let _ = write!(
                j,
                "        {{\"engine\": \"{}\", \"partitions\": {}, \"ns_per_run\": {}, \
                 \"speedup_vs_serial\": {:.3}, \"allocs_per_run\": {}}}",
                p.engine, p.partitions, p.ns_per_run, p.speedup_vs_serial, p.allocs_per_run
            );
            j.push_str(if pi + 1 < w.points.len() { ",\n" } else { "\n" });
        }
        j.push_str("      ]\n");
        j.push_str(if wi + 1 < workloads.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    j.push_str("  ]\n}\n");
    j
}

/// Smoke mode: every engine agrees on every workload. Exercises the full
/// sweep's code paths (including multi-partition morsel scheduling and
/// the retired operator-at-a-time kernels) on a tiny database in seconds.
fn smoke(db: &Database, sweep: &[usize]) -> Result<(), String> {
    for (name, plan) in scaling_plans() {
        let want = Engine::reference()
            .run(&plan, db)
            .map_err(|e| format!("{name}: reference failed: {e}"))?;
        let check = |engine: &str, got: Result<Relation, CoreError>| -> Result<(), String> {
            let got = got.map_err(|e| format!("{name}: {engine} failed: {e}"))?;
            if got != want {
                return Err(format!("{name}: {engine} diverges from reference"));
            }
            Ok(())
        };
        check("physical", Engine::physical().run(&plan, db))?;
        for &p in sweep {
            check(
                &format!("operator_at_a_time p={p}"),
                Engine::parallel().with_partitions(p).run(&plan, db),
            )?;
            check(
                &format!("morsel p={p}"),
                Engine::morsel().with_partitions(p).run(&plan, db),
            )?;
        }
        println!("smoke: {name} ok ({} result rows)", want.len());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr6.json".to_owned());
    let sweep = partition_sweep();

    if smoke_mode {
        let db = scaling_db(2_000);
        if let Err(msg) = smoke(&db, &sweep) {
            eprintln!("smoke FAILED: {msg}");
            std::process::exit(1);
        }
        println!("smoke: all engines agree on all workloads");
        return;
    }

    let rows = 60_000usize;
    let runs = 7usize;
    let db = scaling_db(rows);
    // report the machine's real parallelism, not the sweep's max: the
    // morsel engine clamps its worker fleet to the hardware, so on a
    // single-core container every partition count degenerates to one
    // worker and speedup_vs_serial can only show scheduling overhead
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut workloads = Vec::new();
    for (name, plan) in scaling_plans() {
        let serial_engine = Engine::physical();
        let result_rows = serial_engine.run(&plan, &db).expect("plan executes").len();
        let (serial, serial_allocs) = median_time(runs, || {
            serial_engine.run(&plan, &db).expect("plan executes")
        });
        let mut points = vec![Point {
            engine: "serial",
            partitions: 1,
            ns_per_run: serial.as_nanos(),
            speedup_vs_serial: 1.0,
            allocs_per_run: serial_allocs,
        }];
        for &p in &sweep {
            points.push(measure(
                "morsel",
                p,
                runs,
                serial,
                Engine::morsel,
                &plan,
                &db,
            ));
        }
        workloads.push(Workload {
            name,
            result_rows,
            points,
        });
    }

    // the morsel engine clamps its worker fleet to the hardware, so the
    // effective fleet never exceeds the machine regardless of the sweep
    let workers = cores.min(sweep.iter().copied().max().unwrap_or(1));
    let json = render_json(rows, cores, workers, runs, &workloads);
    std::fs::write(&out_path, json).expect("writable output path");
    println!("wrote {out_path}");
    for w in &workloads {
        println!("\n{} ({} result rows)", w.name, w.result_rows);
        for p in &w.points {
            println!(
                "  {:>10} p={:<3} {:>12.2?}  {:>5.2}x  {:>10} allocs",
                p.engine,
                p.partitions,
                Duration::from_nanos(p.ns_per_run as u64),
                p.speedup_vs_serial,
                p.allocs_per_run
            );
        }
    }
}
