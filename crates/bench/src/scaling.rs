//! Shared workloads for the parallel-scaling experiment (E14): the same
//! databases and plans drive the `parallel_scaling` Criterion bench and
//! the `parallel_scaling` report binary that records `BENCH_pr6.json`.

use mera_core::prelude::*;
use mera_expr::{Aggregate, RelExpr, ScalarExpr};

use crate::{int_relation, str_relation};

/// The partition counts the scaling sweep runs: 1, 2, 4, and the number
/// of cores on this machine (deduplicated, sorted).
pub fn partition_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut parts = vec![1usize, 2, 4, cores];
    parts.sort_unstable();
    parts.dedup();
    parts
}

/// The scaling database: `r(k, v)` with `rows` tuples and `s(k, v)` with
/// `rows / 2`, both moderately skewed so joins and group-bys have real
/// duplication to merge, plus their string-keyed counterparts `t` and `u`
/// (interned `"key{i}"` keys over the same profile) for the string-heavy
/// workload.
pub fn scaling_db(rows: usize) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "t",
            Schema::named(&[("k", DataType::Str), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "u",
            Schema::named(&[("k", DataType::Str), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    db.replace("r", int_relation(rows, rows / 4 + 1, 0.3, 141))
        .expect("replace");
    db.replace("s", int_relation(rows / 2 + 1, rows / 4 + 1, 0.3, 142))
        .expect("replace");
    db.replace("t", str_relation(rows, rows / 4 + 1, 0.3, 143))
        .expect("replace");
    db.replace("u", str_relation(rows / 2 + 1, rows / 4 + 1, 0.3, 144))
        .expect("replace");
    db
}

/// The measured plans, labelled:
///
/// * `join_pipeline` — `γ(π(σ(r) ⋈ s))`, a whole pipeline the morsel
///   engine runs with zero intermediate relations (one breaker at the
///   build side, one at the aggregate);
/// * `group_by` — a keyed `γ` over `r`, the pure two-phase aggregation
///   case;
/// * `string_join` — the same pipeline shape as `join_pipeline` but keyed
///   on interned strings (`t ⋈ u` then a string-keyed `γ`): the workload
///   where symbol interning (O(1) equality and hashing, pointer-sized
///   keys) pays off;
/// * `string_group_by` — a string-keyed `γ` over `t` alone: pure
///   radix-partitioned aggregation on interned keys, no join in the way.
pub fn scaling_plans() -> [(&'static str, RelExpr); 4] {
    let join_pipeline = RelExpr::scan("r")
        .select(ScalarExpr::attr(2).cmp(mera_expr::CmpOp::Lt, ScalarExpr::int(800)))
        .join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
        .project(&[1, 2, 4])
        .group_by(&[1], Aggregate::Sum, 3);
    let group_by = RelExpr::scan("r").group_by(&[1], Aggregate::Avg, 2);
    let string_join = RelExpr::scan("t")
        .select(ScalarExpr::attr(2).cmp(mera_expr::CmpOp::Lt, ScalarExpr::int(800)))
        .join(
            RelExpr::scan("u"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
        .project(&[1, 2, 4])
        .group_by(&[1], Aggregate::Sum, 3);
    let string_group_by = RelExpr::scan("t").group_by(&[1], Aggregate::Sum, 2);
    [
        ("join_pipeline", join_pipeline),
        ("group_by", group_by),
        ("string_join", string_join),
        ("string_group_by", string_group_by),
    ]
}
