//! Measured experiment drivers (see `EXPERIMENTS.md` for the index).
//!
//! Each driver builds its workload from the seeded generators, runs the
//! competing strategies, and returns a structured result. The Criterion
//! benches wrap the same workloads for statistically solid timing; the
//! `experiments` binary calls the drivers directly and prints the
//! markdown tables recorded in `EXPERIMENTS.md`.

use std::time::{Duration, Instant};

use mera_core::prelude::*;
use mera_eval::physical::planner::plan_instrumented;
use mera_eval::physical::stats::ExecStats;
use mera_eval::{collect, execute};
use mera_expr::{Aggregate, RelExpr, ScalarExpr};
use mera_opt::{CatalogStats, Optimizer};
use mera_setalg::{eval_set, eval_set_counting};

use crate::{column_relation, scaled_beer_db};

/// Wall-clock of one closure run (the report binary's coarse timer; the
/// Criterion benches do the rigorous version).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Builds a database holding two single-column relations `e1`, `e2` for
/// set-operation experiments.
pub fn two_column_db(rows: usize, distinct: usize, seed: u64) -> Database {
    let schema = DatabaseSchema::new()
        .with("e1", Schema::named(&[("a", DataType::Int)]))
        .expect("fresh")
        .with("e2", Schema::named(&[("a", DataType::Int)]))
        .expect("fresh");
    let mut db = Database::new(schema);
    db.replace("e1", column_relation(rows, distinct, seed))
        .expect("replace");
    db.replace("e2", column_relation(rows, distinct, seed + 1))
        .expect("replace");
    db
}

// ----------------------------------------------------------------------
// E1 — Theorem 3.1 desugarings
// ----------------------------------------------------------------------

/// The two sides of each Theorem 3.1 identity, as executable plans.
pub fn e1_plans() -> [(&'static str, RelExpr); 4] {
    let e1 = RelExpr::scan("e1");
    let e2 = RelExpr::scan("e2");
    let phi = ScalarExpr::attr(1).eq(ScalarExpr::attr(2));
    [
        ("intersect (native)", e1.clone().intersect(e2.clone())),
        (
            "E1 - (E1 - E2) (desugared)",
            e1.clone().difference(e1.clone().difference(e2.clone())),
        ),
        ("join (native)", e1.clone().join(e2.clone(), phi.clone())),
        ("sigma(product) (desugared)", e1.product(e2).select(phi)),
    ]
}

// ----------------------------------------------------------------------
// E5 — Example 3.2 projection insertion at scale
// ----------------------------------------------------------------------

/// Result of one E5 run.
#[derive(Debug, Clone)]
pub struct PushdownRun {
    /// Beers in the generated database.
    pub n_beers: usize,
    /// Cells entering the group-by without the projection.
    pub direct_cells: u64,
    /// Cells entering the group-by with the optimizer's projection.
    pub reduced_cells: u64,
    /// Wall time of the direct plan.
    pub direct_time: Duration,
    /// Wall time of the optimized plan.
    pub reduced_time: Duration,
}

/// Example 3.2's two plan shapes over a scaled beer database.
pub fn ex32_plans() -> (RelExpr, RelExpr) {
    let join = RelExpr::scan("beer").join(
        RelExpr::scan("brewery"),
        ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
    );
    let direct = join.clone().group_by(&[6], Aggregate::Avg, 3);
    let reduced = join.project(&[3, 6]).group_by(&[2], Aggregate::Avg, 1);
    (direct, reduced)
}

/// Cells flowing into the group-by operator of a plan.
pub fn gamma_input_cells(expr: &RelExpr, db: &Database) -> CoreResult<u64> {
    let mut stats = ExecStats::new();
    let plan = plan_instrumented(expr, db, &mut stats)?;
    let _ = collect(plan)?;
    let cells = stats.cells_out();
    let gamma = cells
        .iter()
        .position(|(l, _)| l == "group-by")
        .expect("plan contains a group-by");
    Ok(cells[gamma - 1].1)
}

/// Runs E5 for one scale, verifying both plans agree before timing.
pub fn e5_run(n_beers: usize) -> CoreResult<PushdownRun> {
    let db = scaled_beer_db(n_beers, n_beers / 20 + 2, 8, n_beers / 4 + 2, 0xE5);
    let (direct, reduced) = ex32_plans();
    let a = execute(&direct, &db)?;
    let b = execute(&reduced, &db)?;
    assert_eq!(a, b, "plans must agree under bag semantics");
    let direct_cells = gamma_input_cells(&direct, &db)?;
    let reduced_cells = gamma_input_cells(&reduced, &db)?;
    let (_, direct_time) = time_once(|| execute(&direct, &db).expect("executes"));
    let (_, reduced_time) = time_once(|| execute(&reduced, &db).expect("executes"));
    Ok(PushdownRun {
        n_beers,
        direct_cells,
        reduced_cells,
        direct_time,
        reduced_time,
    })
}

// ----------------------------------------------------------------------
// E6 — Example 3.2 correctness divergence under set semantics
// ----------------------------------------------------------------------

/// Result of one E6 run: whether each evaluation strategy got the right
/// per-country averages.
#[derive(Debug, Clone)]
pub struct CorrectnessRun {
    /// Countries whose set-semantics average diverges from the truth when
    /// the projection is inserted.
    pub diverging_countries: usize,
    /// Total countries.
    pub countries: usize,
    /// Largest absolute error introduced by set semantics.
    pub max_abs_error: f64,
}

/// Runs E6 over a scaled beer database.
pub fn e6_run(n_beers: usize) -> CoreResult<CorrectnessRun> {
    let db = scaled_beer_db(n_beers, n_beers / 20 + 2, 8, n_beers / 10 + 2, 0xE6);
    let (direct, reduced) = ex32_plans();
    let truth = execute(&direct, &db)?;
    let set_reduced = eval_set(&reduced, &db)?;
    let mut diverging = 0;
    let mut max_err: f64 = 0.0;
    for (t, _) in truth.iter() {
        let country = t.attr(1)?.clone();
        let avg = t.attr(2)?.as_f64()?;
        let found = set_reduced
            .iter()
            .find(|(s, _)| s.attr(1).ok() == Some(&country))
            .map(|(s, _)| s.attr(2).expect("avg").as_f64().expect("numeric"));
        match found {
            Some(set_avg) if (set_avg - avg).abs() < 1e-9 => {}
            Some(set_avg) => {
                diverging += 1;
                max_err = max_err.max((set_avg - avg).abs());
            }
            None => diverging += 1,
        }
    }
    Ok(CorrectnessRun {
        diverging_countries: diverging,
        countries: truth.len() as usize,
        max_abs_error: max_err,
    })
}

// ----------------------------------------------------------------------
// E7 — the cost of duplicate removal
// ----------------------------------------------------------------------

/// Result of one E7 cell in the size × duplication sweep.
#[derive(Debug, Clone)]
pub struct DedupRun {
    /// Input rows.
    pub rows: usize,
    /// Mean duplication factor (`rows / distinct`).
    pub dup_factor: usize,
    /// Bag-engine wall time.
    pub bag_time: Duration,
    /// Set-engine wall time (deduplicating after every operator).
    pub set_time: Duration,
    /// Tuples the set engine had to scan for deduplication.
    pub dedup_work: u64,
}

/// The E7 query: a union of two filtered relations projected to one
/// column — every step duplicate-producing.
pub fn e7_query() -> RelExpr {
    let half = |name: &str| {
        RelExpr::scan(name)
            .select(ScalarExpr::attr(1).cmp(mera_expr::CmpOp::Ge, ScalarExpr::int(0)))
    };
    half("e1").union(half("e2")).project(&[1])
}

/// Runs one E7 cell.
pub fn e7_run(rows: usize, dup_factor: usize) -> CoreResult<DedupRun> {
    let distinct = (rows / dup_factor).max(1);
    let db = two_column_db(rows, distinct, 0xE7);
    let q = e7_query();
    let (_, bag_time) = time_once(|| execute(&q, &db).expect("bag executes"));
    let ((_, dedup_work), set_time) =
        time_once(|| eval_set_counting(&q, &db).expect("set executes"));
    Ok(DedupRun {
        rows,
        dup_factor,
        bag_time,
        set_time,
        dedup_work,
    })
}

// ----------------------------------------------------------------------
// E12 — optimizer ablation
// ----------------------------------------------------------------------

/// Result of one ablation cell: the standard optimizer with one rule
/// removed, on the Example 3.1-style query.
#[derive(Debug, Clone)]
pub struct AblationRun {
    /// The rule that was dropped ("(none)" for the full set).
    pub dropped: String,
    /// Execution wall time of the resulting plan.
    pub time: Duration,
    /// Estimated cost of the resulting plan.
    pub est_cost: f64,
}

/// The ablation query: the textbook σ-over-product form of Example 3.1
/// followed by the Example 3.2 aggregation — exercises every rule.
pub fn e12_query() -> RelExpr {
    RelExpr::scan("beer")
        .product(RelExpr::scan("brewery"))
        .select(
            ScalarExpr::attr(2)
                .eq(ScalarExpr::attr(4))
                .and(ScalarExpr::attr(6).eq(ScalarExpr::str("C0"))),
        )
        .group_by(&[6], Aggregate::Avg, 3)
}

/// Runs the ablation sweep on one database scale.
pub fn e12_run(n_beers: usize) -> CoreResult<Vec<AblationRun>> {
    let db = scaled_beer_db(n_beers, n_beers / 20 + 2, 8, n_beers / 4 + 2, 0xE12);
    let stats = CatalogStats::from_database(&db)?;
    let q = e12_query();
    let full = Optimizer::standard();
    let mut configs: Vec<(String, Optimizer)> = vec![("(none)".into(), Optimizer::standard())];
    for rule in full.rule_names() {
        configs.push((rule.to_owned(), Optimizer::standard_without(&[rule])));
    }
    let reference = execute(&Optimizer::standard().optimize(&q, db.schema())?.expr, &db)?;
    let mut out = Vec::with_capacity(configs.len());
    for (dropped, opt) in configs {
        let plan = opt.optimize(&q, db.schema())?.expr;
        let result = execute(&plan, &db)?;
        assert_eq!(result, reference, "ablated optimizer changed semantics");
        let (_, time) = time_once(|| execute(&plan, &db).expect("executes"));
        out.push(AblationRun {
            dropped,
            time,
            est_cost: mera_opt::cost::estimate_cost(&plan, &stats),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_plans_pairwise_equal() {
        let db = two_column_db(300, 40, 1);
        let plans = e1_plans();
        let a = execute(&plans[0].1, &db).expect("native intersect");
        let b = execute(&plans[1].1, &db).expect("desugared intersect");
        assert_eq!(a, b);
        let c = execute(&plans[2].1, &db).expect("native join");
        let d = execute(&plans[3].1, &db).expect("desugared join");
        assert_eq!(c, d);
    }

    #[test]
    fn e5_projection_reduces_gamma_input() {
        let run = e5_run(2_000).expect("runs");
        assert!(
            run.reduced_cells < run.direct_cells,
            "projection must shrink the group-by input: {run:?}"
        );
        // exactly 3× narrower: 2 of 6 attributes survive
        assert_eq!(run.direct_cells, 3 * run.reduced_cells);
    }

    #[test]
    fn e6_set_semantics_diverges_at_scale() {
        let run = e6_run(2_000).expect("runs");
        assert!(
            run.diverging_countries > 0,
            "set semantics should corrupt at least one average: {run:?}"
        );
        assert!(run.max_abs_error > 0.0);
    }

    #[test]
    fn e7_set_engine_does_dedup_work() {
        let run = e7_run(5_000, 10).expect("runs");
        // scan dedup ×2 + union dedup + projection dedup > input size
        assert!(run.dedup_work > 10_000, "{run:?}");
    }

    #[test]
    fn e12_ablation_preserves_results() {
        // semantics preservation is asserted inside e12_run itself
        let runs = e12_run(1_000).expect("runs");
        assert!(runs.len() >= 8);
        // the full optimizer must beat the *unoptimized* plan's estimate
        let db = scaled_beer_db(1_000, 52, 8, 252, 0xE12);
        let stats = CatalogStats::from_database(&db).expect("analyze");
        let raw_cost = mera_opt::cost::estimate_cost(&e12_query(), &stats);
        assert!(
            runs[0].est_cost < raw_cost,
            "full optimizer ({}) should beat the raw plan ({raw_cost})",
            runs[0].est_cost
        );
    }
}
