//! # mera-bench — workload generators and the experiment harness
//!
//! Deterministic (seeded) generators for the relations every experiment
//! in `EXPERIMENTS.md` runs on:
//!
//! * [`scaled_beer_db`] — the paper's beer/brewery schema scaled to
//!   arbitrary sizes with a controllable duplication profile,
//! * [`int_relation`] — generic `(int, int)` relations with exact control
//!   over cardinality and distinct counts (duplication factor),
//! * [`zipf_indices`] — skewed value distributions, the regime where bag
//!   semantics and duplicate-removal costs diverge most.
//!
//! The [`experiments`] module contains the measured experiment drivers
//! shared by the Criterion benches and the `experiments` report binary.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod scaling;

use std::sync::Arc;

use mera_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a named experiment.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples `n` indices in `0..universe` from a (truncated) Zipf-like
/// distribution with exponent `s` — rank `k` is drawn with probability
/// ∝ `1/(k+1)^s`. `s = 0.0` is uniform.
pub fn zipf_indices(rng: &mut StdRng, n: usize, universe: usize, s: f64) -> Vec<usize> {
    assert!(universe > 0, "universe must be non-empty");
    // cumulative weights
    let mut cum = Vec::with_capacity(universe);
    let mut total = 0.0;
    for k in 0..universe {
        total += 1.0 / ((k + 1) as f64).powf(s);
        cum.push(total);
    }
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..total);
            match cum.binary_search_by(|c| c.partial_cmp(&x).expect("no NaN")) {
                Ok(i) | Err(i) => i.min(universe - 1),
            }
        })
        .collect()
}

/// A generic relation `(k: int, v: int)` with exactly `rows` tuples whose
/// key column draws from `distinct_keys` values with Zipf exponent
/// `skew`. `skew = 0` gives a uniform duplication profile;
/// `rows / distinct_keys` is the mean duplication factor.
pub fn int_relation(rows: usize, distinct_keys: usize, skew: f64, seed: u64) -> Relation {
    let mut r = rng(seed);
    let schema = Arc::new(Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]));
    let keys = zipf_indices(&mut r, rows, distinct_keys.max(1), skew);
    let mut rel = Relation::empty(schema);
    for k in keys {
        let v: i64 = r.gen_range(0..1_000);
        rel.insert(tuple![k as i64, v], 1).expect("well-typed");
    }
    rel
}

/// A generic relation `(k: str, v: int)` — the string-keyed sibling of
/// [`int_relation`] for workloads that hash, compare and group interned
/// string keys. Keys are `"key{i}"` over `distinct_keys` values with Zipf
/// exponent `skew`.
pub fn str_relation(rows: usize, distinct_keys: usize, skew: f64, seed: u64) -> Relation {
    let mut r = rng(seed);
    let schema = Arc::new(Schema::named(&[("k", DataType::Str), ("v", DataType::Int)]));
    let keys = zipf_indices(&mut r, rows, distinct_keys.max(1), skew);
    let mut rel = Relation::empty(schema);
    for k in keys {
        let v: i64 = r.gen_range(0..1_000);
        rel.insert(tuple![format!("key{k}"), v], 1)
            .expect("well-typed");
    }
    rel
}

/// A single-column `(a: int)` relation for set-operation workloads:
/// `rows` tuples over `distinct` values, uniform.
pub fn column_relation(rows: usize, distinct: usize, seed: u64) -> Relation {
    let mut r = rng(seed);
    let schema = Arc::new(Schema::named(&[("a", DataType::Int)]));
    let mut rel = Relation::empty(schema);
    for _ in 0..rows {
        let v: i64 = r.gen_range(0..distinct.max(1) as i64);
        rel.insert(tuple![v], 1).expect("well-typed");
    }
    rel
}

/// The paper's beer/brewery database scaled up: `n_beers` beer tuples
/// over `n_breweries` breweries across `n_countries` countries, with
/// beer-name duplication controlled by `name_universe` (smaller universe
/// ⇒ more duplicate names — Example 3.1's "several Dutch brewers brew
/// beers with the same name").
pub fn scaled_beer_db(
    n_beers: usize,
    n_breweries: usize,
    n_countries: usize,
    name_universe: usize,
    seed: u64,
) -> Database {
    let mut r = rng(seed);
    let schema = DatabaseSchema::new()
        .with(
            "beer",
            Schema::named(&[
                ("name", DataType::Str),
                ("brewery", DataType::Str),
                ("alcperc", DataType::Real),
            ]),
        )
        .expect("fresh schema")
        .with(
            "brewery",
            Schema::named(&[
                ("name", DataType::Str),
                ("city", DataType::Str),
                ("country", DataType::Str),
            ]),
        )
        .expect("fresh schema");
    let mut db = Database::new(schema);

    let brewery_schema = Arc::clone(db.schema().get("brewery").expect("declared"));
    let mut breweries = Relation::empty(brewery_schema);
    for b in 0..n_breweries {
        let country = format!("C{}", b % n_countries.max(1));
        breweries
            .insert(
                tuple![format!("brewery{b}"), format!("city{b}"), country],
                1,
            )
            .expect("well-typed");
    }
    db.replace("brewery", breweries).expect("replace");

    let beer_schema = Arc::clone(db.schema().get("beer").expect("declared"));
    let mut beers = Relation::empty(beer_schema);
    let names = zipf_indices(&mut r, n_beers, name_universe.max(1), 1.1);
    for name_ix in names {
        let brewery = r.gen_range(0..n_breweries.max(1));
        // alcohol percentages on a coarse grid so duplicates also arise in
        // projections of the numeric column
        let alc = (r.gen_range(30..130) as f64) / 10.0;
        beers
            .insert(
                tuple![format!("beer{name_ix}"), format!("brewery{brewery}"), alc],
                1,
            )
            .expect("well-typed");
    }
    db.replace("beer", beers).expect("replace");
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let mut a = rng(7);
        let mut b = rng(7);
        let xs = zipf_indices(&mut a, 1000, 50, 1.2);
        let ys = zipf_indices(&mut b, 1000, 50, 1.2);
        assert_eq!(xs, ys);
        // rank 0 must dominate under skew
        let count0 = xs.iter().filter(|&&x| x == 0).count();
        let count49 = xs.iter().filter(|&&x| x == 49).count();
        assert!(count0 > count49, "rank 0: {count0}, rank 49: {count49}");
        assert!(xs.iter().all(|&x| x < 50));
    }

    #[test]
    fn int_relation_has_requested_shape() {
        let rel = int_relation(500, 20, 0.0, 1);
        assert_eq!(rel.len(), 500);
        // keys live in 0..20
        for t in rel.support() {
            let k = t.attr(1).expect("key").as_int().expect("int");
            assert!((0..20).contains(&k));
        }
    }

    #[test]
    fn str_relation_has_requested_shape() {
        let rel = str_relation(500, 20, 0.0, 5);
        assert_eq!(rel.len(), 500);
        for t in rel.support() {
            let k = t.attr(1).expect("key").as_str().expect("str");
            assert!(k.starts_with("key"));
        }
        assert_eq!(str_relation(100, 10, 1.0, 7), str_relation(100, 10, 1.0, 7));
    }

    #[test]
    fn column_relation_duplicates() {
        let rel = column_relation(1000, 10, 2);
        assert_eq!(rel.len(), 1000);
        assert!(rel.distinct_len() <= 10);
        // mean duplication ≈ 100
        assert!(rel.len() / rel.distinct_len() as u64 >= 50);
    }

    #[test]
    fn scaled_beer_db_is_well_formed() {
        let db = scaled_beer_db(1000, 50, 5, 100, 3);
        let beer = db.relation("beer").expect("present");
        let brewery = db.relation("brewery").expect("present");
        assert_eq!(beer.len(), 1000);
        assert_eq!(brewery.len(), 50);
        // every beer's brewery exists (referential integrity of the
        // generator, not the model — the paper keeps constraints out of
        // scope)
        let known: std::collections::HashSet<&Value> = brewery
            .support()
            .map(|t| t.attr(1).expect("name"))
            .collect();
        for t in beer.support() {
            assert!(known.contains(t.attr(2).expect("brewery")));
        }
    }

    #[test]
    fn generators_are_seed_stable() {
        assert_eq!(
            int_relation(100, 10, 1.0, 42),
            int_relation(100, 10, 1.0, 42)
        );
        let a = scaled_beer_db(100, 10, 3, 20, 9);
        let b = scaled_beer_db(100, 10, 3, 20, 9);
        assert_eq!(
            a.relation("beer").expect("present"),
            b.relation("beer").expect("present")
        );
    }
}
