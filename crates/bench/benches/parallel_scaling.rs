//! E14 — parallel scaling: the morsel-driven engine vs the serial batched
//! engine, across partition counts {1, 2, 4, cores}, on whole join
//! pipelines and keyed group-bys (integer- and string-keyed variants).
//!
//! The operator-at-a-time partitioned kernels are deliberately absent:
//! that engine is a differential/debug path (see `mera_eval::parallel`),
//! not a performance contender, so benchmarking it at every partition
//! count only burned sweep time.
//!
//! The single-shot JSON record of this sweep lives in `BENCH_pr6.json`
//! (regenerate with `cargo run --release -p mera-bench --bin
//! parallel_scaling`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mera_bench::scaling::{partition_sweep, scaling_db, scaling_plans};
use mera_eval::{execute, Engine};

fn parallel_scaling(c: &mut Criterion) {
    let rows = 60_000usize;
    let db = scaling_db(rows);
    for (label, plan) in scaling_plans() {
        let mut group = c.benchmark_group(format!("parallel_scaling/{label}"));
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("serial", rows), &plan, |b, e| {
            b.iter(|| execute(e, &db).expect("serial executes"));
        });
        for partitions in partition_sweep() {
            group.bench_with_input(
                BenchmarkId::new(format!("morsel_p{partitions}"), rows),
                &plan,
                |b, e| {
                    let engine = Engine::morsel().with_partitions(partitions);
                    b.iter(|| engine.run(e, &db).expect("morsel executes"));
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = parallel_scaling
}
criterion_main!(benches);
