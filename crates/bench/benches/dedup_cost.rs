//! E7 — the introduction's cost claim: "the high costs of duplicate
//! removal in database operations is often prohibitive for the use of a
//! data model that does not [allow] duplicates."
//!
//! The bag engine evaluates a duplicate-producing pipeline as-is; the
//! set-semantics engine must deduplicate after the scan, the union and
//! the projection. Sweeps input size × duplication factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mera_bench::experiments::{e7_query, two_column_db};
use mera_eval::execute;
use mera_setalg::eval_set;

fn dedup_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup_cost");
    for rows in [10_000usize, 40_000] {
        for dup in [1usize, 10, 100] {
            let distinct = (rows / dup).max(1);
            let db = two_column_db(rows, distinct, 0xE7);
            let q = e7_query();
            group.throughput(Throughput::Elements(rows as u64));
            group.bench_with_input(
                BenchmarkId::new("bag_engine", format!("{rows}x{dup}")),
                &q,
                |b, e| b.iter(|| execute(e, &db).expect("bag executes")),
            );
            group.bench_with_input(
                BenchmarkId::new("set_engine", format!("{rows}x{dup}")),
                &q,
                |b, e| b.iter(|| eval_set(e, &db).expect("set executes")),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = dedup_cost
}
criterion_main!(benches);
