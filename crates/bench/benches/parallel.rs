//! E13 — partition-parallel kernels (the PRISMA/DB §5 direction):
//! hash-partitioned equi-join and keyed group-by vs their serial
//! counterparts, across partition counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mera_bench::int_relation;
use mera_core::prelude::*;
use mera_eval::{execute, Engine};
use mera_expr::{Aggregate, RelExpr, ScalarExpr};

fn join_db(rows: usize) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    db.replace("r", int_relation(rows, rows / 4 + 1, 0.3, 31))
        .expect("replace");
    db.replace("s", int_relation(rows / 2 + 1, rows / 4 + 1, 0.3, 32))
        .expect("replace");
    db
}

fn parallel_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/equi_join");
    for rows in [20_000usize, 80_000] {
        let db = join_db(rows);
        let e = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("serial", rows), &e, |b, e| {
            b.iter(|| execute(e, &db).expect("serial executes"));
        });
        for partitions in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("partitions_{partitions}"), rows),
                &e,
                |b, e| {
                    let engine = Engine::parallel().with_partitions(partitions);
                    b.iter(|| engine.run(e, &db).expect("parallel executes"))
                },
            );
        }
    }
    group.finish();
}

fn parallel_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/group_by");
    for rows in [50_000usize, 150_000] {
        let db = join_db(rows);
        let e = RelExpr::scan("r").group_by(&[1], Aggregate::Avg, 2);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("serial", rows), &e, |b, e| {
            b.iter(|| execute(e, &db).expect("serial executes"));
        });
        for partitions in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("partitions_{partitions}"), rows),
                &e,
                |b, e| {
                    let engine = Engine::parallel().with_partitions(partitions);
                    b.iter(|| engine.run(e, &db).expect("parallel executes"))
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = parallel_join, parallel_aggregate
}
criterion_main!(benches);
