//! E1/E2 — the cost side of the paper's equivalence theorems:
//!
//! * Theorem 3.1: native `∩`/`⋈` vs their desugared forms — the identity
//!   licenses a *much* cheaper implementation (hash-based) than the
//!   literal desugaring (difference-of-differences, σ over a full
//!   product);
//! * Theorem 3.2: σ/π distributed over ⊎ vs applied above — same results,
//!   near-identical cost in a streaming engine (the rewrite's value shows
//!   when the union feeds a blocking operator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mera_bench::experiments::{e1_plans, two_column_db};
use mera_eval::execute;
use mera_expr::{CmpOp, RelExpr, ScalarExpr};

fn thm31_desugar(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm31_desugar");
    for rows in [1_000usize, 5_000] {
        let db = two_column_db(rows, rows / 10 + 1, 0xE1);
        for (label, plan) in e1_plans() {
            // the σ(×) desugaring is quadratic; cap its size
            if label.contains("product") && rows > 1_000 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(label, rows), &plan, |b, e| {
                b.iter(|| execute(e, &db).expect("executes"));
            });
        }
    }
    group.finish();
}

fn thm32_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm32_distribution");
    for rows in [10_000usize, 50_000] {
        let db = two_column_db(rows, rows / 10 + 1, 0xE2);
        let pred = ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::int((rows / 40) as i64));
        let above = RelExpr::scan("e1")
            .union(RelExpr::scan("e2"))
            .select(pred.clone());
        let pushed = RelExpr::scan("e1")
            .select(pred.clone())
            .union(RelExpr::scan("e2").select(pred.clone()));
        group.bench_with_input(
            BenchmarkId::new("sigma_above_union", rows),
            &above,
            |b, e| {
                b.iter(|| execute(e, &db).expect("executes"));
            },
        );
        group.bench_with_input(BenchmarkId::new("sigma_pushed", rows), &pushed, |b, e| {
            b.iter(|| execute(e, &db).expect("executes"));
        });
        // where the rewrite pays: the union feeds a blocking distinct
        let above_blocking = RelExpr::scan("e1")
            .union(RelExpr::scan("e2"))
            .distinct()
            .select(pred.clone());
        let pushed_blocking = RelExpr::scan("e1")
            .select(pred.clone())
            .union(RelExpr::scan("e2").select(pred.clone()))
            .distinct();
        group.bench_with_input(
            BenchmarkId::new("sigma_above_union_distinct", rows),
            &above_blocking,
            |b, e| b.iter(|| execute(e, &db).expect("executes")),
        );
        group.bench_with_input(
            BenchmarkId::new("sigma_pushed_then_distinct", rows),
            &pushed_blocking,
            |b, e| b.iter(|| execute(e, &db).expect("executes")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = thm31_desugar, thm32_distribution
}
criterion_main!(benches);
