//! Index-aware execution: point selections over a base relation via a
//! full scan vs a hash-index lookup (the main-memory access path
//! PRISMA/DB relied on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mera_bench::int_relation;
use mera_core::prelude::*;
use mera_eval::{execute, execute_indexed, IndexSet};
use mera_expr::{RelExpr, ScalarExpr};

fn db(rows: usize) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut d = Database::new(schema);
    d.replace("r", int_relation(rows, rows / 10 + 1, 0.0, 41))
        .expect("replace");
    d
}

fn point_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("index/point_lookup");
    for rows in [10_000usize, 100_000, 400_000] {
        let database = db(rows);
        let mut indexes = IndexSet::new();
        indexes.create(&database, "r", &[1]).expect("creates");
        let q = RelExpr::scan("r").select(ScalarExpr::attr(1).eq(ScalarExpr::int(7)));
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_with_input(BenchmarkId::new("scan_filter", rows), &q, |b, e| {
            b.iter(|| execute(e, &database).expect("plain"));
        });
        group.bench_with_input(BenchmarkId::new("hash_index", rows), &q, |b, e| {
            b.iter(|| execute_indexed(e, &database, &indexes).expect("indexed"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = point_lookup
}
criterion_main!(benches);
