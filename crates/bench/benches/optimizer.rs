//! E12 — optimizer ablation: execution cost of the Example 3.1+3.2
//! pipeline with the full rule set, with individual rules removed, and
//! with no optimizer at all. Also benchmarks cost-based join reordering
//! on a three-way chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mera_bench::experiments::e12_query;
use mera_bench::{int_relation, scaled_beer_db};
use mera_core::prelude::*;
use mera_eval::execute;
use mera_expr::{RelExpr, ScalarExpr};
use mera_opt::{reorder_joins, CatalogStats, Optimizer};

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_ablation");
    let n = 5_000;
    let db = scaled_beer_db(n, n / 20 + 2, 8, n / 4 + 2, 0xE12);
    let q = e12_query();

    let raw = q.clone();
    group.bench_function("no_optimizer", |b| {
        b.iter(|| execute(&raw, &db).expect("executes"));
    });

    let full_plan = Optimizer::standard()
        .optimize(&q, db.schema())
        .expect("optimizes")
        .expr;
    group.bench_function("full_rules", |b| {
        b.iter(|| execute(&full_plan, &db).expect("executes"));
    });

    for rule in Optimizer::standard().rule_names() {
        let plan = Optimizer::standard_without(&[rule])
            .optimize(&q, db.schema())
            .expect("optimizes")
            .expr;
        group.bench_with_input(BenchmarkId::new("dropped", rule), &plan, |b, e| {
            b.iter(|| execute(e, &db).expect("executes"));
        });
    }
    group.finish();
}

fn join_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_ordering");
    // big ⋈ small ⋈ medium in the worst textual order
    let schema = DatabaseSchema::new()
        .with(
            "big",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "small",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "mid",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    db.replace("big", int_relation(40_000, 4_000, 0.3, 21))
        .expect("replace");
    db.replace("small", int_relation(50, 40, 0.0, 22))
        .expect("replace");
    db.replace("mid", int_relation(4_000, 400, 0.3, 23))
        .expect("replace");

    // (big × mid) ⋈ small — the product first is pathological
    let chain = RelExpr::scan("big")
        .join(
            RelExpr::scan("mid"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
        .join(
            RelExpr::scan("small"),
            ScalarExpr::attr(3).eq(ScalarExpr::attr(5)),
        );
    let stats = CatalogStats::from_database(&db).expect("analyze");
    let reordered = reorder_joins(&chain, &stats, db.schema()).expect("reorders");

    group.sample_size(10);
    group.bench_function("textual_order", |b| {
        b.iter(|| execute(&chain, &db).expect("executes"));
    });
    group.bench_function("cost_based_order", |b| {
        b.iter(|| execute(&reordered, &db).expect("executes"));
    });
    group.bench_function("reorder_latency", |b| {
        b.iter(|| reorder_joins(&chain, &stats, db.schema()).expect("reorders"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = ablation, join_ordering
}
criterion_main!(benches);
