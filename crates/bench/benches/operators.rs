//! E11 — per-operator microbenchmarks: scaling of every algebra operator
//! on the physical engine, over inputs with a realistic duplication
//! profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mera_bench::experiments::two_column_db;
use mera_bench::int_relation;
use mera_core::prelude::*;
use mera_eval::{execute, Engine};
use mera_expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};

fn join_db(rows: usize) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    db.replace("r", int_relation(rows, rows / 8 + 1, 0.5, 11))
        .expect("replace");
    db.replace("s", int_relation(rows / 4 + 1, rows / 8 + 1, 0.5, 12))
        .expect("replace");
    db
}

fn unary_and_set_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators/unary_and_set");
    for rows in [1_000usize, 10_000, 50_000] {
        let db = two_column_db(rows, rows / 10 + 1, 0xB1);
        group.throughput(Throughput::Elements(rows as u64));
        let cases: Vec<(&str, RelExpr)> = vec![
            (
                "select",
                RelExpr::scan("e1").select(
                    ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::int((rows / 20) as i64)),
                ),
            ),
            ("project", RelExpr::scan("e1").project(&[1, 1])),
            ("distinct", RelExpr::scan("e1").distinct()),
            ("union", RelExpr::scan("e1").union(RelExpr::scan("e2"))),
            (
                "difference",
                RelExpr::scan("e1").difference(RelExpr::scan("e2")),
            ),
            (
                "intersect",
                RelExpr::scan("e1").intersect(RelExpr::scan("e2")),
            ),
        ];
        for (name, expr) in cases {
            group.bench_with_input(BenchmarkId::new(name, rows), &expr, |b, e| {
                b.iter(|| execute(e, &db).expect("executes"));
            });
        }
    }
    group.finish();
}

fn joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators/join");
    for rows in [1_000usize, 5_000, 15_000] {
        let db = join_db(rows);
        group.throughput(Throughput::Elements(rows as u64));
        let equi = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        group.bench_with_input(BenchmarkId::new("hash_join", rows), &equi, |b, e| {
            b.iter(|| execute(e, &db).expect("executes"));
        });
        // the same predicate in a non-hashable shape forces a nested loop
        // (engine recognises only top-level attr=attr conjuncts)
        let theta = RelExpr::scan("r").join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1)
                .cmp(CmpOp::Le, ScalarExpr::attr(3))
                .and(ScalarExpr::attr(1).cmp(CmpOp::Ge, ScalarExpr::attr(3))),
        );
        if rows < 5_000 {
            group.bench_with_input(
                BenchmarkId::new("nested_loop_join", rows),
                &theta,
                |b, e| {
                    b.iter(|| execute(e, &db).expect("executes"));
                },
            );
        }
    }
    group.finish();
}

fn aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators/group_by");
    for rows in [1_000usize, 10_000, 50_000] {
        let db = join_db(rows);
        group.throughput(Throughput::Elements(rows as u64));
        for (name, agg) in [
            ("cnt", Aggregate::Cnt),
            ("sum", Aggregate::Sum),
            ("avg", Aggregate::Avg),
            ("min", Aggregate::Min),
        ] {
            let expr = RelExpr::scan("r").group_by(&[1], agg, 2);
            group.bench_with_input(BenchmarkId::new(name, rows), &expr, |b, e| {
                b.iter(|| execute(e, &db).expect("executes"))
            });
        }
    }
    group.finish();
}

/// Batch-size sweep: the same select→join→group-by pipeline at batch
/// sizes from row-at-a-time Volcano (1) to the 1024-row default — the
/// experiment behind `DEFAULT_BATCH_SIZE`.
fn batch_size_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators/batch_size");
    let rows = 20_000usize;
    let db = join_db(rows);
    let expr = RelExpr::scan("r")
        .select(ScalarExpr::attr(2).cmp(CmpOp::Lt, ScalarExpr::int((rows / 2) as i64)))
        .join(
            RelExpr::scan("s"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        )
        .group_by(&[1], Aggregate::Sum, 4);
    group.throughput(Throughput::Elements(rows as u64));
    for batch_size in [1usize, 16, 64, 256, 1024, 8192] {
        let engine = Engine::physical().with_batch_size(batch_size);
        group.bench_with_input(BenchmarkId::new("pipeline", batch_size), &expr, |b, e| {
            b.iter(|| engine.run(e, &db).expect("executes"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = unary_and_set_ops, joins, aggregation, batch_size_sweep
}
criterion_main!(benches);
