//! E5 — Example 3.2's projection insertion at scale: the direct
//! aggregation over the full join output vs the plan with
//! `π_(alcperc,country)` inserted (what the optimizer produces
//! automatically), plus the optimizer's own latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mera_bench::experiments::ex32_plans;
use mera_bench::scaled_beer_db;
use mera_eval::execute;
use mera_opt::Optimizer;

fn pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("ex32_pushdown");
    for n_beers in [5_000usize, 20_000, 60_000] {
        let db = scaled_beer_db(n_beers, n_beers / 20 + 2, 8, n_beers / 4 + 2, 0xE5);
        let (direct, reduced) = ex32_plans();
        group.throughput(Throughput::Elements(n_beers as u64));
        group.bench_with_input(BenchmarkId::new("direct", n_beers), &direct, |b, e| {
            b.iter(|| execute(e, &db).expect("executes"));
        });
        group.bench_with_input(
            BenchmarkId::new("projection_inserted", n_beers),
            &reduced,
            |b, e| b.iter(|| execute(e, &db).expect("executes")),
        );
        // the optimizer produces `reduced` from `direct`; how fast?
        let opt = Optimizer::standard();
        group.bench_with_input(
            BenchmarkId::new("optimize_only", n_beers),
            &direct,
            |b, e| b.iter(|| opt.optimize(e, db.schema()).expect("optimizes")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(12)
        .warm_up_time(std::time::Duration::from_millis(800))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = pushdown
}
criterion_main!(benches);
