//! # mera-sql — a SQL subset over the multi-set algebra
//!
//! §1 of the paper positions the extended algebra "as a formal background
//! to other multi-set languages like SQL". This crate demonstrates that
//! role concretely: a single-block SQL subset (the fragment the paper's
//! own SQL examples use) parsed and translated into the algebra, so SQL
//! statements execute with exactly the multi-set semantics of §3.
//!
//! * [`ast`] — the SQL AST,
//! * [`parser`] — case-insensitive recursive descent,
//! * [`translate`](mod@translate) — FROM→`×`, WHERE→`σ`, SELECT→`π`, DISTINCT→`δ`,
//!   GROUP BY→`γ`, DML→Definition 4.1 statements.
//!
//! ```
//! use mera_core::prelude::*;
//! use mera_sql::run_sql;
//! use mera_txn::{Program, TransactionManager};
//!
//! let schema = DatabaseSchema::new()
//!     .with("beer", Schema::named(&[
//!         ("name", DataType::Str),
//!         ("brewery", DataType::Str),
//!         ("alcperc", DataType::Real),
//!     ]))?;
//! let mgr = TransactionManager::new(schema);
//! run_sql(&mgr, "INSERT INTO beer VALUES ('Grolsch', 'Grolsche', 5.0)")?;
//! let out = run_sql(&mgr, "SELECT name FROM beer WHERE alcperc >= 5.0")?;
//! assert_eq!(out.expect("query output").len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod parser;
pub mod translate;

pub use ast::{ColRef, SelectItem, SelectQuery, SqlExpr, SqlStmt};
pub use parser::{parse_sql, parse_sql_script};
pub use translate::{translate, Translated};

use mera_core::prelude::*;
use mera_lang::error::{LangError, LangResult};
use mera_txn::views::CreateViewError;
use mera_txn::{DeclareKeyError, Outcome, Program, TransactionManager};

/// The manager's schema extended with every materialized view's schema —
/// what SQL names resolve against.
fn catalog(mgr: &TransactionManager) -> DatabaseSchema {
    let mut schema = mgr.snapshot().schema().clone();
    for (name, rel) in mgr.view_snapshots() {
        let _ = schema.add(RelationSchema::new(name, rel.schema().as_ref().clone()));
    }
    schema
}

fn key_error(e: DeclareKeyError) -> LangError {
    match e {
        DeclareKeyError::Error(c) => LangError::Semantic(c),
        DeclareKeyError::Rejected(diag) => LangError::Semantic(CoreError::TypeError(format!(
            "key declaration rejected:\n{}",
            mera_analyze::render(&[diag])
        ))),
    }
}

fn view_error(e: CreateViewError) -> LangError {
    match e {
        CreateViewError::Error(c) => LangError::Semantic(c),
        CreateViewError::Rejected(diags) => LangError::Semantic(CoreError::TypeError(format!(
            "view definition rejected:\n{}",
            mera_analyze::render(&diags)
        ))),
    }
}

/// Parses and translates one SQL statement, then runs the `mera-analyze`
/// passes against the manager's current state *without executing it*.
///
/// Returns every diagnostic (errors and warnings). Unlike
/// [`mera_lang::Session::check_script`], the check sees live relation
/// cardinalities: `AVG` over a relation that is empty *right now* is
/// reported as a hard `E0102`, not a `W0101` possibility. A
/// `CREATE MATERIALIZED VIEW` statement is checked with the view
/// validator instead (`E0301`/`E0303` and the usual schema errors).
pub fn check_sql(mgr: &TransactionManager, sql: &str) -> LangResult<Vec<mera_analyze::Diagnostic>> {
    let stmt = parse_sql(sql)?;
    let schema = catalog(mgr);
    match translate(&stmt, &schema)? {
        Translated::CreateView { name, expr } => {
            Ok(mera_analyze::analyze_view_def(&name, &expr, &schema).diagnostics)
        }
        // CREATE TABLE has nothing to analyze: the table is new and empty,
        // so its PRIMARY KEY is trivially satisfied
        Translated::CreateTable { .. } => Ok(Vec::new()),
        translated => {
            let program = Program::single(translated.into_statement());
            Ok(mgr.check_program(&program))
        }
    }
}

/// Parses and translates one SQL query, then renders the plan it gets
/// against the manager's current state — join order, access paths,
/// estimated-vs-actual cardinalities (see [`mera_txn::explain_expr`] for
/// the format). Only queries can be explained; DML and DDL statements are
/// rejected.
pub fn explain_sql(mgr: &TransactionManager, sql: &str) -> LangResult<String> {
    let stmt = parse_sql(sql)?;
    match translate(&stmt, &catalog(mgr))? {
        Translated::Query(expr) => mgr.explain(&expr).map_err(LangError::Semantic),
        _ => Err(LangError::Semantic(CoreError::TypeError(
            "EXPLAIN takes a query, not a DML or DDL statement".to_string(),
        ))),
    }
}

/// Parses, translates and runs one SQL statement as a transaction against
/// a manager. Returns the result relation for queries, `None` for DML and
/// `CREATE MATERIALIZED VIEW`. Materialized views are readable in `FROM`
/// clauses like tables, served from their incrementally-maintained
/// contents.
pub fn run_sql(mgr: &TransactionManager, sql: &str) -> LangResult<Option<Relation>> {
    let stmt = parse_sql(sql)?;
    let translated = translate(&stmt, &catalog(mgr))?;
    let is_query = matches!(translated, Translated::Query(_));
    if let Translated::CreateView { name, expr } = translated {
        mgr.create_view(&name, expr).map_err(view_error)?;
        return Ok(None);
    }
    if let Translated::CreateTable { schema, keys } = translated {
        let name = schema.name.clone();
        mgr.add_relation(schema).map_err(LangError::Semantic)?;
        for attrs in keys {
            mgr.declare_key(&name, &attrs).map_err(key_error)?;
        }
        return Ok(None);
    }
    let program = Program::single(translated.into_statement());
    let (outcome, _) = mgr.execute(&program).map_err(LangError::Semantic)?;
    match outcome {
        Outcome::Committed(mut outputs) => {
            if is_query {
                Ok(Some(outputs.queries.remove(0)))
            } else {
                Ok(None)
            }
        }
        Outcome::Aborted(reason) => Err(LangError::Semantic(CoreError::TypeError(format!(
            "transaction aborted: {reason}"
        )))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_expr::{Aggregate, RelExpr, ScalarExpr};

    fn beer_schema() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh")
    }

    fn loaded_manager() -> TransactionManager {
        let mgr = TransactionManager::new(beer_schema());
        run_sql(
            &mgr,
            "INSERT INTO beer VALUES \
             ('Grolsch', 'Grolsche', 5.0), \
             ('Heineken', 'Heineken', 5.0), \
             ('Amstel', 'Heineken', 5.1), \
             ('Bock', 'Grolsche', 6.5), \
             ('Bock', 'Heineken', 6.3), \
             ('Guinness', 'StJames', 4.2)",
        )
        .expect("insert beers");
        run_sql(
            &mgr,
            "INSERT INTO brewery VALUES \
             ('Grolsche', 'Enschede', 'NL'), \
             ('Heineken', 'Amsterdam', 'NL'), \
             ('StJames', 'Dublin', 'IE')",
        )
        .expect("insert breweries");
        mgr
    }

    #[test]
    fn example_3_2_translation_shape() {
        // SELECT country, AVG(alcperc) FROM beer, brewery
        // WHERE beer.brewery = brewery.name GROUP BY country
        let stmt = parse_sql(
            "SELECT country, AVG(alcperc) FROM beer, brewery \
             WHERE beer.brewery = brewery.name GROUP BY country",
        )
        .expect("parses");
        let schema = beer_schema();
        let Translated::Query(e) = translate(&stmt, &schema).expect("translates") else {
            panic!("expected a query");
        };
        let want = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .select(ScalarExpr::attr(2).eq(ScalarExpr::attr(4)))
            .group_by(&[6], Aggregate::Avg, 3);
        assert_eq!(e, want);
    }

    #[test]
    fn example_3_2_executes_with_bag_semantics() {
        let mgr = loaded_manager();
        let out = run_sql(
            &mgr,
            "SELECT country, AVG(alcperc) FROM beer, brewery \
             WHERE beer.brewery = brewery.name GROUP BY country",
        )
        .expect("runs")
        .expect("query output");
        let nl = (5.0 + 5.0 + 5.1 + 6.5 + 6.3) / 5.0;
        assert_eq!(out.multiplicity(&tuple!["NL", nl]), 1);
        assert_eq!(out.multiplicity(&tuple!["IE", 4.2_f64]), 1);
    }

    #[test]
    fn example_4_1_update() {
        let mgr = loaded_manager();
        run_sql(
            &mgr,
            "UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Heineken'",
        )
        .expect("updates");
        let out = run_sql(&mgr, "SELECT alcperc FROM beer WHERE name = 'Amstel'")
            .expect("runs")
            .expect("query output");
        assert_eq!(out.multiplicity(&tuple![5.1 * 1.1]), 1);
    }

    #[test]
    fn plain_select_preserves_duplicates() {
        let mgr = loaded_manager();
        let out = run_sql(&mgr, "SELECT alcperc FROM beer")
            .expect("runs")
            .expect("output");
        assert_eq!(out.len(), 6);
        assert_eq!(out.multiplicity(&tuple![5.0_f64]), 2);
        // DISTINCT collapses them
        let out = run_sql(&mgr, "SELECT DISTINCT alcperc FROM beer")
            .expect("runs")
            .expect("output");
        assert_eq!(out.multiplicity(&tuple![5.0_f64]), 1);
    }

    #[test]
    fn select_star_and_qualified_columns() {
        let mgr = loaded_manager();
        let out = run_sql(
            &mgr,
            "SELECT * FROM beer, brewery WHERE beer.brewery = brewery.name",
        )
        .expect("runs")
        .expect("output");
        assert_eq!(out.schema().arity(), 6);
        assert_eq!(out.len(), 6);
        // ambiguous unqualified 'name' is an error
        let err = run_sql(&mgr, "SELECT name FROM beer, brewery").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
    }

    #[test]
    fn count_star_and_having() {
        let mgr = loaded_manager();
        let out = run_sql(
            &mgr,
            "SELECT brewery, COUNT(*) FROM beer GROUP BY brewery HAVING COUNT(*) > 1",
        )
        .expect("runs")
        .expect("output");
        assert_eq!(out.multiplicity(&tuple!["Heineken", 3_i64]), 1);
        assert_eq!(out.multiplicity(&tuple!["Grolsche", 2_i64]), 1);
        assert_eq!(out.len(), 2); // StJames (1 beer) filtered by HAVING
    }

    #[test]
    fn select_list_reorders_group_output() {
        let mgr = loaded_manager();
        // aggregate first, key second
        let out = run_sql(
            &mgr,
            "SELECT MAX(alcperc), brewery FROM beer GROUP BY brewery",
        )
        .expect("runs")
        .expect("output");
        assert_eq!(out.multiplicity(&tuple![6.5_f64, "Grolsche"]), 1);
    }

    #[test]
    fn delete_with_where() {
        let mgr = loaded_manager();
        run_sql(&mgr, "DELETE FROM beer WHERE alcperc < 5.0").expect("deletes");
        let out = run_sql(&mgr, "SELECT COUNT(*) FROM beer")
            .expect("runs")
            .expect("output");
        assert_eq!(out.multiplicity(&tuple![5_i64]), 1);
    }

    #[test]
    fn aggregate_without_group_by() {
        let mgr = loaded_manager();
        let out = run_sql(&mgr, "SELECT AVG(alcperc) FROM beer")
            .expect("runs")
            .expect("output");
        assert_eq!(out.len(), 1);
        let avg = (5.0 + 5.0 + 5.1 + 6.5 + 6.3 + 4.2) / 6.0;
        assert_eq!(out.multiplicity(&tuple![avg]), 1);
    }

    #[test]
    fn check_sql_reports_partiality_against_live_state() {
        let mgr = TransactionManager::new(beer_schema());
        // beer is empty right now: AVG is provably undefined — E0102
        let diags = check_sql(&mgr, "SELECT AVG(alcperc) FROM beer").expect("checks");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, mera_analyze::Code::PartialAggregateOnEmpty);
        // and the transaction path agrees: the statement is rejected
        // before execution
        let err = run_sql(&mgr, "SELECT AVG(alcperc) FROM beer").unwrap_err();
        assert!(
            err.to_string().contains("static analysis rejected"),
            "{err}"
        );
        // once the relation is nonempty the check proves safety instead
        run_sql(&mgr, "INSERT INTO beer VALUES ('Grolsch', 'Grolsche', 5.0)").expect("inserts");
        let diags = check_sql(&mgr, "SELECT AVG(alcperc) FROM beer").expect("checks");
        assert!(diags.is_empty(), "{diags:?}");
        // COUNT is total, so it is clean either way (Definition 3.4)
        let diags = check_sql(&mgr, "SELECT COUNT(*) FROM brewery").expect("checks");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn create_materialized_view_and_query_it() {
        let mgr = loaded_manager();
        run_sql(
            &mgr,
            "CREATE MATERIALIZED VIEW strength AS \
             SELECT country, MAX(alcperc) FROM beer, brewery \
             WHERE beer.brewery = brewery.name GROUP BY country",
        )
        .expect("creates view");
        let out = run_sql(&mgr, "SELECT * FROM strength WHERE country = 'NL'")
            .expect("runs")
            .expect("output");
        assert_eq!(out.multiplicity(&tuple!["NL", 6.5_f64]), 1);
        // a commit on the base tables refreshes the view incrementally
        run_sql(&mgr, "DELETE FROM beer WHERE alcperc > 6.0").expect("deletes");
        let out = run_sql(&mgr, "SELECT * FROM strength")
            .expect("runs")
            .expect("output");
        assert_eq!(out.multiplicity(&tuple!["NL", 5.1_f64]), 1);
        assert_eq!(out.multiplicity(&tuple!["IE", 4.2_f64]), 1);
        let stats = mgr.view_stats();
        assert_eq!(stats[0].0, "strength");
        assert_eq!(stats[0].2, 0, "no recompute fallbacks: {stats:?}");
    }

    #[test]
    fn dml_on_sql_view_is_rejected() {
        let mgr = loaded_manager();
        run_sql(
            &mgr,
            "CREATE MATERIALIZED VIEW lite AS SELECT name FROM beer WHERE alcperc < 5.0",
        )
        .expect("creates view");
        let err = run_sql(&mgr, "DELETE FROM lite").unwrap_err();
        assert!(err.to_string().contains("E0302"), "{err}");
        let diags = check_sql(&mgr, "DELETE FROM lite").expect("checks");
        assert_eq!(diags[0].code, mera_analyze::Code::DmlOnView);
    }

    #[test]
    fn partial_view_definition_is_rejected_in_sql() {
        let mgr = loaded_manager();
        let diags = check_sql(
            &mgr,
            "CREATE MATERIALIZED VIEW a AS SELECT AVG(alcperc) FROM beer",
        )
        .expect("checks");
        assert_eq!(diags[0].code, mera_analyze::Code::PartialView);
        let err = run_sql(
            &mgr,
            "CREATE MATERIALIZED VIEW a AS SELECT AVG(alcperc) FROM beer",
        )
        .unwrap_err();
        assert!(err.to_string().contains("E0303"), "{err}");
        // total aggregates are accepted — COUNT is defined on ∅
        run_sql(
            &mgr,
            "CREATE MATERIALIZED VIEW n AS SELECT brewery, COUNT(*) FROM beer GROUP BY brewery",
        )
        .expect("creates");
        let out = run_sql(&mgr, "SELECT * FROM n WHERE brewery = 'Heineken'")
            .expect("runs")
            .expect("output");
        assert_eq!(out.multiplicity(&tuple!["Heineken", 3_i64]), 1);
    }

    #[test]
    fn create_table_with_primary_key_enforces_at_commit() {
        let mgr = TransactionManager::new(DatabaseSchema::new());
        run_sql(
            &mgr,
            "CREATE TABLE member (name TEXT, town TEXT, PRIMARY KEY (name))",
        )
        .expect("creates table");
        run_sql(&mgr, "INSERT INTO member VALUES ('dick', 'enschede')").expect("inserts");
        // a second tuple at the same key point aborts the transaction
        let err = run_sql(&mgr, "INSERT INTO member VALUES ('dick', 'hengelo')").unwrap_err();
        assert!(err.to_string().contains("E0401"), "{err}");
        let out = run_sql(&mgr, "SELECT * FROM member")
            .expect("runs")
            .expect("output");
        assert_eq!(out.len(), 1);
        // the key licenses δ-elimination in plans
        let plan = explain_sql(&mgr, "SELECT DISTINCT * FROM member").expect("explains");
        assert!(
            !plan.contains("distinct"),
            "keyed input must license \u{3b4}-elimination:\n{plan}"
        );
    }

    #[test]
    fn views_stack_on_views_and_stay_fresh() {
        let mgr = loaded_manager();
        run_sql(
            &mgr,
            "CREATE MATERIALIZED VIEW strong AS \
             SELECT name, brewery FROM beer WHERE alcperc > 6.0",
        )
        .expect("first view");
        // the second view's FROM resolves the first view by name
        run_sql(
            &mgr,
            "CREATE MATERIALIZED VIEW strong_grolsche AS \
             SELECT name FROM strong WHERE brewery = 'Grolsche'",
        )
        .expect("view on view");
        let out = run_sql(&mgr, "SELECT * FROM strong_grolsche")
            .expect("runs")
            .expect("output");
        assert_eq!(out.len(), 1); // Bock/Grolsche at 6.5
                                  // a base-table write cascades through both layers
        run_sql(&mgr, "INSERT INTO beer VALUES ('Tripel', 'Grolsche', 8.0)").expect("dml");
        let out = run_sql(&mgr, "SELECT * FROM strong_grolsche")
            .expect("runs")
            .expect("output");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn create_table_unique_constraints_enforce_and_license_rewrites() {
        let mgr = TransactionManager::new(DatabaseSchema::new());
        run_sql(
            &mgr,
            "CREATE TABLE member (id INT PRIMARY KEY, email TEXT UNIQUE, \
             first TEXT, last TEXT, UNIQUE (first, last))",
        )
        .expect("creates table");
        run_sql(&mgr, "INSERT INTO member VALUES (1, 'ann@x', 'ann', 'ng')").expect("inserts");
        // UNIQUE column: duplicate email aborts with the key diagnostic
        let err = run_sql(&mgr, "INSERT INTO member VALUES (2, 'ann@x', 'bob', 'b')").unwrap_err();
        assert!(err.to_string().contains("E0401"), "{err}");
        // composite UNIQUE: duplicate (first, last) aborts
        let err = run_sql(&mgr, "INSERT INTO member VALUES (2, 'bob@x', 'ann', 'ng')").unwrap_err();
        assert!(err.to_string().contains("E0401"), "{err}");
        // all constraints satisfied: commits
        run_sql(&mgr, "INSERT INTO member VALUES (2, 'bob@x', 'bob', 'ng')").expect("commits");
        let out = run_sql(&mgr, "SELECT * FROM member")
            .expect("runs")
            .expect("output");
        assert_eq!(out.len(), 2);
        // the UNIQUE keys reach the property pass: δ over the keyed
        // relation is eliminated
        let plan = explain_sql(&mgr, "SELECT DISTINCT * FROM member").expect("explains");
        assert!(
            !plan.contains("distinct"),
            "keyed input must license \u{3b4}-elimination:\n{plan}"
        );
        // UNIQUE duplicating the PRIMARY KEY collapses to one declaration
        run_sql(&mgr, "CREATE TABLE t (a INT PRIMARY KEY, UNIQUE (a))").expect("creates");
        run_sql(&mgr, "INSERT INTO t VALUES (1)").expect("inserts");
        let err = run_sql(&mgr, "INSERT INTO t VALUES (1)").unwrap_err();
        assert!(err.to_string().contains("E0401"), "{err}");
    }

    #[test]
    fn create_table_errors() {
        let mgr = loaded_manager();
        // duplicate relation name
        let err = run_sql(&mgr, "CREATE TABLE beer (x INT)").unwrap_err();
        assert!(err.to_string().contains("beer"), "{err}");
        // unknown primary-key column
        let err = run_sql(&mgr, "CREATE TABLE r (a INT, PRIMARY KEY (z))").unwrap_err();
        assert!(err.to_string().contains("z"), "{err}");
        // duplicate column name
        let err = run_sql(&mgr, "CREATE TABLE r (a INT, a INT)").unwrap_err();
        assert!(err.to_string().contains("duplicate column"), "{err}");
        // CREATE TABLE checks clean (nothing to analyze on an empty table)
        let diags = check_sql(&mgr, "CREATE TABLE s (a INT, PRIMARY KEY (a))").expect("checks");
        assert!(diags.is_empty());
    }

    #[test]
    fn semantic_errors() {
        let mgr = loaded_manager();
        // two aggregates
        assert!(run_sql(&mgr, "SELECT AVG(alcperc), MAX(alcperc) FROM beer").is_err());
        // non-grouped column
        assert!(run_sql(&mgr, "SELECT name, COUNT(*) FROM beer GROUP BY brewery").is_err());
        // star with group by
        assert!(run_sql(&mgr, "SELECT * FROM beer GROUP BY brewery").is_err());
        // having without grouping
        assert!(run_sql(&mgr, "SELECT name FROM beer HAVING name = 'x'").is_err());
        // unknown table / column
        assert!(run_sql(&mgr, "SELECT * FROM ales").is_err());
        assert!(run_sql(&mgr, "SELECT colour FROM beer").is_err());
        // ill-typed insert
        assert!(run_sql(&mgr, "INSERT INTO beer VALUES (1, 2, 3)").is_err());
    }
}
