//! Recursive-descent parser for the SQL subset (case-insensitive
//! keywords), reusing the XRA lexer.

use mera_lang::error::{LangError, LangResult, Pos};
use mera_lang::token::{lex, Spanned, Token};

use crate::ast::*;

/// Parses one SQL statement (a trailing `;` is allowed).
pub fn parse_sql(src: &str) -> LangResult<SqlStmt> {
    let mut p = SqlParser::new(src)?;
    let stmt = p.statement()?;
    if p.peek() == Some(&Token::Semi) {
        p.bump();
    }
    p.expect_end()?;
    Ok(stmt)
}

/// Parses a `;`-separated sequence of SQL statements.
pub fn parse_sql_script(src: &str) -> LangResult<Vec<SqlStmt>> {
    let mut p = SqlParser::new(src)?;
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
        if p.peek() == Some(&Token::Semi) {
            p.bump();
        } else {
            break;
        }
    }
    p.expect_end()?;
    Ok(out)
}

struct SqlParser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl SqlParser {
    fn new(src: &str) -> LangResult<Self> {
        Ok(SqlParser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn here(&self) -> Pos {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.pos)
            .unwrap_or(Pos { line: 1, col: 1 })
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos).map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> LangResult<()> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(LangError::parse(
                self.here(),
                format!(
                    "expected '{want}', found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }

    fn expect_end(&self) -> LangResult<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(LangError::parse(
                self.here(),
                format!(
                    "unexpected trailing input starting at '{}'",
                    self.peek().expect("not at end")
                ),
            ))
        }
    }

    /// Case-insensitive keyword check.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> LangResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(LangError::parse(
                self.here(),
                format!(
                    "expected '{kw}', found '{}'",
                    self.peek()
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            ))
        }
    }

    fn ident(&mut self) -> LangResult<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(LangError::parse(
                self.here(),
                format!(
                    "expected identifier, found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }

    fn statement(&mut self) -> LangResult<SqlStmt> {
        if self.at_kw("select") {
            return Ok(SqlStmt::Select(self.select_query()?));
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let table = self.ident()?;
            self.expect_kw("values")?;
            let mut rows = vec![self.value_row()?];
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                rows.push(self.value_row()?);
            }
            return Ok(SqlStmt::Insert { table, rows });
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let where_clause = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(SqlStmt::Delete {
                table,
                where_clause,
            });
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut sets = vec![self.assignment()?];
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                sets.push(self.assignment()?);
            }
            let where_clause = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(SqlStmt::Update {
                table,
                sets,
                where_clause,
            });
        }
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            self.expect_kw("materialized")?;
            self.expect_kw("view")?;
            let name = self.ident()?;
            self.expect_kw("as")?;
            let query = self.select_query()?;
            return Ok(SqlStmt::CreateView { name, query });
        }
        Err(LangError::parse(
            self.here(),
            format!(
                "expected SELECT/INSERT/DELETE/UPDATE/CREATE, found '{}'",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ),
        ))
    }

    /// `CREATE TABLE` body: `t (c type [UNIQUE | PRIMARY KEY], …[,
    /// PRIMARY KEY (c, …)][, UNIQUE (c, …)]…)`.
    fn create_table(&mut self) -> LangResult<SqlStmt> {
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key: Option<Vec<String>> = None;
        let mut unique: Vec<Vec<String>> = Vec::new();
        loop {
            if self.at_kw("primary") {
                self.bump();
                self.expect_kw("key")?;
                let cols = self.column_list()?;
                if primary_key.replace(cols).is_some() {
                    return Err(LangError::parse(
                        self.here(),
                        "at most one PRIMARY KEY clause per table",
                    ));
                }
            } else if self.at_kw("unique") {
                self.bump();
                unique.push(self.column_list()?);
            } else {
                let col = self.ident()?;
                let dtype = self.sql_type()?;
                // column-level constraints: `c INT UNIQUE` and
                // `c INT PRIMARY KEY` are sugar for the table-level form
                loop {
                    if self.at_kw("unique") {
                        self.bump();
                        unique.push(vec![col.clone()]);
                    } else if self.at_kw("primary") {
                        self.bump();
                        self.expect_kw("key")?;
                        if primary_key.replace(vec![col.clone()]).is_some() {
                            return Err(LangError::parse(
                                self.here(),
                                "at most one PRIMARY KEY clause per table",
                            ));
                        }
                    } else {
                        break;
                    }
                }
                columns.push((col, dtype));
            }
            if self.peek() == Some(&Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        if columns.is_empty() {
            return Err(LangError::parse(
                self.here(),
                "CREATE TABLE needs at least one column",
            ));
        }
        Ok(SqlStmt::CreateTable {
            table,
            columns,
            primary_key,
            unique,
        })
    }

    /// A parenthesized comma-separated column-name list.
    fn column_list(&mut self) -> LangResult<Vec<String>> {
        self.expect(&Token::LParen)?;
        let mut cols = vec![self.ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            cols.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        Ok(cols)
    }

    /// A SQL column type, mapped onto the algebra's domains.
    fn sql_type(&mut self) -> LangResult<mera_core::types::DataType> {
        use mera_core::types::DataType;
        let pos = self.here();
        let name = self.ident()?;
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "REAL" | "FLOAT" | "DOUBLE" => Ok(DataType::Real),
            "STR" | "STRING" | "TEXT" | "VARCHAR" | "CHAR" => {
                // tolerate a length parameter: VARCHAR(20)
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    match self.bump() {
                        Some(Token::Int(_)) => {}
                        _ => {
                            return Err(LangError::parse(
                                pos,
                                format!("expected a length after {name}("),
                            ))
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                Ok(DataType::Str)
            }
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "DATE" => Ok(DataType::Date),
            "TIME" => Ok(DataType::Time),
            "MONEY" | "DECIMAL" => Ok(DataType::Money),
            other => Err(LangError::parse(pos, format!("unknown type '{other}'"))),
        }
    }

    fn assignment(&mut self) -> LangResult<(String, SqlExpr)> {
        let col = self.ident()?;
        self.expect(&Token::Eq)?;
        let e = self.expr()?;
        Ok((col, e))
    }

    fn value_row(&mut self) -> LangResult<Vec<SqlExpr>> {
        self.expect(&Token::LParen)?;
        let mut vals = vec![self.expr()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            vals.push(self.expr()?);
        }
        self.expect(&Token::RParen)?;
        Ok(vals)
    }

    fn select_query(&mut self) -> LangResult<SelectQuery> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            from.push(self.ident()?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.col_ref()?);
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                group_by.push(self.col_ref()?);
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectQuery {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> LangResult<SelectItem> {
        if self.peek() == Some(&Token::Star) {
            self.bump();
            return Ok(SelectItem::Star);
        }
        if let Some(call) = self.try_agg_call()? {
            let alias = self.optional_alias()?;
            return Ok(SelectItem::Aggregate { call, alias });
        }
        let expr = self.expr()?;
        let alias = self.optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn optional_alias(&mut self) -> LangResult<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    /// Recognises `AGG(col)` / `COUNT(*)` without consuming on failure.
    fn try_agg_call(&mut self) -> LangResult<Option<AggCall>> {
        let Some(Token::Ident(name)) = self.peek() else {
            return Ok(None);
        };
        let upper = name.to_ascii_uppercase();
        if !matches!(
            upper.as_str(),
            "AVG" | "SUM" | "MIN" | "MAX" | "CNT" | "COUNT" | "STDDEV" | "MEDIAN"
        ) {
            return Ok(None);
        }
        if self.toks.get(self.pos + 1).map(|s| &s.token) != Some(&Token::LParen) {
            return Ok(None);
        }
        self.bump(); // name
        self.bump(); // (
        let arg = if self.peek() == Some(&Token::Star) {
            self.bump();
            None
        } else {
            Some(self.col_ref()?)
        };
        self.expect(&Token::RParen)?;
        Ok(Some(AggCall { func: upper, arg }))
    }

    fn col_ref(&mut self) -> LangResult<ColRef> {
        let first = self.ident()?;
        if self.peek() == Some(&Token::Dot) {
            self.bump();
            let column = self.ident()?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    // expression precedence: OR < AND < NOT < cmp < +- < */ < unary < prim
    fn expr(&mut self) -> LangResult<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary(SqlBinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> LangResult<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary(SqlBinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> LangResult<SqlExpr> {
        if self.eat_kw("not") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> LangResult<SqlExpr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => SqlBinOp::Eq,
            Some(Token::Ne) => SqlBinOp::Ne,
            Some(Token::Lt) => SqlBinOp::Lt,
            Some(Token::Le) => SqlBinOp::Le,
            Some(Token::Gt) => SqlBinOp::Gt,
            Some(Token::Ge) => SqlBinOp::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(SqlExpr::Binary(op, Box::new(left), Box::new(right)))
    }

    fn add_expr(&mut self) -> LangResult<SqlExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => SqlBinOp::Add,
                Some(Token::Minus) => SqlBinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = SqlExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> LangResult<SqlExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => SqlBinOp::Mul,
                Some(Token::Slash) => SqlBinOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.unary_expr()?;
            left = SqlExpr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> LangResult<SqlExpr> {
        if self.peek() == Some(&Token::Minus) {
            self.bump();
            return Ok(SqlExpr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> LangResult<SqlExpr> {
        match self.peek() {
            Some(Token::Int(v)) => {
                let v = *v;
                self.bump();
                Ok(SqlExpr::Int(v))
            }
            Some(Token::Real(v)) => {
                let v = *v;
                self.bump();
                Ok(SqlExpr::Real(v))
            }
            Some(Token::Str(_)) => {
                if let Some(Token::Str(s)) = self.bump() {
                    Ok(SqlExpr::Str(s))
                } else {
                    unreachable!("peek said Str")
                }
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => {
                self.bump();
                Ok(SqlExpr::Bool(true))
            }
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => {
                self.bump();
                Ok(SqlExpr::Bool(false))
            }
            Some(Token::Ident(_)) => {
                if let Some(call) = self.try_agg_call()? {
                    return Ok(SqlExpr::Agg(call));
                }
                Ok(SqlExpr::Col(self.col_ref()?))
            }
            Some(Token::LParen) => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            other => Err(LangError::parse(
                self.here(),
                format!(
                    "expected an expression, found '{}'",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_2_sql_parses() {
        let q = parse_sql(
            "SELECT country, AVG(alcperc) FROM beer, brewery \
             WHERE beer.brewery = brewery.name GROUP BY country",
        )
        .expect("parses");
        let SqlStmt::Select(q) = q else {
            panic!("expected select");
        };
        assert_eq!(q.from, vec!["beer", "brewery"]);
        assert_eq!(q.group_by, vec![ColRef::new("country")]);
        assert_eq!(q.items.len(), 2);
        assert!(matches!(
            q.items[1],
            SelectItem::Aggregate { ref call, .. } if call.func == "AVG"
        ));
        let Some(SqlExpr::Binary(SqlBinOp::Eq, l, r)) = q.where_clause else {
            panic!("expected equality where");
        };
        assert_eq!(*l, SqlExpr::Col(ColRef::qualified("beer", "brewery")));
        assert_eq!(*r, SqlExpr::Col(ColRef::qualified("brewery", "name")));
    }

    #[test]
    fn example_4_1_sql_parses() {
        let q = parse_sql("UPDATE beer SET alcperc = alcperc * 1.1 WHERE brewery = 'Guineken'")
            .expect("parses");
        let SqlStmt::Update {
            table,
            sets,
            where_clause,
        } = q
        else {
            panic!("expected update");
        };
        assert_eq!(table, "beer");
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].0, "alcperc");
        assert!(where_clause.is_some());
    }

    #[test]
    fn insert_and_delete_parse() {
        let q =
            parse_sql("INSERT INTO beer VALUES ('G', 'G', 5.0), ('H', 'H', 4.5);").expect("parses");
        assert!(matches!(q, SqlStmt::Insert { ref rows, .. } if rows.len() == 2));
        let q = parse_sql("DELETE FROM beer WHERE alcperc < 2.0").expect("parses");
        assert!(matches!(
            q,
            SqlStmt::Delete {
                where_clause: Some(_),
                ..
            }
        ));
        let q = parse_sql("DELETE FROM beer").expect("parses");
        assert!(matches!(
            q,
            SqlStmt::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn distinct_star_having_alias() {
        let q = parse_sql("SELECT DISTINCT * FROM beer WHERE alcperc >= 5.0").expect("parses");
        let SqlStmt::Select(q) = q else { panic!() };
        assert!(q.distinct);
        assert_eq!(q.items, vec![SelectItem::Star]);

        let q = parse_sql(
            "SELECT brewery, COUNT(*) AS n FROM beer GROUP BY brewery HAVING COUNT(*) > 1",
        )
        .expect("parses");
        let SqlStmt::Select(q) = q else { panic!() };
        assert!(matches!(
            q.items[1],
            SelectItem::Aggregate { ref alias, .. } if alias.as_deref() == Some("n")
        ));
        assert!(q.having.is_some());
    }

    #[test]
    fn having_with_agg_parses_as_expression() {
        // HAVING AVG(alcperc) > 5 — the aggregate call inside HAVING is
        // parsed structurally by the translator; the parser treats it as a
        // col-ref-like call only in select lists, so reject gracefully:
        let q = parse_sql(
            "SELECT country, AVG(alcperc) FROM brewery GROUP BY country HAVING country <> 'DE'",
        );
        assert!(q.is_ok());
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_sql_script("INSERT INTO r VALUES (1); SELECT * FROM r; DELETE FROM r;")
            .expect("parses");
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse_sql("select * from r").is_ok());
        assert!(parse_sql("SeLeCt * FrOm r").is_ok());
    }

    #[test]
    fn create_table_parses() {
        use mera_core::types::DataType;
        let q = parse_sql(
            "CREATE TABLE member (name VARCHAR(20), town TEXT, age INT, \
             PRIMARY KEY (name, town))",
        )
        .expect("parses");
        let SqlStmt::CreateTable {
            table,
            columns,
            primary_key,
            unique,
        } = q
        else {
            panic!("expected create table");
        };
        assert_eq!(table, "member");
        assert_eq!(
            columns,
            vec![
                ("name".into(), DataType::Str),
                ("town".into(), DataType::Str),
                ("age".into(), DataType::Int),
            ]
        );
        assert_eq!(primary_key, Some(vec!["name".into(), "town".into()]));
        assert!(unique.is_empty());
        // without a key clause
        let q = parse_sql("create table r (a integer, b double)").expect("parses");
        assert!(matches!(
            q,
            SqlStmt::CreateTable {
                primary_key: None,
                ..
            }
        ));
        // two key clauses, empty column list, unknown type
        assert!(parse_sql("CREATE TABLE r (a INT, PRIMARY KEY (a), PRIMARY KEY (a))").is_err());
        assert!(parse_sql("CREATE TABLE r (PRIMARY KEY (a))").is_err());
        assert!(parse_sql("CREATE TABLE r (a BLOB)").is_err());
    }

    #[test]
    fn create_table_unique_parses() {
        let q = parse_sql(
            "CREATE TABLE member (id INT PRIMARY KEY, email TEXT UNIQUE, \
             first TEXT, last TEXT, UNIQUE (first, last))",
        )
        .expect("parses");
        let SqlStmt::CreateTable {
            primary_key,
            unique,
            columns,
            ..
        } = q
        else {
            panic!("expected create table");
        };
        assert_eq!(columns.len(), 4);
        assert_eq!(primary_key, Some(vec!["id".into()]));
        assert_eq!(
            unique,
            vec![
                vec!["email".to_string()],
                vec!["first".to_string(), "last".to_string()],
            ]
        );
        // a column may carry both markers; two column-level primary keys
        // collide like two table-level clauses
        assert!(parse_sql("CREATE TABLE r (a INT UNIQUE PRIMARY KEY)").is_ok());
        assert!(parse_sql("CREATE TABLE r (a INT PRIMARY KEY, b INT PRIMARY KEY)").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_sql("SELECT FROM r").is_err());
        assert!(parse_sql("UPDATE r alcperc = 1").is_err());
        assert!(parse_sql("INSERT INTO r (1)").is_err());
        assert!(parse_sql("SELECT * FROM r GROUP country").is_err());
        assert!(parse_sql("DROP TABLE r").is_err());
    }
}
