//! The SQL subset's AST.
//!
//! Coverage mirrors what the paper uses when it presents SQL forms of its
//! examples (§3.2 and §4.1): single-block `SELECT` with `FROM` list,
//! `WHERE`, `GROUP BY`, `HAVING` and `DISTINCT`; plus `INSERT INTO …
//! VALUES`, `DELETE FROM`, and `UPDATE … SET`. One aggregate call per
//! query block (the algebra's `γ` carries one aggregate function).

use mera_core::types::DataType;

/// A possibly-qualified column reference `[table.]column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    /// Optional qualifier (table name).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// An unqualified column.
    pub fn new(column: impl Into<String>) -> Self {
        ColRef {
            table: None,
            column: column.into(),
        }
    }

    /// A qualified column.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Binary operators in SQL expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Column reference.
    Col(ColRef),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Binary operation.
    Binary(SqlBinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// `NOT e`.
    Not(Box<SqlExpr>),
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// An aggregate call — only meaningful inside `HAVING`, where it
    /// refers to the query's aggregate output column.
    Agg(AggCall),
}

/// One aggregate call `AGG(col)` or `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Function name (uppercased).
    pub func: String,
    /// Aggregated column; `None` for `COUNT(*)`.
    pub arg: Option<ColRef>,
}

/// An item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Star,
    /// A scalar expression with an optional `AS` alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// Optional output name.
        alias: Option<String>,
    },
    /// An aggregate call with an optional `AS` alias.
    Aggregate {
        /// The call.
        call: AggCall,
        /// Optional output name.
        alias: Option<String>,
    },
}

/// A single-block `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// The select list (non-empty).
    pub items: Vec<SelectItem>,
    /// `FROM` tables, in order.
    pub from: Vec<String>,
    /// Optional `WHERE` condition.
    pub where_clause: Option<SqlExpr>,
    /// `GROUP BY` columns (empty = no grouping).
    pub group_by: Vec<ColRef>,
    /// Optional `HAVING` condition (requires grouping or an aggregate).
    pub having: Option<SqlExpr>,
}

/// One SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStmt {
    /// A query.
    Select(SelectQuery),
    /// `INSERT INTO t VALUES (…), …`.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<SqlExpr>>,
    },
    /// `DELETE FROM t [WHERE …]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional condition.
        where_clause: Option<SqlExpr>,
    },
    /// `UPDATE t SET c = e, … [WHERE …]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments in order.
        sets: Vec<(String, SqlExpr)>,
        /// Optional condition.
        where_clause: Option<SqlExpr>,
    },
    /// `CREATE MATERIALIZED VIEW v AS SELECT …`.
    CreateView {
        /// View name.
        name: String,
        /// The defining query.
        query: SelectQuery,
    },
    /// `CREATE TABLE t (c type [UNIQUE | PRIMARY KEY], …[, PRIMARY KEY
    /// (c, …)][, UNIQUE (c, …)]…)`.
    CreateTable {
        /// Table name.
        table: String,
        /// `(column name, domain)` pairs in declaration order.
        columns: Vec<(String, DataType)>,
        /// The `PRIMARY KEY` column list, if declared (column-level or
        /// table-level — at most one either way).
        primary_key: Option<Vec<String>>,
        /// `UNIQUE` constraints, each a column list, in declaration
        /// order. Like the primary key, each lowers to a key constraint
        /// on the catalog.
        unique: Vec<Vec<String>>,
    },
}
