//! Translation of the SQL subset into the multi-set extended relational
//! algebra — the paper's "formal background for SQL" role, following the
//! classic scheme of Ceri & Gottlob (the paper's reference \[5\]):
//!
//! * `FROM t₁, …, tₙ` → product chain `t₁ × … × tₙ`,
//! * `WHERE φ` → `σ_φ`,
//! * plain `SELECT` list → (extended) projection `π`,
//! * `SELECT DISTINCT` → `δ`,
//! * `GROUP BY` + one aggregate → `γ_{a,f,p}` (then `σ` for `HAVING` and a
//!   final `π` to lay columns out in `SELECT`-list order),
//! * `INSERT`/`DELETE`/`UPDATE` → the statements of Definition 4.1.
//!
//! SQL's *bag* behaviour drops out automatically: no `δ` is inserted
//! anywhere the user did not write `DISTINCT`, so duplicates flow exactly
//! as SQL prescribes — which is the paper's point.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{Aggregate, ArithOp, CmpOp, RelExpr, ScalarExpr, SchemaProvider};
use mera_lang::error::{LangError, LangResult};
use mera_txn::Statement;

use crate::ast::*;

/// A translated SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Translated {
    /// A `SELECT` becomes a query statement.
    Query(RelExpr),
    /// DML becomes an update statement.
    Statement(Statement),
    /// `CREATE MATERIALIZED VIEW` becomes a view definition — handled by
    /// the catalog, not the transaction machinery.
    CreateView {
        /// View name.
        name: String,
        /// The defining algebra expression.
        expr: RelExpr,
    },
    /// `CREATE TABLE` becomes a relation schema plus key constraints —
    /// all catalog operations.
    CreateTable {
        /// The new relation's schema.
        schema: RelationSchema,
        /// Every declared key as 1-based attribute indexes: the
        /// `PRIMARY KEY` first (if any), then each `UNIQUE` constraint
        /// in declaration order, duplicates collapsed. All lower to the
        /// same key-catalog machinery (E0401 enforcement at commit, WAL
        /// `DeclareKey`, property-pass visibility).
        keys: Vec<Vec<usize>>,
    },
}

impl Translated {
    /// Converts to an executable statement (`SELECT` → `?E`).
    ///
    /// # Panics
    /// On [`Translated::CreateView`] and [`Translated::CreateTable`]:
    /// these are catalog operations, not transaction statements — callers
    /// must dispatch them to the catalog APIs first.
    pub fn into_statement(self) -> Statement {
        match self {
            Translated::Query(e) => Statement::query(e),
            Translated::Statement(s) => s,
            Translated::CreateView { name, .. } => {
                panic!("CREATE MATERIALIZED VIEW '{name}' is not a transaction statement")
            }
            Translated::CreateTable { schema, .. } => {
                panic!(
                    "CREATE TABLE '{}' is not a transaction statement",
                    schema.name
                )
            }
        }
    }
}

/// Translates one SQL statement against a catalog.
pub fn translate<P: SchemaProvider>(stmt: &SqlStmt, provider: &P) -> LangResult<Translated> {
    match stmt {
        SqlStmt::Select(q) => Ok(Translated::Query(translate_select(q, provider)?)),
        SqlStmt::Insert { table, rows } => {
            let schema = provider.relation_schema(table)?;
            let mut rel = Relation::empty(Arc::clone(&schema));
            for row in rows {
                let vals: LangResult<Vec<Value>> = row.iter().map(const_value).collect();
                rel.insert(Tuple::new(vals?), 1)?;
            }
            Ok(Translated::Statement(Statement::insert(
                table.clone(),
                RelExpr::values(rel),
            )))
        }
        SqlStmt::Delete {
            table,
            where_clause,
        } => {
            let schema = provider.relation_schema(table)?;
            let env = NameEnv::for_table(table, &schema);
            let mut expr = RelExpr::scan(table.clone());
            if let Some(w) = where_clause {
                expr = expr.select(translate_expr(w, &env)?);
            }
            Ok(Translated::Statement(Statement::delete(
                table.clone(),
                expr,
            )))
        }
        SqlStmt::Update {
            table,
            sets,
            where_clause,
        } => {
            let schema = provider.relation_schema(table)?;
            let env = NameEnv::for_table(table, &schema);
            let mut selected = RelExpr::scan(table.clone());
            if let Some(w) = where_clause {
                selected = selected.select(translate_expr(w, &env)?);
            }
            // build the structure-preserving expression list: identity for
            // unassigned attributes, the SET expression otherwise
            let mut exprs: Vec<ScalarExpr> = (1..=schema.arity()).map(ScalarExpr::Attr).collect();
            for (col, e) in sets {
                let idx = schema.index_of(col)?;
                exprs[idx - 1] = translate_expr(e, &env)?;
            }
            Ok(Translated::Statement(Statement::update(
                table.clone(),
                selected,
                exprs,
            )))
        }
        SqlStmt::CreateView { name, query } => Ok(Translated::CreateView {
            name: name.clone(),
            expr: translate_select(query, provider)?,
        }),
        SqlStmt::CreateTable {
            table,
            columns,
            primary_key,
            unique,
        } => {
            for (i, (c, _)) in columns.iter().enumerate() {
                if columns[..i].iter().any(|(other, _)| other == c) {
                    return Err(LangError::Semantic(CoreError::TypeError(format!(
                        "duplicate column '{c}' in CREATE TABLE {table}"
                    ))));
                }
            }
            let schema = Schema::new(
                columns
                    .iter()
                    .map(|(n, t)| Attribute::named(n.clone(), *t))
                    .collect(),
            );
            let resolve = |cols: &[String]| {
                cols.iter()
                    .map(|c| schema.index_of(c).map_err(LangError::Semantic))
                    .collect::<LangResult<Vec<usize>>>()
            };
            let mut keys = Vec::new();
            if let Some(cols) = primary_key {
                keys.push(resolve(cols)?);
            }
            for cols in unique {
                let attrs = resolve(cols)?;
                // UNIQUE (a) next to PRIMARY KEY (a) is the same
                // constraint; declare it once
                if !keys.contains(&attrs) {
                    keys.push(attrs);
                }
            }
            Ok(Translated::CreateTable {
                schema: RelationSchema::new(table.clone(), schema),
                keys,
            })
        }
    }
}

/// The name environment of a `FROM` clause: 1-based positions tagged with
/// their table and column names.
struct NameEnv {
    entries: Vec<(String, Option<String>)>, // (table, column name)
}

impl NameEnv {
    fn for_table(table: &str, schema: &Schema) -> Self {
        let mut env = NameEnv {
            entries: Vec::with_capacity(schema.arity()),
        };
        env.push_table(table, schema);
        env
    }

    fn push_table(&mut self, table: &str, schema: &Schema) {
        for a in schema.attributes() {
            self.entries.push((table.to_owned(), a.name.clone()));
        }
    }

    /// Resolves a column reference to its 1-based position; ambiguity (two
    /// matches) and misses are errors.
    fn resolve(&self, col: &ColRef) -> LangResult<usize> {
        let matches: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (t, c))| {
                c.as_deref() == Some(col.column.as_str())
                    && col.table.as_deref().map(|q| q == t).unwrap_or(true)
            })
            .map(|(i, _)| i + 1)
            .collect();
        match matches.as_slice() {
            [one] => Ok(*one),
            [] => Err(LangError::Semantic(CoreError::UnknownAttribute(
                col.to_string(),
            ))),
            _ => Err(LangError::Semantic(CoreError::TypeError(format!(
                "ambiguous column reference '{col}'"
            )))),
        }
    }
}

fn translate_select<P: SchemaProvider>(q: &SelectQuery, provider: &P) -> LangResult<RelExpr> {
    if q.items.is_empty() || q.from.is_empty() {
        return Err(LangError::Semantic(CoreError::TypeError(
            "SELECT needs a select list and a FROM clause".into(),
        )));
    }
    // FROM: product chain, building the name environment
    let mut env = NameEnv { entries: vec![] };
    let mut from_iter = q.from.iter();
    let first = from_iter.next().expect("non-empty FROM");
    env.push_table(first, provider.relation_schema(first)?.as_ref());
    let mut expr = RelExpr::scan(first.clone());
    for table in from_iter {
        env.push_table(table, provider.relation_schema(table)?.as_ref());
        expr = expr.product(RelExpr::scan(table.clone()));
    }
    // WHERE
    if let Some(w) = &q.where_clause {
        expr = expr.select(translate_expr(w, &env)?);
    }

    let aggregates: Vec<(&AggCall, Option<&String>)> = q
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Aggregate { call, alias } => Some((call, alias.as_ref())),
            _ => None,
        })
        .collect();

    if q.group_by.is_empty() && aggregates.is_empty() {
        // plain projection block
        let mut out_exprs = Vec::new();
        for item in &q.items {
            match item {
                SelectItem::Star => {
                    out_exprs.extend((1..=env.entries.len()).map(ScalarExpr::Attr));
                }
                SelectItem::Expr { expr: e, .. } => out_exprs.push(translate_expr(e, &env)?),
                SelectItem::Aggregate { .. } => unreachable!("no aggregates in this branch"),
            }
        }
        expr = project(expr, out_exprs);
        if q.having.is_some() {
            return Err(LangError::Semantic(CoreError::TypeError(
                "HAVING requires GROUP BY or an aggregate".into(),
            )));
        }
        if q.distinct {
            expr = expr.distinct();
        }
        return Ok(expr);
    }

    // aggregation block: exactly one aggregate (the algebra's γ carries a
    // single aggregate function)
    if aggregates.len() != 1 {
        return Err(LangError::Semantic(CoreError::TypeError(format!(
            "exactly one aggregate per query block is supported, found {}",
            aggregates.len()
        ))));
    }
    let (call, _) = aggregates[0];
    let agg = Aggregate::parse(&call.func).ok_or_else(|| {
        LangError::Semantic(CoreError::TypeError(format!(
            "unknown aggregate '{}'",
            call.func
        )))
    })?;
    let agg_attr = match &call.arg {
        Some(col) => env.resolve(col)?,
        None => 1, // COUNT(*): the dummy parameter of Definition 3.3
    };
    let keys: LangResult<Vec<usize>> = q.group_by.iter().map(|c| env.resolve(c)).collect();
    let keys = keys?;
    expr = expr.group_by(&keys, agg, agg_attr);
    // output layout of γ: keys in clause order, then the aggregate
    let agg_pos = keys.len() + 1;
    let key_pos = |col: &ColRef| -> LangResult<usize> {
        let resolved = env.resolve(col)?;
        keys.iter()
            .position(|&k| k == resolved)
            .map(|p| p + 1)
            .ok_or_else(|| {
                LangError::Semantic(CoreError::TypeError(format!(
                    "column '{col}' must appear in GROUP BY"
                )))
            })
    };
    // HAVING runs over the γ output
    if let Some(h) = &q.having {
        let pred = translate_having(h, &key_pos, call, agg_pos)?;
        expr = expr.select(pred);
    }
    // final projection into SELECT-list order
    let mut out_attrs = Vec::with_capacity(q.items.len());
    for item in &q.items {
        match item {
            SelectItem::Star => {
                return Err(LangError::Semantic(CoreError::TypeError(
                    "SELECT * cannot be combined with GROUP BY".into(),
                )))
            }
            SelectItem::Expr {
                expr: SqlExpr::Col(c),
                ..
            } => out_attrs.push(key_pos(c)?),
            SelectItem::Expr { .. } => {
                return Err(LangError::Semantic(CoreError::TypeError(
                    "grouped SELECT items must be grouping columns or the aggregate".into(),
                )))
            }
            SelectItem::Aggregate { .. } => out_attrs.push(agg_pos),
        }
    }
    // skip the no-op projection when the layout already matches
    let identity: Vec<usize> = (1..=agg_pos).collect();
    if out_attrs != identity {
        expr = expr.project(&out_attrs);
    }
    if q.distinct {
        expr = expr.distinct();
    }
    Ok(expr)
}

/// Wraps an expression list as a plain or extended projection.
fn project(input: RelExpr, exprs: Vec<ScalarExpr>) -> RelExpr {
    let plain: Option<Vec<usize>> = exprs
        .iter()
        .map(|e| match e {
            ScalarExpr::Attr(i) => Some(*i),
            _ => None,
        })
        .collect();
    match plain {
        Some(attrs) if !attrs.is_empty() => input.project(&attrs),
        _ => input.ext_project(exprs),
    }
}

/// Translates a scalar SQL expression against a FROM environment.
fn translate_expr(e: &SqlExpr, env: &NameEnv) -> LangResult<ScalarExpr> {
    Ok(match e {
        SqlExpr::Col(c) => ScalarExpr::Attr(env.resolve(c)?),
        SqlExpr::Int(v) => ScalarExpr::int(*v),
        SqlExpr::Real(v) => ScalarExpr::Literal(Value::real(*v).map_err(LangError::Semantic)?),
        SqlExpr::Str(s) => ScalarExpr::str(s.clone()),
        SqlExpr::Bool(b) => ScalarExpr::bool(*b),
        SqlExpr::Not(inner) => translate_expr(inner, env)?.not(),
        SqlExpr::Neg(inner) => match translate_expr(inner, env)? {
            ScalarExpr::Literal(Value::Int(v)) => ScalarExpr::Literal(Value::Int(
                v.checked_neg().ok_or(CoreError::Overflow("negation"))?,
            )),
            ScalarExpr::Literal(Value::Real(r)) => {
                ScalarExpr::Literal(Value::real(-r.get()).map_err(LangError::Semantic)?)
            }
            other => ScalarExpr::Neg(Arc::new(other)),
        },
        SqlExpr::Agg(_) => {
            return Err(LangError::Semantic(CoreError::TypeError(
                "aggregate calls are only allowed in the SELECT list and HAVING".into(),
            )))
        }
        SqlExpr::Binary(op, l, r) => {
            let l = translate_expr(l, env)?;
            let r = translate_expr(r, env)?;
            apply_binop(*op, l, r)
        }
    })
}

fn apply_binop(op: SqlBinOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    match op {
        SqlBinOp::Add => l.arith(ArithOp::Add, r),
        SqlBinOp::Sub => l.arith(ArithOp::Sub, r),
        SqlBinOp::Mul => l.arith(ArithOp::Mul, r),
        SqlBinOp::Div => l.arith(ArithOp::Div, r),
        SqlBinOp::Eq => l.cmp(CmpOp::Eq, r),
        SqlBinOp::Ne => l.cmp(CmpOp::Ne, r),
        SqlBinOp::Lt => l.cmp(CmpOp::Lt, r),
        SqlBinOp::Le => l.cmp(CmpOp::Le, r),
        SqlBinOp::Gt => l.cmp(CmpOp::Gt, r),
        SqlBinOp::Ge => l.cmp(CmpOp::Ge, r),
        SqlBinOp::And => l.and(r),
        SqlBinOp::Or => l.or(r),
    }
}

/// Translates a HAVING predicate over the γ output schema: grouping
/// columns resolve through `key_pos`, and an aggregate call matching the
/// SELECT aggregate resolves to the aggregate output column.
fn translate_having(
    e: &SqlExpr,
    key_pos: &dyn Fn(&ColRef) -> LangResult<usize>,
    select_agg: &AggCall,
    agg_pos: usize,
) -> LangResult<ScalarExpr> {
    Ok(match e {
        SqlExpr::Col(c) => ScalarExpr::Attr(key_pos(c)?),
        SqlExpr::Agg(call) => {
            if call == select_agg {
                ScalarExpr::Attr(agg_pos)
            } else {
                return Err(LangError::Semantic(CoreError::TypeError(format!(
                    "HAVING aggregate {}({}) must match the SELECT aggregate",
                    call.func,
                    call.arg
                        .as_ref()
                        .map(|c| c.to_string())
                        .unwrap_or_else(|| "*".into())
                ))));
            }
        }
        SqlExpr::Int(v) => ScalarExpr::int(*v),
        SqlExpr::Real(v) => ScalarExpr::Literal(Value::real(*v).map_err(LangError::Semantic)?),
        SqlExpr::Str(s) => ScalarExpr::str(s.clone()),
        SqlExpr::Bool(b) => ScalarExpr::bool(*b),
        SqlExpr::Not(inner) => translate_having(inner, key_pos, select_agg, agg_pos)?.not(),
        SqlExpr::Neg(inner) => ScalarExpr::Neg(Arc::new(translate_having(
            inner, key_pos, select_agg, agg_pos,
        )?)),
        SqlExpr::Binary(op, l, r) => {
            let l = translate_having(l, key_pos, select_agg, agg_pos)?;
            let r = translate_having(r, key_pos, select_agg, agg_pos)?;
            apply_binop(*op, l, r)
        }
    })
}

/// Evaluates a literal-only expression (INSERT rows).
fn const_value(e: &SqlExpr) -> LangResult<Value> {
    match e {
        SqlExpr::Int(v) => Ok(Value::Int(*v)),
        SqlExpr::Real(v) => Value::real(*v).map_err(LangError::Semantic),
        SqlExpr::Str(s) => Ok(Value::str(s.as_str())),
        SqlExpr::Bool(b) => Ok(Value::Bool(*b)),
        SqlExpr::Neg(inner) => match const_value(inner)? {
            Value::Int(v) => Ok(Value::Int(
                v.checked_neg()
                    .ok_or(LangError::Semantic(CoreError::Overflow("negation")))?,
            )),
            Value::Real(r) => Value::real(-r.get()).map_err(LangError::Semantic),
            other => Err(LangError::Semantic(CoreError::TypeError(format!(
                "cannot negate {}",
                other.data_type()
            )))),
        },
        other => Err(LangError::Semantic(CoreError::TypeError(format!(
            "INSERT VALUES must be literals, found {other:?}"
        )))),
    }
}
