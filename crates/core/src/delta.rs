//! Signed counted bags: multiplicity functions into ℤ instead of ℕ.
//!
//! The paper models a relation instance as `R : dom(R) → ℕ` (Definition
//! 2.2). Incremental view maintenance needs the *difference* of two such
//! instances, which lives in the larger space of ℤ-valued multiplicity
//! functions — the semiring generalisation studied in "Codd's Theorem for
//! Databases over Semirings" (Badia, Kolaitis & Noguera). A [`SignedBag`]
//! is that difference object: positive multiplicities are insertions,
//! negative ones retractions.
//!
//! Canonical form is maintained on every mutation: an element with
//! multiplicity 0 is never stored, mirroring the unsigned [`Bag`]'s
//! invariant. This makes equality pointwise and `support_len() == 0`
//! equivalent to "the delta is a no-op".

use std::hash::Hash;

use rustc_hash::FxHashMap;

use crate::error::{CoreError, CoreResult};
use crate::multiset::Bag;

/// A finite ℤ-multiplicity multi-set over `T`, stored as
/// `element → non-zero signed multiplicity`.
#[derive(Debug, Clone)]
pub struct SignedBag<T: Eq + Hash> {
    counts: FxHashMap<T, i64>,
}

impl<T: Eq + Hash> Default for SignedBag<T> {
    fn default() -> Self {
        SignedBag {
            counts: FxHashMap::default(),
        }
    }
}

impl<T: Eq + Hash + Clone> SignedBag<T> {
    /// The empty (no-op) delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when every multiplicity is zero — the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of elements with non-zero multiplicity (the support size).
    pub fn support_len(&self) -> usize {
        self.counts.len()
    }

    /// The signed multiplicity `Δ(x)`; 0 when absent.
    pub fn multiplicity(&self, x: &T) -> i64 {
        self.counts.get(x).copied().unwrap_or(0)
    }

    /// Adds `m` (possibly negative) occurrences of `x`, dropping the entry
    /// if the multiplicity cancels to zero — the canonicalisation step that
    /// keeps zero-multiplicity rows out of the representation.
    pub fn insert(&mut self, x: T, m: i64) -> CoreResult<()> {
        if m == 0 {
            return Ok(());
        }
        match self.counts.entry(x) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let next = e
                    .get()
                    .checked_add(m)
                    .ok_or(CoreError::Overflow("signed multiplicity"))?;
                if next == 0 {
                    e.remove();
                } else {
                    *e.get_mut() = next;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m);
            }
        }
        Ok(())
    }

    /// Folds another delta into this one (pointwise sum; `Δ₁ ⊎ Δ₂` in the
    /// ℤ-semiring), consuming it.
    pub fn merge(&mut self, other: SignedBag<T>) -> CoreResult<()> {
        for (x, m) in other.counts {
            self.insert(x, m)?;
        }
        Ok(())
    }

    /// Negates every multiplicity in place — turns an insertion delta into
    /// the retraction that undoes it.
    pub fn negate(&mut self) {
        for m in self.counts.values_mut() {
            *m = -*m;
        }
    }

    /// Iterates `(element, signed multiplicity)` pairs; multiplicities are
    /// never zero.
    pub fn iter(&self) -> impl Iterator<Item = (&T, i64)> {
        self.counts.iter().map(|(x, &m)| (x, m))
    }

    /// The delta that transforms `old` into `new`:
    /// `Δ(x) = new(x) − old(x)` pointwise.
    pub fn from_diff(old: &Bag<T>, new: &Bag<T>) -> CoreResult<Self> {
        let to_i64 = |m: u64| -> CoreResult<i64> {
            i64::try_from(m).map_err(|_| CoreError::Overflow("signed multiplicity"))
        };
        let mut delta = SignedBag::new();
        for (x, m) in new.iter() {
            delta.insert(x.clone(), to_i64(m)?)?;
        }
        for (x, m) in old.iter() {
            delta.insert(x.clone(), -to_i64(m)?)?;
        }
        Ok(delta)
    }

    /// Records `m` unsigned occurrences with a sign: the bridge from the
    /// engine's ℕ-valued results to signed form.
    pub fn insert_unsigned(&mut self, x: T, m: u64, positive: bool) -> CoreResult<()> {
        let m = i64::try_from(m).map_err(|_| CoreError::Overflow("signed multiplicity"))?;
        self.insert(x, if positive { m } else { -m })
    }

    /// Applies the delta to an ℕ-valued bag, failing with
    /// [`CoreError::NegativeMultiplicity`] if any element would end up
    /// below zero — the case where a retraction outruns the base state,
    /// which a correctly-maintained delta never produces.
    pub fn apply_to(&self, base: &Bag<T>) -> CoreResult<Bag<T>> {
        let mut out = base.clone();
        self.apply_in_place(&mut out)?;
        Ok(out)
    }

    /// In-place variant of [`SignedBag::apply_to`].
    pub fn apply_in_place(&self, base: &mut Bag<T>) -> CoreResult<()> {
        for (x, m) in self.iter() {
            if m > 0 {
                base.insert(x.clone(), m as u64)?;
            } else {
                let want = m.unsigned_abs();
                let removed = base.remove(x, want);
                if removed != want {
                    return Err(CoreError::NegativeMultiplicity("delta application"));
                }
            }
        }
        Ok(())
    }

    /// Splits into `(insertions, retractions)` as unsigned bags — the form
    /// the ℕ-only engine kernels can evaluate. `positive ⊎ (−negative)`
    /// reconstructs the delta.
    pub fn split(&self) -> (Bag<T>, Bag<T>) {
        let mut pos = Bag::new();
        let mut neg = Bag::new();
        for (x, m) in self.iter() {
            if m > 0 {
                pos.insert(x.clone(), m as u64).expect("positive part fits");
            } else {
                neg.insert(x.clone(), m.unsigned_abs())
                    .expect("negative part fits");
            }
        }
        (pos, neg)
    }
}

/// Pointwise multiplicity equality; canonical form makes this a plain map
/// comparison.
impl<T: Eq + Hash> PartialEq for SignedBag<T> {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
    }
}

impl<T: Eq + Hash> Eq for SignedBag<T> {}

impl<T: Eq + Hash + Clone> FromIterator<(T, i64)> for SignedBag<T> {
    /// Collects `(element, signed multiplicity)` pairs, cancelling and
    /// canonicalising as it goes. Panics only on i64 overflow, which
    /// `FromIterator` cannot report.
    fn from_iter<I: IntoIterator<Item = (T, i64)>>(iter: I) -> Self {
        let mut bag = SignedBag::new();
        for (x, m) in iter {
            bag.insert(x, m).expect("signed multiplicity overflow");
        }
        bag
    }
}

impl<T: Eq + Hash> IntoIterator for SignedBag<T> {
    type Item = (T, i64);
    type IntoIter = std::collections::hash_map::IntoIter<T, i64>;

    /// Consumes the delta, yielding owned `(element, multiplicity)` pairs.
    fn into_iter(self) -> Self::IntoIter {
        self.counts.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sbag(xs: &[(i32, i64)]) -> SignedBag<i32> {
        xs.iter().copied().collect()
    }

    fn bag(xs: &[(i32, u64)]) -> Bag<i32> {
        xs.iter().copied().collect()
    }

    #[test]
    fn zero_multiplicity_is_never_stored() {
        let mut d = SignedBag::new();
        d.insert(1, 0).unwrap();
        assert!(d.is_empty());
        d.insert(1, 3).unwrap();
        d.insert(1, -3).unwrap(); // cancels back to zero
        assert!(d.is_empty());
        assert_eq!(d.support_len(), 0);
        assert_eq!(d.multiplicity(&1), 0);
    }

    #[test]
    fn canonical_form_makes_equality_pointwise() {
        let a = sbag(&[(1, 2), (2, -1), (3, 5), (3, -5)]);
        let b = sbag(&[(2, -1), (1, 2)]);
        assert_eq!(a, b);
        assert_ne!(a, sbag(&[(1, 2)]));
    }

    #[test]
    fn merge_sums_and_cancels() {
        let mut a = sbag(&[(1, 2), (2, -1)]);
        a.merge(sbag(&[(1, -2), (3, 4)])).unwrap();
        assert_eq!(a, sbag(&[(2, -1), (3, 4)]));
    }

    #[test]
    fn negate_flips_signs() {
        let mut a = sbag(&[(1, 2), (2, -3)]);
        a.negate();
        assert_eq!(a, sbag(&[(1, -2), (2, 3)]));
    }

    #[test]
    fn from_diff_round_trips_through_apply() {
        let old = bag(&[(1, 3), (2, 1), (4, 2)]);
        let new = bag(&[(1, 1), (3, 2), (4, 2)]);
        let d = SignedBag::from_diff(&old, &new).unwrap();
        // unchanged elements never appear in the delta
        assert_eq!(d.multiplicity(&4), 0);
        assert_eq!(d.apply_to(&old).unwrap(), new);
        let mut back = d;
        back.negate();
        assert_eq!(back.apply_to(&new).unwrap(), old);
    }

    #[test]
    fn apply_rejects_negative_result() {
        let d = sbag(&[(1, -2)]);
        let base = bag(&[(1, 1)]);
        assert_eq!(
            d.apply_to(&base).unwrap_err(),
            CoreError::NegativeMultiplicity("delta application")
        );
    }

    #[test]
    fn split_separates_signs() {
        let d = sbag(&[(1, 2), (2, -3)]);
        let (pos, neg) = d.split();
        assert_eq!(pos, bag(&[(1, 2)]));
        assert_eq!(neg, bag(&[(2, 3)]));
    }

    #[test]
    fn insert_unsigned_bridges_engine_results() {
        let mut d = SignedBag::new();
        d.insert_unsigned(1, 2, true).unwrap();
        d.insert_unsigned(1, 5, false).unwrap();
        assert_eq!(d, sbag(&[(1, -3)]));
    }

    #[test]
    fn overflow_is_detected() {
        let mut d = SignedBag::new();
        d.insert(1, i64::MAX).unwrap();
        assert!(matches!(d.insert(1, 1), Err(CoreError::Overflow(_))));
        let mut big = Bag::new();
        big.insert(1, u64::MAX).unwrap();
        assert!(matches!(
            SignedBag::from_diff(&big, &Bag::new()),
            Err(CoreError::Overflow(_))
        ));
    }
}
