//! Atomic domain values (Definition 2.1).
//!
//! A *domain* is a set of atomic values: indivisible as far as the algebra is
//! concerned. The paper names integers, reals, booleans and strings as the
//! common domains and explicitly allows more specialised atomic domains such
//! as date, time and money; all seven are provided here.
//!
//! Because relations are *functions* from tuples to multiplicities
//! (Definition 2.2), every value must support exact equality, hashing and a
//! total order. The one standard type that breaks this is IEEE-754 `f64`
//! (NaN); the [`Real`] wrapper excludes NaN at construction so that `real`
//! remains a set in the mathematical sense.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{CoreError, CoreResult};
use crate::intern::Sym;

/// A finite (non-NaN) IEEE-754 double, usable as a domain value.
///
/// `-0.0` is normalised to `+0.0` so that `x == y ⇒ hash(x) == hash(y)`
/// holds with bit-level hashing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Real(f64);

impl Real {
    /// Wraps a float, rejecting NaN (which is not an atomic domain member).
    pub fn new(v: f64) -> CoreResult<Self> {
        if v.is_nan() {
            Err(CoreError::NotAtomic("NaN".into()))
        } else if v == 0.0 {
            // collapse -0.0 and +0.0 into a single domain element
            Ok(Real(0.0))
        } else {
            Ok(Real(v))
        }
    }

    /// Returns the wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for Real {}

impl PartialOrd for Real {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Real {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // safe: NaN is excluded by construction
        self.0.partial_cmp(&other.0).expect("Real is never NaN")
    }
}

impl Hash for Real {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// An amount of money in minor units (e.g. cents), an atomic domain of its
/// own per the paper's remark that "more specialized types as time, date, or
/// money are possible too".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Money(pub i64);

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(f, "{sign}{}.{:02}", abs / 100, abs % 100)
    }
}

/// A calendar date stored as days since 1970-01-01 (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Builds a date from a year/month/day triple (civil calendar).
    ///
    /// Uses Howard Hinnant's `days_from_civil` algorithm.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> CoreResult<Self> {
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(CoreError::NotAtomic(format!("date {y}-{m}-{d}")));
        }
        let y = i64::from(y) - i64::from(m <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as u64; // [0, 399]
        let m = u64::from(m);
        let d = u64::from(d);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Ok(Date((era * 146_097 + doe as i64 - 719_468) as i32))
    }

    /// Decomposes into (year, month, day).
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = i64::from(self.0) + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = (z - era * 146_097) as u64;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe as i64 + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
        ((y + i64::from(m <= 2)) as i32, m, d)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A time of day stored as seconds since midnight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(pub u32);

impl Time {
    /// Builds a time from hours/minutes/seconds.
    pub fn from_hms(h: u32, m: u32, s: u32) -> CoreResult<Self> {
        if h >= 24 || m >= 60 || s >= 60 {
            return Err(CoreError::NotAtomic(format!("time {h}:{m}:{s}")));
        }
        Ok(Time(h * 3600 + m * 60 + s))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}:{:02}:{:02}",
            self.0 / 3600,
            (self.0 / 60) % 60,
            self.0 % 60
        )
    }
}

/// A single atomic value from one of the supported domains.
///
/// Variants are ordered so that the derived `Ord` gives a total order; the
/// algebra only ever compares values of equal type (enforced by schema
/// inference), so the cross-type ordering is an arbitrary-but-stable tie
/// break used by deterministic output formatting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Boolean domain.
    Bool(bool),
    /// Integer domain (64-bit).
    Int(i64),
    /// Real domain (finite doubles).
    Real(Real),
    /// String domain — interned: equal content shares one allocation, so
    /// clones are refcount bumps and equality/hashing are O(1).
    Str(Sym),
    /// Date domain.
    Date(Date),
    /// Time-of-day domain.
    Time(Time),
    /// Money domain (fixed-point minor units).
    Money(Money),
}

impl Value {
    /// Convenience constructor for a real value; errors on NaN.
    pub fn real(v: f64) -> CoreResult<Self> {
        Ok(Value::Real(Real::new(v)?))
    }

    /// Convenience constructor for a string value (interns the content).
    pub fn str(s: impl Into<Sym>) -> Self {
        Value::Str(s.into())
    }

    /// Extracts the string content, or a type error.
    pub fn as_str(&self) -> CoreResult<&str> {
        match self {
            Value::Str(s) => Ok(s.as_str()),
            other => Err(CoreError::TypeError(format!(
                "expected str, found {}",
                other.data_type()
            ))),
        }
    }

    /// The [`DataType`](crate::types::DataType) this value inhabits.
    pub fn data_type(&self) -> crate::types::DataType {
        use crate::types::DataType;
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Real(_) => DataType::Real,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
            Value::Time(_) => DataType::Time,
            Value::Money(_) => DataType::Money,
        }
    }

    /// Extracts a boolean, or a type error.
    pub fn as_bool(&self) -> CoreResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(CoreError::TypeError(format!(
                "expected bool, found {}",
                other.data_type()
            ))),
        }
    }

    /// Extracts an integer, or a type error.
    pub fn as_int(&self) -> CoreResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(CoreError::TypeError(format!(
                "expected int, found {}",
                other.data_type()
            ))),
        }
    }

    /// Numeric view of the value as `f64` (ints, reals and money qualify).
    pub fn as_f64(&self) -> CoreResult<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Real(r) => Ok(r.get()),
            Value::Money(m) => Ok(m.0 as f64 / 100.0),
            other => Err(CoreError::TypeError(format!(
                "expected a numeric value, found {}",
                other.data_type()
            ))),
        }
    }

    /// True when the value belongs to a numeric domain (int, real, money).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Real(_) | Value::Money(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Money(m) => write!(f, "{m}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Sym::new(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Sym::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn real_rejects_nan() {
        assert!(Real::new(f64::NAN).is_err());
        assert!(Real::new(1.5).is_ok());
        assert!(Real::new(f64::INFINITY).is_ok());
    }

    #[test]
    fn real_negative_zero_normalised() {
        let a = Real::new(0.0).unwrap();
        let b = Real::new(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn real_total_order() {
        let mut v = [
            Real::new(3.0).unwrap(),
            Real::new(-1.0).unwrap(),
            Real::new(0.0).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].get(), -1.0);
        assert_eq!(v[2].get(), 3.0);
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1994, 2, 17), (2000, 2, 29), (1899, 12, 31)] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.to_ymd(), (y, m, d));
        }
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap().0, 0);
        assert_eq!(Date::from_ymd(1970, 1, 2).unwrap().0, 1);
        assert_eq!(Date::from_ymd(1969, 12, 31).unwrap().0, -1);
    }

    #[test]
    fn date_rejects_bad_components() {
        assert!(Date::from_ymd(1994, 13, 1).is_err());
        assert!(Date::from_ymd(1994, 0, 1).is_err());
        assert!(Date::from_ymd(1994, 1, 32).is_err());
    }

    #[test]
    fn time_construction_and_display() {
        let t = Time::from_hms(13, 5, 9).unwrap();
        assert_eq!(t.to_string(), "13:05:09");
        assert!(Time::from_hms(24, 0, 0).is_err());
        assert!(Time::from_hms(0, 60, 0).is_err());
    }

    #[test]
    fn money_display() {
        assert_eq!(Money(1234).to_string(), "12.34");
        assert_eq!(Money(-5).to_string(), "-0.05");
        assert_eq!(Money(0).to_string(), "0.00");
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("ale").to_string(), "'ale'");
        assert_eq!(Value::real(2.5).unwrap().to_string(), "2.5");
        assert_eq!(Value::real(5.0).unwrap().to_string(), "5.0");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert!(Value::Bool(true).as_int().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Money(Money(150)).as_f64().unwrap(), 1.5);
        assert!(Value::str("x").as_f64().is_err());
        assert!(Value::Int(1).is_numeric());
        assert!(!Value::str("x").is_numeric());
    }

    #[test]
    fn value_equal_implies_hash_equal() {
        let a = Value::real(0.0).unwrap();
        let b = Value::real(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }
}
