//! Process-wide string interning.
//!
//! Relations are functions `R : dom(R) → ℕ` (Definition 2.2): tuples are
//! immutable *keys*, compared and hashed constantly and copied freely
//! between operators, workers and hash tables. Owned `String` values make
//! every such copy a heap allocation and every comparison O(len). A
//! [`Sym`] is the interned alternative: construction goes through a
//! process-wide table that guarantees **content-equal ⇒ pointer-equal**,
//! so
//!
//! * `clone()` is an `Arc` refcount bump,
//! * `==` is a pointer comparison (with a defensive content fallback),
//! * `hash` writes one precomputed 64-bit content hash,
//! * `cmp` still compares string *content* (pointer-equal fast path), so
//!   ordered output formatting is unchanged.
//!
//! The table only grows: interned strings live for the life of the
//! process. That is the right trade-off for a query engine whose string
//! population is column data loaded once and recombined many times; see
//! DESIGN.md ("Data representation") for the discussion.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, LazyLock, Mutex, PoisonError};

use rustc_hash::{FxHashMap, FxHasher};

/// The interned payload: the content hash is computed once at intern time
/// and reused by every hash-table insertion of every copy of the symbol.
#[derive(Debug)]
struct SymData {
    hash: u64,
    text: Box<str>,
}

/// An interned, immutable string: one word wide, cheap to clone, O(1) to
/// compare and hash. All construction paths intern, so two `Sym`s with
/// equal content always share one allocation.
#[derive(Debug, Clone)]
pub struct Sym(Arc<SymData>);

const SHARD_COUNT: usize = 8;

/// Hash-sharded intern table: `content hash → symbols with that hash`
/// (hash-then-verify, so colliding strings coexist correctly).
struct Shard {
    buckets: FxHashMap<u64, Vec<Arc<SymData>>>,
}

static SHARDS: LazyLock<Vec<Mutex<Shard>>> = LazyLock::new(|| {
    (0..SHARD_COUNT)
        .map(|_| {
            Mutex::new(Shard {
                buckets: FxHashMap::default(),
            })
        })
        .collect()
});

fn content_hash(text: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(text.as_bytes());
    h.finish()
}

fn intern_impl(text: &str) -> Arc<SymData> {
    let hash = content_hash(text);
    let shard = &SHARDS[(hash as usize) % SHARD_COUNT];
    let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
    let bucket = guard.buckets.entry(hash).or_default();
    if let Some(existing) = bucket.iter().find(|d| &*d.text == text) {
        return Arc::clone(existing);
    }
    let data = Arc::new(SymData {
        hash,
        text: Box::from(text),
    });
    bucket.push(Arc::clone(&data));
    data
}

/// Interning an owned `String` reuses its allocation on a miss.
fn intern_owned(text: String) -> Arc<SymData> {
    let hash = content_hash(&text);
    let shard = &SHARDS[(hash as usize) % SHARD_COUNT];
    let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
    let bucket = guard.buckets.entry(hash).or_default();
    if let Some(existing) = bucket.iter().find(|d| *d.text == *text) {
        return Arc::clone(existing);
    }
    let data = Arc::new(SymData {
        hash,
        text: text.into_boxed_str(),
    });
    bucket.push(Arc::clone(&data));
    data
}

impl Sym {
    /// Interns a string slice.
    pub fn new(text: &str) -> Self {
        Sym(intern_impl(text))
    }

    /// The string content.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.0.text
    }

    /// The precomputed content hash (stable for the process lifetime).
    #[inline]
    pub fn content_hash(&self) -> u64 {
        self.0.hash
    }
}

impl Deref for Sym {
    type Target = str;

    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        Sym(intern_owned(s))
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Self {
        Sym::new(s)
    }
}

impl PartialEq for Sym {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // interning makes pointer equality complete; the content fallback
        // keeps `Eq` correct even if that invariant were ever broken
        Arc::ptr_eq(&self.0, &other.0) || self.0.text == other.0.text
    }
}

impl Eq for Sym {}

impl PartialOrd for Sym {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            Ordering::Equal
        } else {
            self.0.text.cmp(&other.0.text)
        }
    }
}

impl Hash for Sym {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_content_shares_one_allocation() {
        let a = Sym::new("grolsch");
        let b = Sym::from("grolsch".to_owned());
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_content_is_unequal() {
        assert_ne!(Sym::new("a"), Sym::new("b"));
        assert_ne!(Sym::new("a"), Sym::new("aa"));
    }

    #[test]
    fn order_is_string_order() {
        let mut v = [Sym::new("b"), Sym::new("a"), Sym::new("ab")];
        v.sort();
        assert_eq!(
            v.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            vec!["a", "ab", "b"]
        );
    }

    #[test]
    fn equal_implies_hash_equal() {
        let a = Sym::new("x");
        let b = Sym::from(String::from("x"));
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn clone_is_same_symbol() {
        let a = Sym::new("shared");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn deref_and_display() {
        let s = Sym::new("it's");
        assert_eq!(&*s, "it's");
        assert_eq!(s.to_string(), "it's");
        assert_eq!(s.replace('\'', "''"), "it''s");
    }

    #[test]
    fn empty_string_interns() {
        assert_eq!(Sym::new(""), Sym::from(String::new()));
        assert_eq!(Sym::new("").as_str(), "");
    }
}
