//! Error types for the core data model.

use std::fmt;

/// Errors raised by the core multi-set relational structures.
///
/// The paper's definitions are total on well-typed inputs; every variant here
/// corresponds to a way an *ill-typed* or *ill-formed* construction can be
/// rejected before evaluation (schema mismatches, bad attribute indexes, …)
/// or to one of the partial functions the paper calls out explicitly
/// (aggregates over empty multi-sets, see Definition 3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A floating-point value that is not an atomic domain member (NaN).
    ///
    /// Domains are *sets* of atomic values (Definition 2.1); NaN breaks both
    /// equality and ordering, so `real` domains exclude it by construction.
    NotAtomic(String),
    /// Two schemas that were required to be identical differ.
    SchemaMismatch {
        /// Rendered form of the schema that was required.
        expected: String,
        /// Rendered form of the schema that was found.
        found: String,
    },
    /// A tuple's arity or attribute types do not match the target schema.
    TupleSchemaMismatch {
        /// Rendered form of the target schema.
        schema: String,
        /// Rendered form of the offending tuple.
        tuple: String,
    },
    /// An attribute index outside `1..=#r` (the paper addresses attributes
    /// by 1-based prefixed index, `%i`).
    AttrIndexOutOfRange {
        /// The out-of-range 1-based index.
        index: usize,
        /// The arity it was checked against.
        arity: usize,
    },
    /// A named attribute that does not exist in the schema.
    UnknownAttribute(String),
    /// A named relation that does not exist in the database.
    UnknownRelation(String),
    /// A relation name that already exists in the database schema.
    DuplicateRelation(String),
    /// An attribute list that was required to be duplicate-free (group-by
    /// lists, Definition 3.4) contains a repeated index.
    DuplicateAttrInList(usize),
    /// An aggregate over an empty multi-set (AVG/MIN/MAX are partial
    /// functions, Definition 3.3).
    AggregateOnEmpty(&'static str),
    /// Arithmetic performed on values of incompatible types.
    TypeError(String),
    /// Integer overflow in arithmetic or multiplicity bookkeeping.
    Overflow(&'static str),
    /// Division by zero inside a scalar expression.
    DivisionByZero,
    /// Applying a signed delta would drive some multiplicity below zero.
    ///
    /// ℕ-valued relation instances (Definition 2.2) cannot represent
    /// negative counts; a correctly-maintained view delta never retracts
    /// more copies than the base holds, so this error signals a
    /// maintenance-state bug (and triggers full-recompute fallback).
    NegativeMultiplicity(&'static str),
    /// A parallel worker panicked while evaluating a partition or morsel.
    ///
    /// Panics are caught at the worker boundary and surfaced as this error
    /// so one failing partition degrades the query to an error instead of
    /// aborting the process.
    WorkerPanicked(String),
    /// A redo-log append whose logical time does not strictly increase.
    ///
    /// Log order *is* recovery order: replaying an out-of-order log would
    /// reconstruct a state that never existed, so the log rejects the
    /// append outright instead of silently accepting it.
    LogOutOfOrder {
        /// Logical time of the last record already in the log.
        last: u64,
        /// Logical time of the rejected record.
        next: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotAtomic(v) => write!(f, "value is not an atomic domain member: {v}"),
            CoreError::SchemaMismatch { expected, found } => {
                write!(f, "schema mismatch: expected {expected}, found {found}")
            }
            CoreError::TupleSchemaMismatch { schema, tuple } => {
                write!(f, "tuple {tuple} does not match schema {schema}")
            }
            CoreError::AttrIndexOutOfRange { index, arity } => {
                write!(f, "attribute index %{index} out of range for arity {arity}")
            }
            CoreError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            CoreError::UnknownRelation(name) => write!(f, "unknown relation: {name}"),
            CoreError::DuplicateRelation(name) => {
                write!(f, "relation already exists: {name}")
            }
            CoreError::DuplicateAttrInList(i) => {
                write!(
                    f,
                    "attribute %{i} repeated in duplicate-free attribute list"
                )
            }
            CoreError::AggregateOnEmpty(agg) => {
                write!(f, "{agg} is undefined on an empty multi-set")
            }
            CoreError::TypeError(msg) => write!(f, "type error: {msg}"),
            CoreError::Overflow(what) => write!(f, "integer overflow in {what}"),
            CoreError::DivisionByZero => write!(f, "division by zero"),
            CoreError::NegativeMultiplicity(what) => {
                write!(f, "negative multiplicity in {what}")
            }
            CoreError::WorkerPanicked(msg) => {
                write!(f, "parallel worker panicked: {msg}")
            }
            CoreError::LogOutOfOrder { last, next } => {
                write!(
                    f,
                    "redo log times must strictly increase: t={next} after t={last}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias used throughout the workspace.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::AttrIndexOutOfRange { index: 5, arity: 3 };
        assert_eq!(e.to_string(), "attribute index %5 out of range for arity 3");
        let e = CoreError::AggregateOnEmpty("AVG");
        assert!(e.to_string().contains("AVG"));
        let e = CoreError::DivisionByZero;
        assert_eq!(e.to_string(), "division by zero");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CoreError::UnknownRelation("beer".into()),
            CoreError::UnknownRelation("beer".into())
        );
        assert_ne!(
            CoreError::UnknownRelation("beer".into()),
            CoreError::UnknownRelation("brewery".into())
        );
    }
}
