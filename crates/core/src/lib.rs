//! # mera-core — multi-set relational structures
//!
//! The data model of Grefen & de By, *A Multi-Set Extended Relational
//! Algebra — A Formal Approach to a Practical Issue* (ICDE 1994), §2:
//!
//! * [`value`] — atomic domain values (Definition 2.1),
//! * [`types`] — domain names and numeric coercion,
//! * [`tuple`](mod@tuple) — tuples, attribute lists, projection `α` and
//!   concatenation `⊕` (Definition 2.4),
//! * [`schema`] — relation schemas (Definition 2.2),
//! * [`multiset`] — the generic counted bag with the multiplicity laws of
//!   Definitions 3.1–3.2,
//! * [`relation`] — schema-checked relations and operator kernels,
//! * [`database`] — database schemas, states and transitions
//!   (Definitions 2.5–2.6).
//!
//! ```
//! use mera_core::prelude::*;
//!
//! let beer = relation_of(
//!     Schema::named(&[("name", DataType::Str), ("alcperc", DataType::Real)]),
//!     vec![
//!         tuple!["Grolsch", 5.0_f64],
//!         tuple!["Heineken", 5.0_f64],
//!         tuple!["Heineken", 5.0_f64], // duplicates are first-class
//!     ],
//! )?;
//! assert_eq!(beer.len(), 3);
//! assert_eq!(beer.distinct_len(), 2);
//! # Ok::<(), mera_core::CoreError>(())
//! ```

#![warn(missing_docs)]

pub mod counting_alloc;
pub mod database;
pub mod delta;
pub mod error;
pub mod intern;
pub mod multiset;
pub mod relation;
pub mod schema;
pub mod sketch;
pub mod tuple;
pub mod types;
pub mod value;

pub use error::{CoreError, CoreResult};
pub use tuple::IntoValue;

/// One-stop imports for downstream crates and examples.
pub mod prelude {
    pub use crate::database::{Database, DatabaseSchema, LogicalTime, Transition};
    pub use crate::delta::SignedBag;
    pub use crate::error::{CoreError, CoreResult};
    pub use crate::intern::Sym;
    pub use crate::multiset::Bag;
    pub use crate::relation::{relation_of, Relation};
    pub use crate::schema::{Attribute, RelationSchema, Schema, SchemaRef};
    pub use crate::sketch::{stable_hash, KmvSketch};
    pub use crate::tuple;
    pub use crate::tuple::{AttrList, IntoValue, ResolvedAttrs, Tuple};
    pub use crate::types::DataType;
    pub use crate::value::{Date, Money, Real, Time, Value};
}
