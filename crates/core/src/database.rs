//! Database schemas, instances and transitions (Definitions 2.5–2.6).
//!
//! A database schema is a set of relation schemas; a database instance (or
//! *state*) assigns each a relation. Relations in a database are always
//! addressed by name. States carry a *logical time* `t`, and an ordered pair
//! of states `(D_t1, D_t2)` with `t1 < t2` is a [`Transition`]; the common
//! single-step case has `t2 = t1 + 1`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{CoreError, CoreResult};
use crate::relation::Relation;
use crate::schema::{RelationSchema, Schema, SchemaRef};

/// Logical time of a database state (Definition 2.6 uses naturals).
pub type LogicalTime = u64;

/// A database schema: named relation schemas, addressed by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    relations: BTreeMap<String, SchemaRef>,
}

impl DatabaseSchema {
    /// The empty database schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation schema, rejecting duplicate names (a schema is a
    /// *set* of relation schemas).
    pub fn add(&mut self, rs: RelationSchema) -> CoreResult<()> {
        if self.relations.contains_key(&rs.name) {
            return Err(CoreError::DuplicateRelation(rs.name));
        }
        self.relations.insert(rs.name, rs.schema);
        Ok(())
    }

    /// Convenience builder.
    pub fn with(mut self, name: &str, schema: Schema) -> CoreResult<Self> {
        self.add(RelationSchema::new(name, schema))?;
        Ok(self)
    }

    /// Looks up a relation schema by name.
    pub fn get(&self, name: &str) -> CoreResult<&SchemaRef> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.to_owned()))
    }

    /// True when `name` is declared.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Relation names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of relation schemas.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when no relation schema is declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl fmt::Display for DatabaseSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{{")?;
        for (name, schema) in &self.relations {
            writeln!(f, "  {name} {schema}")?;
        }
        write!(f, "}}")
    }
}

/// A database state `D_t`: one relation instance per declared schema, plus
/// the logical time.
///
/// Cloning a state is the snapshot primitive transactions use to implement
/// abort; relation payloads are plain values so a clone is a deep copy of
/// the counted maps (cheap relative to duplicate-expanded copies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    schema: Arc<DatabaseSchema>,
    relations: BTreeMap<String, Relation>,
    time: LogicalTime,
}

impl Database {
    /// Builds the initial (all-empty) state of a database schema at logical
    /// time 0.
    pub fn new(schema: DatabaseSchema) -> Self {
        let schema = Arc::new(schema);
        let relations = schema
            .relations
            .iter()
            .map(|(n, s)| (n.clone(), Relation::empty(Arc::clone(s))))
            .collect();
        Database {
            schema,
            relations,
            time: 0,
        }
    }

    /// Rebuilds a database state from its constituent parts — the
    /// deserialization entry point snapshot restore needs. Every declared
    /// relation must be given an instance of a type-compatible schema;
    /// instances for undeclared relations are rejected.
    pub fn from_parts<I>(
        schema: DatabaseSchema,
        relations: I,
        time: LogicalTime,
    ) -> CoreResult<Self>
    where
        I: IntoIterator<Item = (String, Relation)>,
    {
        let mut db = Database::new(schema);
        for (name, rel) in relations {
            db.replace(&name, rel)?;
        }
        db.time = time;
        Ok(db)
    }

    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The logical time `t` of this state.
    pub fn time(&self) -> LogicalTime {
        self.time
    }

    /// Reads a relation by name.
    pub fn relation(&self, name: &str) -> CoreResult<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| CoreError::UnknownRelation(name.to_owned()))
    }

    /// Replaces the instance of a declared relation (the `R ← E` replacement
    /// of Definition 4.1). The new instance must be type-compatible with the
    /// declared schema.
    pub fn replace(&mut self, name: &str, rel: Relation) -> CoreResult<()> {
        let declared = self.schema.get(name)?;
        declared.check_same_types(rel.schema())?;
        self.relations.insert(name.to_owned(), rel);
        Ok(())
    }

    /// Applies a relation-to-relation transformation in place.
    pub fn update_with<F>(&mut self, name: &str, f: F) -> CoreResult<()>
    where
        F: FnOnce(&Relation) -> CoreResult<Relation>,
    {
        let cur = self.relation(name)?;
        let next = f(cur)?;
        self.replace(name, next)
    }

    /// Advances logical time by one step, returning the new time.
    pub fn tick(&mut self) -> LogicalTime {
        self.time += 1;
        self.time
    }

    /// Advances logical time to `t` (recovery: aborted transactions tick
    /// the clock but write no log record, so replay must skip the gaps).
    /// Moving time backwards is rejected — states are totally ordered.
    pub fn advance_time_to(&mut self, t: LogicalTime) -> CoreResult<()> {
        if t < self.time {
            return Err(CoreError::LogOutOfOrder {
                last: self.time,
                next: t,
            });
        }
        self.time = t;
        Ok(())
    }

    /// Adds a new (empty) relation to the database, extending its schema —
    /// the DDL operation a practical front-end needs. Rejects duplicate
    /// names.
    pub fn add_relation(&mut self, rs: RelationSchema) -> CoreResult<()> {
        if self.schema.contains(&rs.name) {
            return Err(CoreError::DuplicateRelation(rs.name));
        }
        let schema = Arc::make_mut(&mut self.schema);
        let name = rs.name.clone();
        let rel_schema = Arc::clone(&rs.schema);
        schema.add(rs)?;
        self.relations.insert(name, Relation::empty(rel_schema));
        Ok(())
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total number of tuples across all relations (with multiplicity).
    pub fn total_tuples(&self) -> u64 {
        self.relations.values().map(Relation::len).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "D_{} {{", self.time)?;
        for (name, rel) in &self.relations {
            writeln!(f, "{name} ({} tuples)", rel.len())?;
        }
        write!(f, "}}")
    }
}

/// A database transition (Definition 2.6): an ordered pair of states of the
/// same schema with strictly increasing logical time.
#[derive(Debug, Clone)]
pub struct Transition {
    /// The earlier state `D_t1`.
    pub before: Database,
    /// The later state `D_t2`.
    pub after: Database,
}

impl Transition {
    /// Builds a transition, enforcing `t1 < t2` and schema equality.
    pub fn new(before: Database, after: Database) -> CoreResult<Self> {
        if before.time >= after.time {
            return Err(CoreError::TypeError(format!(
                "transition requires t1 < t2, got {} >= {}",
                before.time, after.time
            )));
        }
        if before.schema.as_ref() != after.schema.as_ref() {
            return Err(CoreError::SchemaMismatch {
                expected: before.schema.to_string(),
                found: after.schema.to_string(),
            });
        }
        Ok(Transition { before, after })
    }

    /// True when this is a single-step transition (`t2 = t1 + 1`), the
    /// default reading of "transition" in the paper.
    pub fn is_single_step(&self) -> bool {
        self.after.time == self.before.time + 1
    }

    /// True when the transition left every relation unchanged (an aborted
    /// transaction still advances time but `T(D) = D` up to time).
    pub fn is_identity(&self) -> bool {
        self.before.relations == self.after.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::types::DataType;

    fn beer_db() -> Database {
        let schema = DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .unwrap()
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .unwrap();
        Database::new(schema)
    }

    #[test]
    fn schema_rejects_duplicate_relation_names() {
        let s = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int]))
            .unwrap();
        assert!(matches!(
            s.with("r", Schema::anon(&[DataType::Int])),
            Err(CoreError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn initial_state_is_empty_at_time_zero() {
        let db = beer_db();
        assert_eq!(db.time(), 0);
        assert_eq!(db.relation("beer").unwrap().len(), 0);
        assert_eq!(db.total_tuples(), 0);
        assert!(db.relation("ale").is_err());
    }

    #[test]
    fn replace_validates_schema() {
        let mut db = beer_db();
        let beer_schema = Arc::clone(db.schema().get("beer").unwrap());
        let rel = Relation::from_tuples(beer_schema, vec![tuple!["Grolsch", "Grolsche", 5.0_f64]])
            .unwrap();
        db.replace("beer", rel).unwrap();
        assert_eq!(db.relation("beer").unwrap().len(), 1);

        let wrong = Relation::empty(Arc::new(Schema::anon(&[DataType::Int])));
        assert!(db.replace("beer", wrong).is_err());
        assert!(db
            .replace("nosuch", Relation::empty(Arc::new(Schema::anon(&[]))))
            .is_err());
    }

    #[test]
    fn update_with_transforms_in_place() {
        let mut db = beer_db();
        db.update_with("beer", |r| {
            let mut r = r.clone();
            r.insert(tuple!["Guinness", "StJames", 4.2_f64], 2)?;
            Ok(r)
        })
        .unwrap();
        assert_eq!(db.relation("beer").unwrap().len(), 2);
    }

    #[test]
    fn tick_advances_logical_time() {
        let mut db = beer_db();
        assert_eq!(db.tick(), 1);
        assert_eq!(db.tick(), 2);
        assert_eq!(db.time(), 2);
    }

    #[test]
    fn transition_requires_increasing_time() {
        let d0 = beer_db();
        let mut d1 = d0.clone();
        d1.tick();
        let t = Transition::new(d0.clone(), d1).unwrap();
        assert!(t.is_single_step());
        assert!(t.is_identity());
        assert!(Transition::new(d0.clone(), d0).is_err());
    }

    #[test]
    fn transition_detects_changes() {
        let d0 = beer_db();
        let mut d1 = d0.clone();
        d1.update_with("beer", |r| {
            let mut r = r.clone();
            r.insert(tuple!["Grolsch", "Grolsche", 5.0_f64], 1)?;
            Ok(r)
        })
        .unwrap();
        d1.tick();
        d1.tick(); // multi-step transitions are allowed
        let t = Transition::new(d0, d1).unwrap();
        assert!(!t.is_single_step());
        assert!(!t.is_identity());
    }

    #[test]
    fn add_relation_extends_schema() {
        let mut db = beer_db();
        db.add_relation(RelationSchema::new(
            "drinker",
            Schema::named(&[("name", DataType::Str)]),
        ))
        .unwrap();
        assert!(db.relation("drinker").unwrap().is_empty());
        assert!(db.schema().contains("drinker"));
        // duplicates rejected
        let dup = RelationSchema::new("beer", Schema::anon(&[DataType::Int]));
        assert!(matches!(
            db.add_relation(dup),
            Err(CoreError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn from_parts_rebuilds_a_state() {
        let mut db = beer_db();
        db.update_with("beer", |r| {
            let mut r = r.clone();
            r.insert(tuple!["Grolsch", "Grolsche", 5.0_f64], 2)?;
            Ok(r)
        })
        .unwrap();
        db.tick();
        db.tick();
        let rebuilt = Database::from_parts(
            db.schema().clone(),
            db.relation_names()
                .map(|n| (n.to_owned(), db.relation(n).unwrap().clone()))
                .collect::<Vec<_>>(),
            db.time(),
        )
        .unwrap();
        assert_eq!(rebuilt, db);
        // ill-typed instances are rejected
        let err = Database::from_parts(
            beer_db().schema().clone(),
            vec![(
                "beer".to_owned(),
                Relation::empty(Arc::new(Schema::anon(&[DataType::Int]))),
            )],
            0,
        );
        assert!(matches!(err, Err(CoreError::SchemaMismatch { .. })));
        // undeclared instances too
        let err = Database::from_parts(
            beer_db().schema().clone(),
            vec![(
                "ale".to_owned(),
                Relation::empty(Arc::new(Schema::anon(&[]))),
            )],
            0,
        );
        assert!(matches!(err, Err(CoreError::UnknownRelation(_))));
    }

    #[test]
    fn advance_time_to_is_monotonic() {
        let mut db = beer_db();
        db.advance_time_to(5).unwrap();
        assert_eq!(db.time(), 5);
        db.advance_time_to(5).unwrap(); // no-op is fine
        assert!(matches!(
            db.advance_time_to(3),
            Err(CoreError::LogOutOfOrder { last: 5, next: 3 })
        ));
        assert_eq!(db.time(), 5);
    }

    #[test]
    fn snapshot_clone_isolates_states() {
        let mut db = beer_db();
        let snap = db.clone();
        db.update_with("beer", |r| {
            let mut r = r.clone();
            r.insert(tuple!["X", "Y", 1.0_f64], 1)?;
            Ok(r)
        })
        .unwrap();
        assert_eq!(snap.relation("beer").unwrap().len(), 0);
        assert_eq!(db.relation("beer").unwrap().len(), 1);
    }
}
