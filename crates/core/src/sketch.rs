//! # Distinct-count sketches for incremental statistics
//!
//! A deterministic KMV (k-minimum-values) sketch: remember the `k`
//! smallest distinct 64-bit hashes ever inserted and estimate the number
//! of distinct values from how densely they crowd the bottom of the hash
//! space. With fewer than `k` distinct hashes observed the estimate is
//! *exact*; past that the standard KMV estimator `(k−1)/R_k` (where `R_k`
//! is the k-th smallest hash normalised to `[0,1)`) has relative standard
//! error ≈ `1/√(k−2)` — about 6.4% at the default `k = 256`.
//!
//! Everything is deterministic: the hash is a fixed-seed FNV-1a finalised
//! with the splitmix64 mixer, so two runs over the same data produce the
//! same sketch (a requirement for the crash-recovery differential tests,
//! which compare a recovered statistics catalog against a shadow run).
//!
//! KMV supports inserts and unions but **not deletions** — a deleted
//! value's hash cannot be evicted because the sketch no longer knows
//! which larger hashes it displaced. Callers that feed signed deltas
//! (`mera-txn`'s commit path) count deletions as *drift* and rebuild the
//! sketch from the base relation once drift crosses a threshold, the same
//! `Recompute` escape hatch the view-maintenance plans use.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

/// Default number of minima retained — RSE ≈ 6.4%.
pub const DEFAULT_K: usize = 256;

/// A deterministic 64-bit hasher: FNV-1a over the written bytes, finished
/// with the splitmix64 finaliser so the low *and* high bits are uniform
/// enough for order statistics.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Hasher for StableHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        splitmix64(self.0)
    }
}

/// The deterministic hash of any `Hash` value, as used by [`KmvSketch`].
pub fn stable_hash<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = StableHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// A k-minimum-values distinct-count sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmvSketch {
    k: usize,
    minima: BTreeSet<u64>,
    /// True once a hash has been rejected for being larger than the k-th
    /// minimum — before that the sketch has seen every distinct hash and
    /// the estimate is exact.
    saturated: bool,
}

impl Default for KmvSketch {
    fn default() -> Self {
        Self::new(DEFAULT_K)
    }
}

impl KmvSketch {
    /// An empty sketch keeping the `k` smallest hashes (`k ≥ 2`).
    pub fn new(k: usize) -> Self {
        KmvSketch {
            k: k.max(2),
            minima: BTreeSet::new(),
            saturated: false,
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether the sketch is still exact (has never evicted a hash).
    pub fn is_exact(&self) -> bool {
        !self.saturated
    }

    /// Inserts a pre-computed hash.
    pub fn insert_hash(&mut self, h: u64) {
        if self.minima.len() < self.k {
            self.minima.insert(h);
            return;
        }
        // full: admit only if smaller than the current k-th minimum
        let max = *self.minima.iter().next_back().expect("non-empty");
        if h < max {
            if self.minima.insert(h) {
                self.minima.remove(&max);
                self.saturated = true;
            }
        } else if h > max {
            self.saturated = true;
        }
    }

    /// Inserts a value through the deterministic hasher.
    pub fn insert<T: Hash + ?Sized>(&mut self, v: &T) {
        self.insert_hash(stable_hash(v));
    }

    /// The estimated number of distinct values inserted so far.
    ///
    /// Exact while fewer than `k` distinct hashes have been seen;
    /// otherwise the KMV order-statistics estimator.
    pub fn estimate(&self) -> u64 {
        if !self.saturated {
            return self.minima.len() as u64;
        }
        let kth = *self.minima.iter().next_back().expect("saturated ⇒ full");
        // R_k = kth / 2^64 ∈ (0,1); estimate = (k−1)/R_k.
        let r = (kth as f64) / (u64::MAX as f64);
        if r <= 0.0 {
            return self.minima.len() as u64;
        }
        let est = ((self.k - 1) as f64) / r;
        est.round().max(self.minima.len() as f64) as u64
    }

    /// Unions another sketch into this one (the union of KMV sketches is
    /// the KMV sketch of the union, truncated to the smaller `k`).
    pub fn merge(&mut self, other: &KmvSketch) {
        self.saturated |= other.saturated;
        for &h in &other.minima {
            self.insert_hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        assert_eq!(stable_hash(&42_u64), stable_hash(&42_u64));
        assert_ne!(stable_hash(&42_u64), stable_hash(&43_u64));
        // low bits must vary (FNV alone fails this; splitmix fixes it)
        let lows: BTreeSet<u64> = (0..64_u64).map(|i| stable_hash(&i) & 0xff).collect();
        assert!(lows.len() > 32, "low byte collapsed: {}", lows.len());
    }

    #[test]
    fn exact_below_k() {
        let mut s = KmvSketch::new(64);
        for i in 0..50_u64 {
            s.insert(&i);
            s.insert(&i); // duplicates don't count
        }
        assert!(s.is_exact());
        assert_eq!(s.estimate(), 50);
    }

    #[test]
    fn estimate_within_bounds_past_k() {
        let mut s = KmvSketch::new(256);
        let n = 20_000_u64;
        for i in 0..n {
            s.insert(&i);
        }
        assert!(!s.is_exact());
        let est = s.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        // 6.4% RSE ⇒ 4σ ≈ 26%; this is deterministic so the observed
        // error is a fixed number — assert a loose envelope.
        assert!(err < 0.25, "estimate {est} vs {n}: err {err:.3}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = KmvSketch::new(128);
        let mut b = KmvSketch::new(128);
        let mut u = KmvSketch::new(128);
        for i in 0..5_000_u64 {
            a.insert(&i);
            u.insert(&i);
        }
        for i in 2_500..7_500_u64 {
            b.insert(&i);
            u.insert(&i);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn min_k_clamped() {
        let s = KmvSketch::new(0);
        assert_eq!(s.k(), 2);
    }
}
