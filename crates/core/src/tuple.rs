//! Tuples and tuple operations (Definition 2.4).
//!
//! A tuple `r` of schema `R` is an element of `dom(R)`. The paper defines
//! three tuple-level operations, all reproduced here:
//!
//! * attribute access `r.i` (1-based),
//! * tuple projection `α_a(r)` for an attribute list `a = (%i₁, …, %iₙ)`,
//! * concatenation `r₁ ⊕ r₂`.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, LazyLock};

use rustc_hash::FxHasher;

use crate::error::{CoreError, CoreResult};
use crate::value::Value;

/// A list of prefixed attribute indexes `(%i₁, …, %iₙ)`, 1-based and allowed
/// to repeat (Definition 2.4 only requires `1 ≤ iⱼ ≤ #r`).
///
/// Stored 1-based to stay close to the paper's notation; the consumers
/// do the off-by-one translation exactly once at access time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AttrList(Vec<usize>);

impl AttrList {
    /// Builds an attribute list, rejecting empty lists and index `0`
    /// (`n ≥ 1` and `1 ≤ iⱼ`).
    pub fn new(indexes: Vec<usize>) -> CoreResult<Self> {
        if indexes.is_empty() {
            return Err(CoreError::TypeError(
                "attribute list must contain at least one attribute".into(),
            ));
        }
        if let Some(&bad) = indexes.iter().find(|&&i| i == 0) {
            return Err(CoreError::AttrIndexOutOfRange {
                index: bad,
                arity: 0,
            });
        }
        Ok(AttrList(indexes))
    }

    /// Builds a duplicate-free attribute list (required for group-by lists,
    /// Definition 3.4).
    pub fn new_unique(indexes: Vec<usize>) -> CoreResult<Self> {
        let list = Self::new(indexes)?;
        let mut seen = vec![false; list.0.iter().copied().max().unwrap_or(0) + 1];
        for &i in &list.0 {
            if seen[i] {
                return Err(CoreError::DuplicateAttrInList(i));
            }
            seen[i] = true;
        }
        Ok(list)
    }

    /// The identity attribute list `(%1, …, %arity)`.
    pub fn identity(arity: usize) -> CoreResult<Self> {
        Self::new((1..=arity).collect())
    }

    /// Number of entries in the list.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the list is empty (never, by construction — kept for
    /// clippy's `len_without_is_empty` and future use).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The 1-based indexes.
    pub fn indexes(&self) -> &[usize] {
        &self.0
    }

    /// True when every index fits a tuple/schema of arity `arity`.
    pub fn fits_arity(&self, arity: usize) -> bool {
        self.0.iter().all(|&i| i <= arity)
    }

    /// Validates the list against an arity, producing the first offending
    /// index on failure.
    pub fn check_arity(&self, arity: usize) -> CoreResult<()> {
        match self.0.iter().find(|&&i| i > arity) {
            None => Ok(()),
            Some(&bad) => Err(CoreError::AttrIndexOutOfRange { index: bad, arity }),
        }
    }

    /// True when there are no repeated indexes.
    pub fn is_duplicate_free(&self) -> bool {
        let mut sorted = self.0.clone();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    }
}

impl fmt::Display for AttrList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, i) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "%{i}")?;
        }
        write!(f, ")")
    }
}

/// A tuple: an ordered sequence of atomic values.
///
/// Tuples are immutable once built; every algebra operator constructs new
/// tuples rather than mutating. Because relations are functions from
/// tuples to multiplicities, tuples are pure *keys* — so the row storage
/// is an atomically reference-counted slice and `clone()` is a refcount
/// bump, never a deep copy. Equality, ordering and hashing remain
/// value-wise (Definition 2.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

/// The single shared zero-arity row backing [`Tuple::empty`].
static EMPTY_TUPLE: LazyLock<Tuple> = LazyLock::new(|| Tuple(Arc::from(Vec::new())));

impl Tuple {
    /// Builds a tuple from its attribute values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values.into())
    }

    /// The empty tuple (used by the empty-grouping-list aggregate form).
    /// Always the same shared allocation.
    pub fn empty() -> Self {
        EMPTY_TUPLE.clone()
    }

    /// Number of attributes, `#r` in the paper.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Attribute access `r.i`, 1-based as in the paper.
    pub fn attr(&self, i: usize) -> CoreResult<&Value> {
        if i == 0 || i > self.0.len() {
            return Err(CoreError::AttrIndexOutOfRange {
                index: i,
                arity: self.0.len(),
            });
        }
        Ok(&self.0[i - 1])
    }

    /// All attribute values, in order.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Tuple projection `α_a(r)`: concatenates the attributes named by `a`
    /// into a new tuple (duplicated indexes duplicate values).
    ///
    /// Validates `a` against this tuple's arity on every call; hot loops
    /// should resolve the list once with [`ResolvedAttrs`] instead.
    pub fn project(&self, a: &AttrList) -> CoreResult<Tuple> {
        Ok(ResolvedAttrs::new(a.indexes(), self.arity())?.project(self))
    }

    /// Tuple concatenation `r₁ ⊕ r₂`.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.0.len() + other.0.len());
        vals.extend_from_slice(&self.0);
        vals.extend_from_slice(&other.0);
        Tuple::new(vals)
    }

    /// Consumes the tuple and returns its values (copied out of the shared
    /// row; the per-value copies are refcount bumps at worst).
    pub fn into_values(self) -> Vec<Value> {
        self.0.to_vec()
    }
}

/// An attribute list resolved against a known arity: 0-based offsets,
/// validated **once** at plan/build time so per-row access needs no
/// bounds re-checks. This is the hot-loop counterpart of [`AttrList`] —
/// joins, group-bys and partitioners hash and compare key columns *in
/// place* through it instead of materialising key tuples per row.
///
/// Cloning shares the offset slice (the morsel compiler clones one
/// resolved list into every pipeline leg).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedAttrs(Arc<[usize]>);

impl ResolvedAttrs {
    /// Resolves 1-based `indexes` against `arity`, rejecting empty lists
    /// and out-of-range entries exactly like [`AttrList`] + `check_arity`.
    pub fn new(indexes: &[usize], arity: usize) -> CoreResult<Self> {
        if indexes.is_empty() {
            return Err(CoreError::TypeError(
                "attribute list must contain at least one attribute".into(),
            ));
        }
        if let Some(&bad) = indexes.iter().find(|&&i| i == 0 || i > arity) {
            return Err(CoreError::AttrIndexOutOfRange { index: bad, arity });
        }
        Ok(ResolvedAttrs(indexes.iter().map(|&i| i - 1).collect()))
    }

    /// Resolves an [`AttrList`] against an arity.
    pub fn from_attr_list(list: &AttrList, arity: usize) -> CoreResult<Self> {
        Self::new(list.indexes(), arity)
    }

    /// The 0-based offsets.
    pub fn offsets(&self) -> &[usize] {
        &self.0
    }

    /// Number of resolved attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the list is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The projected values of `t`, in list order, borrowed in place.
    ///
    /// Like all per-row accessors here, this expects `t` to conform to the
    /// arity the list was resolved against (operators guarantee this via
    /// schema checking; a violation is a bug and panics).
    pub fn values<'s, 't: 's>(&'s self, t: &'t Tuple) -> impl Iterator<Item = &'t Value> + 's {
        let vals = t.values();
        self.0.iter().map(move |&i| &vals[i])
    }

    /// Materialises the projection `α_a(t)` as a new tuple.
    pub fn project(&self, t: &Tuple) -> Tuple {
        self.values(t).cloned().collect()
    }

    /// Hashes the projected columns of `t` in place (no key tuple is
    /// built). The hash matches any other [`ResolvedAttrs`] of the same
    /// length over value-equal columns.
    pub fn hash_key(&self, t: &Tuple) -> u64 {
        let mut h = FxHasher::default();
        for v in self.values(t) {
            v.hash(&mut h);
        }
        h.finish()
    }

    /// True when the projected columns of `t` equal the (already
    /// materialised) key tuple `key`, compared in place.
    pub fn key_eq(&self, t: &Tuple, key: &Tuple) -> bool {
        self.0.len() == key.arity() && self.values(t).eq(key.values().iter())
    }

    /// True when the projections of two rows under two resolved lists are
    /// value-equal (probe-side row vs build-side row of a join).
    pub fn pair_eq(&self, t: &Tuple, other: &ResolvedAttrs, u: &Tuple) -> bool {
        self.0.len() == other.0.len() && self.values(t).eq(other.values(u))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (k, v) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

/// Builds a tuple from a heterogeneous argument list, e.g.
/// `tuple!["Grolsch", 5.0_f64, 1615_i64]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::IntoValue::into_value($v)),*])
    };
}

/// Infallible conversions into [`Value`] used by the [`tuple!`] macro.
///
/// `f64` panics on NaN (a programming error in literals, not a data error).
pub trait IntoValue {
    /// Converts `self` into a [`Value`].
    fn into_value(self) -> Value;
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}
impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }
}
impl IntoValue for i32 {
    fn into_value(self) -> Value {
        Value::Int(i64::from(self))
    }
}
impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}
impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::str(self)
    }
}
impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::str(self)
    }
}
impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::real(self).expect("literal reals must not be NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_access_is_one_based() {
        let t = tuple![10_i64, 20_i64, 30_i64];
        assert_eq!(t.attr(1).unwrap(), &Value::Int(10));
        assert_eq!(t.attr(3).unwrap(), &Value::Int(30));
        assert!(t.attr(0).is_err());
        assert!(t.attr(4).is_err());
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn projection_follows_attr_list_order_and_duplicates() {
        let t = tuple!["a", "b", "c"];
        let a = AttrList::new(vec![3, 1, 3]).unwrap();
        let p = t.project(&a).unwrap();
        assert_eq!(p, tuple!["c", "a", "c"]);
    }

    #[test]
    fn projection_out_of_range_fails() {
        let t = tuple![1_i64];
        let a = AttrList::new(vec![2]).unwrap();
        assert!(matches!(
            t.project(&a),
            Err(CoreError::AttrIndexOutOfRange { index: 2, arity: 1 })
        ));
    }

    #[test]
    fn concatenation_orders_left_then_right() {
        let l = tuple![1_i64, 2_i64];
        let r = tuple!["x"];
        assert_eq!(l.concat(&r), tuple![1_i64, 2_i64, "x"]);
        assert_eq!(r.concat(&l), tuple!["x", 1_i64, 2_i64]);
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let t = tuple![1_i64, "y"];
        assert_eq!(t.concat(&Tuple::empty()), t);
        assert_eq!(Tuple::empty().concat(&t), t);
    }

    #[test]
    fn attr_list_validation() {
        assert!(AttrList::new(vec![]).is_err());
        assert!(AttrList::new(vec![0]).is_err());
        assert!(AttrList::new(vec![1, 1]).is_ok());
        assert!(AttrList::new_unique(vec![1, 1]).is_err());
        assert!(AttrList::new_unique(vec![1, 2]).is_ok());
        assert!(AttrList::new(vec![1, 2]).unwrap().is_duplicate_free());
        assert!(!AttrList::new(vec![2, 1, 2]).unwrap().is_duplicate_free());
    }

    #[test]
    fn attr_list_identity_and_display() {
        let id = AttrList::identity(3).unwrap();
        assert_eq!(id.indexes(), &[1, 2, 3]);
        assert_eq!(id.to_string(), "(%1,%2,%3)");
        assert!(id.fits_arity(3));
        assert!(!id.fits_arity(2));
    }

    #[test]
    fn tuple_display() {
        let t = tuple!["Grolsch", 5.0_f64];
        assert_eq!(t.to_string(), "<'Grolsch', 5.0>");
        assert_eq!(Tuple::empty().to_string(), "<>");
    }

    #[test]
    fn tuple_equality_by_attributes() {
        // Def 2.4: r1 = r2 iff all corresponding attributes are equal.
        assert_eq!(tuple![1_i64, "a"], tuple![1_i64, "a"]);
        assert_ne!(tuple![1_i64, "a"], tuple![1_i64, "b"]);
        assert_ne!(tuple![1_i64], tuple![1_i64, 1_i64]);
    }
}
