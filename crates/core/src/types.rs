//! Domain names (Definition 2.1) and numeric coercion rules.

use std::fmt;

use crate::error::{CoreError, CoreResult};

/// The name of an atomic domain.
///
/// `dom(A_i)` in the paper; every attribute of a relation schema is defined
/// on exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// Boolean domain.
    Bool,
    /// 64-bit integer domain.
    Int,
    /// Finite-double real domain.
    Real,
    /// String domain.
    Str,
    /// Calendar-date domain.
    Date,
    /// Time-of-day domain.
    Time,
    /// Fixed-point money domain.
    Money,
}

impl DataType {
    /// True for domains on which SUM/AVG are defined ("p must have a numeric
    /// domain", Definition 3.3).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Real | DataType::Money)
    }

    /// True for domains with a total order, i.e. on which MIN/MAX and the
    /// comparison predicates `<`, `<=`, `>`, `>=` are defined.
    ///
    /// All our domains are totally ordered except `bool`, which we still
    /// order (`false < true`) for determinism but exclude from range
    /// comparisons to keep predicates intention-revealing.
    pub fn is_ordered(self) -> bool {
        !matches!(self, DataType::Bool)
    }

    /// The result domain of a binary arithmetic operation between `self` and
    /// `other`, or a type error when the combination is meaningless.
    ///
    /// Coercion ladder: `int ∘ int → int`, any mix involving `real → real`,
    /// `money ∘ money → money` (addition/subtraction) and
    /// `money ∘ int → money` (scaling). Strings, bools, dates and times do
    /// not participate in arithmetic.
    pub fn arithmetic_result(self, other: DataType) -> CoreResult<DataType> {
        use DataType::*;
        match (self, other) {
            (Int, Int) => Ok(Int),
            (Int, Real) | (Real, Int) | (Real, Real) => Ok(Real),
            (Money, Money) => Ok(Money),
            (Money, Int) | (Int, Money) => Ok(Money),
            (Money, Real) | (Real, Money) => Ok(Real),
            (a, b) => Err(CoreError::TypeError(format!(
                "no arithmetic between {a} and {b}"
            ))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Real => "real",
            DataType::Str => "str",
            DataType::Date => "date",
            DataType::Time => "time",
            DataType::Money => "money",
        };
        f.write_str(name)
    }
}

/// All data types, in their canonical order. Handy for exhaustive tests and
/// random schema generation.
pub const ALL_TYPES: [DataType; 7] = [
    DataType::Bool,
    DataType::Int,
    DataType::Real,
    DataType::Str,
    DataType::Date,
    DataType::Time,
    DataType::Money,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Real.is_numeric());
        assert!(DataType::Money.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }

    #[test]
    fn ordered_classification() {
        assert!(DataType::Str.is_ordered());
        assert!(DataType::Date.is_ordered());
        assert!(!DataType::Bool.is_ordered());
    }

    #[test]
    fn arithmetic_coercion_ladder() {
        use DataType::*;
        assert_eq!(Int.arithmetic_result(Int).unwrap(), Int);
        assert_eq!(Int.arithmetic_result(Real).unwrap(), Real);
        assert_eq!(Real.arithmetic_result(Int).unwrap(), Real);
        assert_eq!(Money.arithmetic_result(Money).unwrap(), Money);
        assert_eq!(Money.arithmetic_result(Int).unwrap(), Money);
        assert_eq!(Money.arithmetic_result(Real).unwrap(), Real);
        assert!(Str.arithmetic_result(Int).is_err());
        assert!(Bool.arithmetic_result(Bool).is_err());
        assert!(Date.arithmetic_result(Date).is_err());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = ALL_TYPES.iter().map(|t| t.to_string()).collect();
        assert_eq!(
            names,
            ["bool", "int", "real", "str", "date", "time", "money"]
        );
    }
}
