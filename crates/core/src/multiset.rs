//! A generic counted multi-set (bag).
//!
//! Definition 2.2 models a relation instance as a *function* `R : dom(R) → ℕ`
//! mapping each element to its multiplicity. [`Bag`] is exactly that
//! function, restricted to its finite support: elements with multiplicity 0
//! are never stored, so `support().count()` is the number of *distinct*
//! elements and [`Bag::len`] the total number of elements counted with
//! multiplicity.
//!
//! All multiplicity arithmetic of Definitions 3.1–3.2 lives here, element
//! type-agnostic, so it can be property-tested in isolation and reused by
//! both [`Relation`](crate::relation::Relation) and test harnesses:
//!
//! | paper | here | multiplicity law |
//! |---|---|---|
//! | `E₁ ⊎ E₂` | [`Bag::union`] | `m₁ + m₂` |
//! | `E₁ − E₂` | [`Bag::difference`] | `max(0, m₁ − m₂)` |
//! | `E₁ ∩ E₂` | [`Bag::intersection`] | `min(m₁, m₂)` |
//! | `E₁ ⊑ E₂` | [`Bag::is_submultiset`] | `∀x: m₁(x) ≤ m₂(x)` |
//! | `δE` | [`Bag::distinct`] | `min(1, m)` |

use std::hash::Hash;

use rustc_hash::FxHashMap;

use crate::error::{CoreError, CoreResult};

/// A finite multi-set over `T`, stored as `element → multiplicity`.
#[derive(Debug, Clone)]
pub struct Bag<T: Eq + Hash> {
    counts: FxHashMap<T, u64>,
    /// Cached total multiplicity (Σ multiplicities).
    len: u64,
}

impl<T: Eq + Hash> Default for Bag<T> {
    fn default() -> Self {
        Bag {
            counts: FxHashMap::default(),
            len: 0,
        }
    }
}

impl<T: Eq + Hash + Clone> Bag<T> {
    /// The empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bag pre-sized for `n` distinct elements.
    pub fn with_capacity(n: usize) -> Self {
        Bag {
            counts: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            len: 0,
        }
    }

    /// Total number of elements, counted with multiplicity (`Σ_x B(x)`).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the bag contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of *distinct* elements (the support size).
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// The multiplicity `B(x)` of an element; 0 when absent.
    pub fn multiplicity(&self, x: &T) -> u64 {
        self.counts.get(x).copied().unwrap_or(0)
    }

    /// Element membership: `x ∈ B ⟺ B(x) > 0` (Definition 2.4).
    pub fn contains(&self, x: &T) -> bool {
        self.counts.contains_key(x)
    }

    /// Adds `m` occurrences of `x`. Adding zero occurrences is a no-op
    /// (multiplicity-0 pairs are never materialised).
    pub fn insert(&mut self, x: T, m: u64) -> CoreResult<()> {
        if m == 0 {
            return Ok(());
        }
        self.len = self
            .len
            .checked_add(m)
            .ok_or(CoreError::Overflow("bag cardinality"))?;
        let slot = self.counts.entry(x).or_insert(0);
        *slot = slot
            .checked_add(m)
            .ok_or(CoreError::Overflow("element multiplicity"))?;
        Ok(())
    }

    /// Adds one occurrence of `x`.
    pub fn insert_one(&mut self, x: T) -> CoreResult<()> {
        self.insert(x, 1)
    }

    /// Removes up to `m` occurrences of `x`, returning how many were
    /// actually removed (`min(m, B(x))` — the pointwise difference law).
    pub fn remove(&mut self, x: &T, m: u64) -> u64 {
        if m == 0 {
            return 0;
        }
        match self.counts.get_mut(x) {
            None => 0,
            Some(cur) => {
                let removed = m.min(*cur);
                *cur -= removed;
                if *cur == 0 {
                    self.counts.remove(x);
                }
                self.len -= removed;
                removed
            }
        }
    }

    /// Iterates over `(element, multiplicity)` pairs — the paper's
    /// "set of pairs `(r, R(r))` without duplicates" notation.
    pub fn iter(&self) -> impl Iterator<Item = (&T, u64)> {
        self.counts.iter().map(|(x, &m)| (x, m))
    }

    /// Iterates over the distinct elements (the support).
    pub fn support(&self) -> impl Iterator<Item = &T> {
        self.counts.keys()
    }

    /// Iterates over elements *with* duplicates — the paper's "collection of
    /// individual tuples possibly containing duplicates" notation.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &T> + '_ {
        self.counts
            .iter()
            .flat_map(|(x, &m)| std::iter::repeat_n(x, m as usize))
    }

    /// Multi-set union `B₁ ⊎ B₂`: multiplicities add.
    pub fn union(&self, other: &Self) -> CoreResult<Self> {
        let mut out = self.clone();
        for (x, m) in other.iter() {
            out.insert(x.clone(), m)?;
        }
        Ok(out)
    }

    /// In-place union absorbing `other` (multiplicities add) without
    /// cloning its elements — the merge step of parallel two-phase
    /// evaluation, where each worker's thread-local bag is moved into one
    /// result.
    pub fn absorb(&mut self, other: Bag<T>) -> CoreResult<()> {
        for (x, m) in other {
            self.insert(x, m)?;
        }
        Ok(())
    }

    /// Multi-set difference `B₁ − B₂`: `max(0, m₁ − m₂)` pointwise.
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = Self::with_capacity(self.distinct_len());
        for (x, m1) in self.iter() {
            let m2 = other.multiplicity(x);
            if m1 > m2 {
                // cannot overflow: m1 - m2 ≤ m1 ≤ self.len
                out.counts.insert(x.clone(), m1 - m2);
                out.len += m1 - m2;
            }
        }
        out
    }

    /// Multi-set intersection `B₁ ∩ B₂`: `min(m₁, m₂)` pointwise.
    pub fn intersection(&self, other: &Self) -> Self {
        // iterate over the smaller support
        let (small, big) = if self.distinct_len() <= other.distinct_len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Self::with_capacity(small.distinct_len());
        for (x, m1) in small.iter() {
            let m = m1.min(big.multiplicity(x));
            if m > 0 {
                out.counts.insert(x.clone(), m);
                out.len += m;
            }
        }
        out
    }

    /// Duplicate elimination `δB`: every present element at multiplicity 1.
    pub fn distinct(&self) -> Self {
        let mut counts =
            FxHashMap::with_capacity_and_hasher(self.distinct_len(), Default::default());
        for x in self.support() {
            counts.insert(x.clone(), 1);
        }
        Bag {
            len: counts.len() as u64,
            counts,
        }
    }

    /// Multi-subset test `B₁ ⊑ B₂` (Definition 2.3).
    pub fn is_submultiset(&self, other: &Self) -> bool {
        self.len <= other.len && self.iter().all(|(x, m)| m <= other.multiplicity(x))
    }

    /// Maps every element through `f`, summing multiplicities of collapsing
    /// images — the multiplicity law of projection (Definition 3.1):
    /// `π(E)(y) = Σ_{f(x)=y} E(x)`.
    pub fn map<U, F>(&self, mut f: F) -> CoreResult<Bag<U>>
    where
        U: Eq + Hash + Clone,
        F: FnMut(&T) -> CoreResult<U>,
    {
        let mut out = Bag::with_capacity(self.distinct_len());
        for (x, m) in self.iter() {
            out.insert(f(x)?, m)?;
        }
        Ok(out)
    }

    /// Keeps elements satisfying `p`, multiplicities unchanged — the
    /// multiplicity law of selection (Definition 3.1).
    pub fn filter<F>(&self, mut p: F) -> CoreResult<Self>
    where
        F: FnMut(&T) -> CoreResult<bool>,
    {
        let mut out = Self::with_capacity(self.distinct_len());
        for (x, m) in self.iter() {
            if p(x)? {
                out.counts.insert(x.clone(), m);
                out.len += m;
            }
        }
        Ok(out)
    }

    /// Cartesian product with combiner: multiplicities multiply
    /// (`(E₁×E₂)(x⊕y) = E₁(x)·E₂(y)`, Definition 3.1).
    pub fn product<U, V, F>(&self, other: &Bag<U>, mut f: F) -> CoreResult<Bag<V>>
    where
        U: Eq + Hash + Clone,
        V: Eq + Hash + Clone,
        F: FnMut(&T, &U) -> V,
    {
        let mut out = Bag::with_capacity(self.distinct_len() * other.distinct_len());
        for (x, m1) in self.iter() {
            for (y, m2) in other.iter() {
                let m = m1
                    .checked_mul(m2)
                    .ok_or(CoreError::Overflow("product multiplicity"))?;
                out.insert(f(x, y), m)?;
            }
        }
        Ok(out)
    }
}

/// Bag equality is the pointwise multiplicity equality of Definition 2.3.
impl<T: Eq + Hash> PartialEq for Bag<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.counts == other.counts
    }
}

impl<T: Eq + Hash> Eq for Bag<T> {}

impl<T: Eq + Hash + Clone> FromIterator<T> for Bag<T> {
    /// Collects duplicated elements into counted form. Panics only on
    /// u64 overflow, which `FromIterator` cannot report.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut bag = Bag::new();
        for x in iter {
            bag.insert_one(x).expect("bag cardinality overflow");
        }
        bag
    }
}

impl<T: Eq + Hash> IntoIterator for Bag<T> {
    type Item = (T, u64);
    type IntoIter = std::collections::hash_map::IntoIter<T, u64>;

    /// Consumes the bag, yielding owned `(element, multiplicity)` pairs.
    fn into_iter(self) -> Self::IntoIter {
        self.counts.into_iter()
    }
}

impl<T: Eq + Hash + Clone> FromIterator<(T, u64)> for Bag<T> {
    fn from_iter<I: IntoIterator<Item = (T, u64)>>(iter: I) -> Self {
        let mut bag = Bag::new();
        for (x, m) in iter {
            bag.insert(x, m).expect("bag cardinality overflow");
        }
        bag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(xs: &[(i32, u64)]) -> Bag<i32> {
        xs.iter().copied().collect()
    }

    #[test]
    fn empty_bag() {
        let b: Bag<i32> = Bag::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.distinct_len(), 0);
        assert_eq!(b.multiplicity(&1), 0);
        assert!(!b.contains(&1));
    }

    #[test]
    fn insert_and_multiplicity() {
        let mut b = Bag::new();
        b.insert(7, 3).unwrap();
        b.insert(7, 2).unwrap();
        b.insert(9, 1).unwrap();
        b.insert(5, 0).unwrap(); // no-op
        assert_eq!(b.multiplicity(&7), 5);
        assert_eq!(b.multiplicity(&9), 1);
        assert_eq!(b.len(), 6);
        assert_eq!(b.distinct_len(), 2);
        assert!(!b.contains(&5));
    }

    #[test]
    fn remove_caps_at_present_multiplicity() {
        let mut b = bag(&[(1, 3)]);
        assert_eq!(b.remove(&1, 2), 2);
        assert_eq!(b.multiplicity(&1), 1);
        assert_eq!(b.remove(&1, 5), 1);
        assert!(!b.contains(&1));
        assert_eq!(b.remove(&1, 1), 0);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn union_adds_multiplicities() {
        let a = bag(&[(1, 2), (2, 1)]);
        let b = bag(&[(1, 3), (3, 4)]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.multiplicity(&1), 5);
        assert_eq!(u.multiplicity(&2), 1);
        assert_eq!(u.multiplicity(&3), 4);
        assert_eq!(u.len(), 10);
    }

    #[test]
    fn difference_saturates_at_zero() {
        let a = bag(&[(1, 2), (2, 5)]);
        let b = bag(&[(1, 7), (2, 2)]);
        let d = a.difference(&b);
        assert_eq!(d.multiplicity(&1), 0);
        assert_eq!(d.multiplicity(&2), 3);
        assert_eq!(d.len(), 3);
        assert!(!d.contains(&1)); // zero-multiplicity pairs never stored
    }

    #[test]
    fn intersection_takes_minimum() {
        let a = bag(&[(1, 2), (2, 5), (3, 1)]);
        let b = bag(&[(1, 7), (2, 2)]);
        let i = a.intersection(&b);
        assert_eq!(i.multiplicity(&1), 2);
        assert_eq!(i.multiplicity(&2), 2);
        assert_eq!(i.multiplicity(&3), 0);
        // symmetric regardless of which support is iterated
        assert_eq!(i, b.intersection(&a));
    }

    #[test]
    fn distinct_caps_at_one() {
        let a = bag(&[(1, 5), (2, 1)]);
        let d = a.distinct();
        assert_eq!(d.multiplicity(&1), 1);
        assert_eq!(d.multiplicity(&2), 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn submultiset_is_pointwise_leq() {
        let a = bag(&[(1, 2)]);
        let b = bag(&[(1, 3), (2, 1)]);
        assert!(a.is_submultiset(&b));
        assert!(!b.is_submultiset(&a));
        assert!(Bag::<i32>::new().is_submultiset(&a));
        assert!(a.is_submultiset(&a));
    }

    #[test]
    fn equality_is_pointwise() {
        assert_eq!(bag(&[(1, 2), (2, 1)]), bag(&[(2, 1), (1, 2)]));
        assert_ne!(bag(&[(1, 2)]), bag(&[(1, 3)]));
        assert_ne!(bag(&[(1, 1)]), bag(&[(2, 1)]));
    }

    #[test]
    fn map_sums_collapsing_multiplicities() {
        // project 1 and 2 onto the same image
        let a = bag(&[(1, 2), (2, 3), (10, 1)]);
        let p = a.map(|&x| Ok(x % 2)).unwrap();
        assert_eq!(p.multiplicity(&1), 2); // from 1
        assert_eq!(p.multiplicity(&0), 4); // from 2 and 10
        assert_eq!(p.len(), a.len());
    }

    #[test]
    fn filter_preserves_multiplicities() {
        let a = bag(&[(1, 2), (2, 3)]);
        let f = a.filter(|&x| Ok(x > 1)).unwrap();
        assert_eq!(f.multiplicity(&2), 3);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn filter_propagates_errors() {
        let a = bag(&[(1, 1)]);
        let r = a.filter(|_| Err(CoreError::DivisionByZero));
        assert_eq!(r.unwrap_err(), CoreError::DivisionByZero);
    }

    #[test]
    fn product_multiplies_multiplicities() {
        let a = bag(&[(1, 2), (2, 1)]);
        let b = bag(&[(10, 3)]);
        let p = a.product(&b, |&x, &y| (x, y)).unwrap();
        assert_eq!(p.multiplicity(&(1, 10)), 6);
        assert_eq!(p.multiplicity(&(2, 10)), 3);
        assert_eq!(p.len(), a.len() * b.len());
    }

    #[test]
    fn product_with_empty_is_empty() {
        let a = bag(&[(1, 2)]);
        let e: Bag<i32> = Bag::new();
        assert!(a.product(&e, |&x, &y| (x, y)).unwrap().is_empty());
        assert!(e.product(&a, |&x, &y| (x, y)).unwrap().is_empty());
    }

    #[test]
    fn iter_expanded_repeats_elements() {
        let a = bag(&[(1, 3), (2, 1)]);
        let mut v: Vec<i32> = a.iter_expanded().copied().collect();
        v.sort_unstable();
        assert_eq!(v, [1, 1, 1, 2]);
    }

    #[test]
    fn from_iter_of_duplicates() {
        let b: Bag<i32> = [1, 1, 2, 1].into_iter().collect();
        assert_eq!(b.multiplicity(&1), 3);
        assert_eq!(b.multiplicity(&2), 1);
    }

    #[test]
    fn multiplicity_overflow_detected() {
        let mut b = Bag::new();
        b.insert(1u8, u64::MAX).unwrap();
        assert!(matches!(b.insert(1u8, 1), Err(CoreError::Overflow(_))));
    }
}
