//! A counting global allocator for allocation-regression tests and
//! benchmark reports.
//!
//! The hot-loop guarantees of this engine (filter, probe and group-update
//! steady states allocate O(1) per batch, not O(rows)) are behavioural
//! claims about the *allocator*, not about wall-clock time — so they are
//! tested by counting allocations directly. [`CountingAlloc`] forwards to
//! the system allocator and bumps a process-global counter on every
//! `alloc`/`realloc`.
//!
//! This module only defines the type and the counter; nothing happens
//! unless a downstream **binary or integration-test crate** registers it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mera_core::counting_alloc::CountingAlloc =
//!     mera_core::counting_alloc::CountingAlloc;
//! ```
//!
//! Registration is deliberately left to those leaf crates (a library must
//! not impose a global allocator on its users).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Forwards to the system allocator, counting every `alloc`/`realloc`.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`, which upholds the `GlobalAlloc`
// contract; the counter update does not allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's, passed through unchanged; the
        // caller's obligations (nonzero size) are exactly `System`'s.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `self.alloc`, which forwards to
        // `System`, so it is a `System` allocation with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: as for `dealloc`; `new_size` obligations are forwarded
        // verbatim to the caller via the trait contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations made so far (0 if [`CountingAlloc`] is not the
/// registered global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations performed while running `f`.
///
/// Only meaningful single-threaded with [`CountingAlloc`] registered;
/// concurrent allocations from other threads are attributed to `f`.
pub fn allocations_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = allocation_count();
    let out = f();
    (allocation_count() - before, out)
}
