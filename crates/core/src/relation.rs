//! Multi-set relations (Definitions 2.2–2.4) and the schema-checked
//! operator kernels of Definitions 3.1–3.2.
//!
//! A [`Relation`] is a [`Bag`] of [`Tuple`]s paired with the schema the bag
//! is defined on. Every operator validates schema compatibility before
//! delegating the multiplicity arithmetic to the bag layer, so this module
//! is the *semantics kernel* the reference evaluator is built from.

use std::fmt;
use std::sync::Arc;

use crate::error::CoreResult;
use crate::multiset::Bag;
use crate::schema::{Schema, SchemaRef};
use crate::tuple::{AttrList, Tuple};

/// A relation instance: a multi-set of tuples over a schema.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: SchemaRef,
    tuples: Bag<Tuple>,
}

impl Relation {
    /// The empty relation over `schema`.
    pub fn empty(schema: SchemaRef) -> Self {
        Relation {
            schema,
            tuples: Bag::new(),
        }
    }

    /// Builds a relation from duplicated tuples, validating each against the
    /// schema.
    pub fn from_tuples<I>(schema: SchemaRef, tuples: I) -> CoreResult<Self>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.insert(t, 1)?;
        }
        Ok(rel)
    }

    /// Builds a relation from `(tuple, multiplicity)` pairs.
    pub fn from_counted<I>(schema: SchemaRef, pairs: I) -> CoreResult<Self>
    where
        I: IntoIterator<Item = (Tuple, u64)>,
    {
        let mut rel = Relation::empty(schema);
        for (t, m) in pairs {
            rel.insert(t, m)?;
        }
        Ok(rel)
    }

    /// Rebuilds a relation from an already-validated bag (crate-internal
    /// fast path for operators that cannot produce ill-typed tuples).
    pub(crate) fn from_bag(schema: SchemaRef, tuples: Bag<Tuple>) -> Self {
        Relation { schema, tuples }
    }

    /// The schema this relation is defined on.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Cardinality: number of tuples counted with multiplicity.
    pub fn len(&self) -> u64 {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of distinct tuples.
    pub fn distinct_len(&self) -> usize {
        self.tuples.distinct_len()
    }

    /// The multiplicity `R(x)` of a tuple.
    pub fn multiplicity(&self, t: &Tuple) -> u64 {
        self.tuples.multiplicity(t)
    }

    /// Membership `r ∈ R ⟺ R(r) > 0` (Definition 2.4).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Adds `m` occurrences of a tuple after validating it against the
    /// schema.
    pub fn insert(&mut self, t: Tuple, m: u64) -> CoreResult<()> {
        self.schema.check_tuple(&t)?;
        self.tuples.insert(t, m)
    }

    /// Removes up to `m` occurrences of a tuple, returning how many were
    /// removed.
    pub fn remove(&mut self, t: &Tuple, m: u64) -> u64 {
        self.tuples.remove(t, m)
    }

    /// Iterates `(tuple, multiplicity)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.tuples.iter()
    }

    /// Iterates distinct tuples.
    pub fn support(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.support()
    }

    /// Iterates tuples with duplicates expanded.
    pub fn iter_expanded(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter_expanded()
    }

    /// `(tuple, multiplicity)` pairs sorted by tuple — a deterministic view
    /// for golden tests and display.
    pub fn sorted_pairs(&self) -> Vec<(Tuple, u64)> {
        let mut v: Vec<(Tuple, u64)> = self.iter().map(|(t, m)| (t.clone(), m)).collect();
        v.sort();
        v
    }

    /// The underlying bag (read-only).
    pub fn bag(&self) -> &Bag<Tuple> {
        &self.tuples
    }

    /// Consumes the relation, returning its bag.
    pub fn into_bag(self) -> Bag<Tuple> {
        self.tuples
    }

    // ------------------------------------------------------------------
    // Definition 2.3: comparison operators
    // ------------------------------------------------------------------

    /// Multi-subset `R₁ ⊑ R₂`; requires type-compatible schemas.
    pub fn is_submultiset(&self, other: &Relation) -> CoreResult<bool> {
        self.schema.check_same_types(&other.schema)?;
        Ok(self.tuples.is_submultiset(&other.tuples))
    }

    // ------------------------------------------------------------------
    // Definition 3.1/3.2: operator kernels
    // ------------------------------------------------------------------

    /// Union `R₁ ⊎ R₂`: multiplicities add. Result keeps the left schema
    /// (the two must be type-compatible).
    pub fn union(&self, other: &Relation) -> CoreResult<Relation> {
        self.schema.check_same_types(&other.schema)?;
        Ok(Relation::from_bag(
            Arc::clone(&self.schema),
            self.tuples.union(&other.tuples)?,
        ))
    }

    /// Difference `R₁ − R₂`: `max(0, m₁ − m₂)` pointwise.
    pub fn difference(&self, other: &Relation) -> CoreResult<Relation> {
        self.schema.check_same_types(&other.schema)?;
        Ok(Relation::from_bag(
            Arc::clone(&self.schema),
            self.tuples.difference(&other.tuples),
        ))
    }

    /// Intersection `R₁ ∩ R₂`: `min(m₁, m₂)` pointwise.
    pub fn intersection(&self, other: &Relation) -> CoreResult<Relation> {
        self.schema.check_same_types(&other.schema)?;
        Ok(Relation::from_bag(
            Arc::clone(&self.schema),
            self.tuples.intersection(&other.tuples),
        ))
    }

    /// Product `R₁ × R₂`: tuples concatenate, multiplicities multiply.
    pub fn product(&self, other: &Relation) -> CoreResult<Relation> {
        let schema = Arc::new(self.schema.concat(&other.schema));
        let bag = self.tuples.product(&other.tuples, |x, y| x.concat(y))?;
        Ok(Relation::from_bag(schema, bag))
    }

    /// Selection `σ_φ(R)` for an arbitrary predicate closure; multiplicities
    /// are preserved. The closure is the paper's "function from dom(E) into
    /// the boolean domain".
    pub fn select<F>(&self, predicate: F) -> CoreResult<Relation>
    where
        F: FnMut(&Tuple) -> CoreResult<bool>,
    {
        Ok(Relation::from_bag(
            Arc::clone(&self.schema),
            self.tuples.filter(predicate)?,
        ))
    }

    /// Projection `π_a(R)`: tuples project, multiplicities of collapsing
    /// tuples *sum* — the heart of bag semantics.
    pub fn project(&self, a: &AttrList) -> CoreResult<Relation> {
        a.check_arity(self.schema.arity())?;
        let schema = Arc::new(self.schema.project(a)?);
        let bag = self.tuples.map(|t| t.project(a))?;
        Ok(Relation::from_bag(schema, bag))
    }

    /// Generalised projection through an arbitrary tuple function producing
    /// tuples of `out_schema` (used by the extended projection of
    /// Definition 3.4); multiplicities of collapsing images sum.
    pub fn map_tuples<F>(&self, out_schema: SchemaRef, f: F) -> CoreResult<Relation>
    where
        F: FnMut(&Tuple) -> CoreResult<Tuple>,
    {
        let bag = self.tuples.map(f)?;
        for t in bag.support() {
            out_schema.check_tuple(t)?;
        }
        Ok(Relation::from_bag(out_schema, bag))
    }

    /// Duplicate elimination `δR` (Definition 3.4).
    pub fn distinct(&self) -> Relation {
        Relation::from_bag(Arc::clone(&self.schema), self.tuples.distinct())
    }
}

/// Relation equality (Definition 2.3): type-compatible schemas and pointwise
/// equal multiplicities.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema.same_types(&other.schema) && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    /// Renders the relation as a fixed-width table with a multiplicity
    /// column, rows sorted for determinism.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .enumerate()
            .map(|(i, a)| match &a.name {
                Some(n) => n.clone(),
                None => format!("%{}", i + 1),
            })
            .collect();
        let rows = self.sorted_pairs();
        let cells: Vec<Vec<String>> = rows
            .iter()
            .map(|(t, m)| {
                let mut row: Vec<String> = t.values().iter().map(|v| v.to_string()).collect();
                row.push(m.to_string());
                row
            })
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        widths.push(1); // the "#" multiplicity column
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                if c.len() > widths[i] {
                    widths[i] = c.len();
                }
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cols: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cols.iter().enumerate() {
                write!(f, " {c:<w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        let mut header_cols = headers;
        header_cols.push("#".to_owned());
        write_row(f, &header_cols)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &cells {
            write_row(f, row)?;
        }
        write!(
            f,
            "({} tuples, {} distinct)",
            self.len(),
            self.distinct_len()
        )
    }
}

/// Builds a [`Relation`] together with its schema in one expression; see
/// crate-level docs for an example.
pub fn relation_of(schema: Schema, rows: Vec<Tuple>) -> CoreResult<Relation> {
    Relation::from_tuples(Arc::new(schema), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::tuple;
    use crate::types::DataType;

    fn ints(rows: &[i64]) -> Relation {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        Relation::from_tuples(schema, rows.iter().map(|&i| tuple![i])).unwrap()
    }

    fn beer() -> Relation {
        relation_of(
            Schema::named(&[
                ("name", DataType::Str),
                ("brewery", DataType::Str),
                ("alcperc", DataType::Real),
            ]),
            vec![
                tuple!["Grolsch", "Grolsche", 5.0_f64],
                tuple!["Heineken", "Heineken", 5.0_f64],
                tuple!["Heineken", "Heineken", 5.0_f64], // duplicate
                tuple!["Guinness", "StJames", 4.2_f64],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_tuples() {
        let schema = Arc::new(Schema::anon(&[DataType::Int]));
        let ok = Relation::from_tuples(Arc::clone(&schema), vec![tuple![1_i64]]);
        assert!(ok.is_ok());
        let bad = Relation::from_tuples(schema, vec![tuple!["x"]]);
        assert!(matches!(bad, Err(CoreError::TupleSchemaMismatch { .. })));
    }

    #[test]
    fn duplicates_are_counted() {
        let r = beer();
        assert_eq!(r.len(), 4);
        assert_eq!(r.distinct_len(), 3);
        assert_eq!(r.multiplicity(&tuple!["Heineken", "Heineken", 5.0_f64]), 2);
    }

    #[test]
    fn union_requires_compatible_schema() {
        let a = ints(&[1, 2]);
        let b = beer();
        assert!(matches!(a.union(&b), Err(CoreError::SchemaMismatch { .. })));
    }

    #[test]
    fn union_difference_intersection() {
        let a = ints(&[1, 1, 2]);
        let b = ints(&[1, 3]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.multiplicity(&tuple![1_i64]), 3);
        assert_eq!(u.len(), 5);
        let d = a.difference(&b).unwrap();
        assert_eq!(d.multiplicity(&tuple![1_i64]), 1);
        assert_eq!(d.multiplicity(&tuple![2_i64]), 1);
        assert_eq!(d.multiplicity(&tuple![3_i64]), 0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.multiplicity(&tuple![1_i64]), 1);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn product_concatenates_and_multiplies() {
        let a = ints(&[1, 1]);
        let b = beer();
        let p = a.product(&b).unwrap();
        assert_eq!(p.schema().arity(), 4);
        assert_eq!(p.len(), a.len() * b.len());
        assert_eq!(
            p.multiplicity(&tuple![1_i64, "Heineken", "Heineken", 5.0_f64]),
            4 // 2 copies of <1> × 2 copies of the Heineken row
        );
    }

    #[test]
    fn select_preserves_multiplicity() {
        let r = beer();
        let s = r
            .select(|t| Ok(t.attr(3).unwrap().as_f64().unwrap() >= 5.0))
            .unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.multiplicity(&tuple!["Heineken", "Heineken", 5.0_f64]), 2);
    }

    #[test]
    fn project_sums_collapsing_multiplicities() {
        let r = beer();
        let p = r.project(&AttrList::new(vec![3]).unwrap()).unwrap();
        // 5.0 appears for Grolsch (×1) and Heineken (×2)
        assert_eq!(p.multiplicity(&tuple![5.0_f64]), 3);
        assert_eq!(p.multiplicity(&tuple![4.2_f64]), 1);
        assert_eq!(p.len(), r.len()); // projection never loses tuples under bags
    }

    #[test]
    fn distinct_removes_duplicates() {
        let r = beer();
        let d = r.distinct();
        assert_eq!(d.len(), 3);
        assert_eq!(d.multiplicity(&tuple!["Heineken", "Heineken", 5.0_f64]), 1);
    }

    #[test]
    fn equality_ignores_attribute_names() {
        let a = ints(&[1, 2]);
        let named = Relation::from_tuples(
            Arc::new(Schema::named(&[("n", DataType::Int)])),
            vec![tuple![2_i64], tuple![1_i64]],
        )
        .unwrap();
        assert_eq!(a, named);
    }

    #[test]
    fn submultiset_checks_schema_then_counts() {
        let a = ints(&[1]);
        let b = ints(&[1, 1, 2]);
        assert!(a.is_submultiset(&b).unwrap());
        assert!(!b.is_submultiset(&a).unwrap());
        assert!(a.is_submultiset(&beer()).is_err());
    }

    #[test]
    fn display_renders_sorted_table() {
        let r = ints(&[2, 1, 1]);
        let s = r.to_string();
        assert!(s.contains("%1"), "{s}");
        let one = s.find("| 1").unwrap();
        let two = s.find("| 2").unwrap();
        assert!(one < two);
        assert!(s.contains("(3 tuples, 2 distinct)"));
    }

    #[test]
    fn remove_decrements() {
        let mut r = ints(&[1, 1, 2]);
        assert_eq!(r.remove(&tuple![1_i64], 1), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.remove(&tuple![9_i64], 1), 0);
    }

    #[test]
    fn map_tuples_validates_output_schema() {
        let r = ints(&[1, 2]);
        let out = Arc::new(Schema::anon(&[DataType::Int]));
        let doubled = r
            .map_tuples(Arc::clone(&out), |t| Ok(tuple![t.attr(1)?.as_int()? * 2]))
            .unwrap();
        assert!(doubled.contains(&tuple![4_i64]));
        let bad = r.map_tuples(out, |_| Ok(tuple!["oops"]));
        assert!(bad.is_err());
    }
}
