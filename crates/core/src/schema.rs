//! Relation schemas (Definition 2.2).
//!
//! A relation schema is a list of attributes, each defined on a domain. The
//! paper orders attributes so they can be addressed *by index* (`%i`), which
//! also lets intermediate, anonymous results be addressed uniformly; names
//! are a convenience layer on top. Both are supported: every attribute has a
//! domain and an *optional* name.
//!
//! The tuple operators `α` (projection) and `⊕` (concatenation) are lifted
//! to schemas here, with "obvious semantics" as the paper puts it.

use std::fmt;
use std::sync::Arc;

use crate::error::{CoreError, CoreResult};
use crate::tuple::{AttrList, Tuple};
use crate::types::DataType;

/// One attribute of a relation schema: a domain plus an optional name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Optional attribute name (anonymous attributes arise from expressions).
    pub name: Option<String>,
    /// The domain the attribute is defined on.
    pub dtype: DataType,
}

impl Attribute {
    /// A named attribute.
    pub fn named(name: impl Into<String>, dtype: DataType) -> Self {
        Attribute {
            name: Some(name.into()),
            dtype,
        }
    }

    /// An anonymous attribute (only addressable by index).
    pub fn anon(dtype: DataType) -> Self {
        Attribute { name: None, dtype }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}: {}", self.dtype),
            None => write!(f, "{}", self.dtype),
        }
    }
}

/// An ordered list of attributes — the type `E` that relational expressions
/// are "defined on" throughout the paper.
///
/// Cheap to share: algebra nodes and relations hold `Arc<Schema>`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from its attributes. The empty schema is allowed; it
    /// is the schema of the single-tuple result of an aggregate with an
    /// empty grouping list before the aggregate column is appended.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Schema { attrs }
    }

    /// Builds a schema of named attributes from `(name, type)` pairs.
    pub fn named(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            attrs: pairs.iter().map(|&(n, t)| Attribute::named(n, t)).collect(),
        }
    }

    /// Builds a schema of anonymous attributes from types alone.
    pub fn anon(types: &[DataType]) -> Self {
        Schema {
            attrs: types.iter().map(|&t| Attribute::anon(t)).collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes, in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at 1-based index `i`.
    pub fn attr(&self, i: usize) -> CoreResult<&Attribute> {
        if i == 0 || i > self.attrs.len() {
            return Err(CoreError::AttrIndexOutOfRange {
                index: i,
                arity: self.attrs.len(),
            });
        }
        Ok(&self.attrs[i - 1])
    }

    /// The domain of the attribute at 1-based index `i`.
    pub fn dtype(&self, i: usize) -> CoreResult<DataType> {
        Ok(self.attr(i)?.dtype)
    }

    /// Resolves an attribute name to its 1-based index.
    ///
    /// Names are the notational convenience the paper mentions; resolution
    /// picks the first match so self-joins can still disambiguate by index.
    pub fn index_of(&self, name: &str) -> CoreResult<usize> {
        self.attrs
            .iter()
            .position(|a| a.name.as_deref() == Some(name))
            .map(|p| p + 1)
            .ok_or_else(|| CoreError::UnknownAttribute(name.to_owned()))
    }

    /// True when both schemas list the same domains in the same order.
    ///
    /// This is the compatibility required of `E₁` and `E₂` by union,
    /// difference and intersection: they must be "defined on schema E".
    /// Attribute *names* are notation and do not affect compatibility.
    pub fn same_types(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .attrs
                .iter()
                .zip(&other.attrs)
                .all(|(a, b)| a.dtype == b.dtype)
    }

    /// Checks type compatibility, reporting both schemas on failure.
    pub fn check_same_types(&self, other: &Schema) -> CoreResult<()> {
        if self.same_types(other) {
            Ok(())
        } else {
            Err(CoreError::SchemaMismatch {
                expected: self.to_string(),
                found: other.to_string(),
            })
        }
    }

    /// Schema projection `α_a(E)` — same semantics as tuple projection.
    pub fn project(&self, a: &AttrList) -> CoreResult<Schema> {
        a.check_arity(self.arity())?;
        Ok(Schema {
            attrs: a
                .indexes()
                .iter()
                .map(|&i| self.attrs[i - 1].clone())
                .collect(),
        })
    }

    /// Schema concatenation `E ⊕ E'` — the schema of a product or join.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs = Vec::with_capacity(self.arity() + other.arity());
        attrs.extend_from_slice(&self.attrs);
        attrs.extend_from_slice(&other.attrs);
        Schema { attrs }
    }

    /// Appends a single attribute (used by group-by: `α_a(E) ⊕ ran(f)`).
    pub fn with_attr(&self, attr: Attribute) -> Schema {
        let mut attrs = self.attrs.clone();
        attrs.push(attr);
        Schema { attrs }
    }

    /// True when `tuple` is an element of `dom(E)`: right arity, each value
    /// in the attribute's domain.
    pub fn admits(&self, tuple: &Tuple) -> bool {
        tuple.arity() == self.arity()
            && tuple
                .values()
                .iter()
                .zip(&self.attrs)
                .all(|(v, a)| v.data_type() == a.dtype)
    }

    /// Validates a tuple against this schema.
    pub fn check_tuple(&self, tuple: &Tuple) -> CoreResult<()> {
        if self.admits(tuple) {
            Ok(())
        } else {
            Err(CoreError::TupleSchemaMismatch {
                schema: self.to_string(),
                tuple: tuple.to_string(),
            })
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (k, a) in self.attrs.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A shared schema handle, the form passed around by expressions/relations.
pub type SchemaRef = Arc<Schema>;

/// A *named* relation schema, `R` in Definition 2.2: a relation name plus
/// the attribute list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// The relation name (database relations are addressed by name,
    /// Definition 2.5).
    pub name: String,
    /// The attribute list.
    pub schema: SchemaRef,
}

impl RelationSchema {
    /// Builds a named relation schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        RelationSchema {
            name: name.into(),
            schema: Arc::new(schema),
        }
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn beer_schema() -> Schema {
        Schema::named(&[
            ("name", DataType::Str),
            ("brewery", DataType::Str),
            ("alcperc", DataType::Real),
        ])
    }

    #[test]
    fn arity_and_access() {
        let s = beer_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr(1).unwrap().name.as_deref(), Some("name"));
        assert_eq!(s.dtype(3).unwrap(), DataType::Real);
        assert!(s.attr(0).is_err());
        assert!(s.attr(4).is_err());
    }

    #[test]
    fn name_resolution() {
        let s = beer_schema();
        assert_eq!(s.index_of("brewery").unwrap(), 2);
        assert!(matches!(
            s.index_of("city"),
            Err(CoreError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn name_resolution_prefers_first_match() {
        let s = Schema::named(&[("x", DataType::Int), ("x", DataType::Str)]);
        assert_eq!(s.index_of("x").unwrap(), 1);
    }

    #[test]
    fn type_compatibility_ignores_names() {
        let a = beer_schema();
        let b = Schema::anon(&[DataType::Str, DataType::Str, DataType::Real]);
        assert!(a.same_types(&b));
        let c = Schema::anon(&[DataType::Str, DataType::Str]);
        assert!(!a.same_types(&c));
        assert!(a.check_same_types(&c).is_err());
    }

    #[test]
    fn schema_projection_and_concat() {
        let s = beer_schema();
        let a = AttrList::new(vec![3, 1]).unwrap();
        let p = s.project(&a).unwrap();
        assert_eq!(p.attr(1).unwrap().name.as_deref(), Some("alcperc"));
        assert_eq!(p.attr(2).unwrap().name.as_deref(), Some("name"));

        let joined = s.concat(&p);
        assert_eq!(joined.arity(), 5);
        assert_eq!(joined.dtype(4).unwrap(), DataType::Real);
    }

    #[test]
    fn admits_checks_types_and_arity() {
        let s = beer_schema();
        assert!(s.admits(&tuple!["Grolsch", "Grolsche Bierbrouwerij", 5.0_f64]));
        assert!(!s.admits(&tuple!["Grolsch", "x"]));
        assert!(!s.admits(&tuple!["Grolsch", "x", 5_i64])); // int ≠ real
        assert!(s.check_tuple(&tuple!["a", "b", 1.0_f64]).is_ok());
        assert!(s.check_tuple(&tuple![1_i64, "b", 1.0_f64]).is_err());
    }

    #[test]
    fn empty_schema_admits_empty_tuple() {
        let s = Schema::new(vec![]);
        assert!(s.is_empty());
        assert!(s.admits(&Tuple::empty()));
    }

    #[test]
    fn with_attr_appends() {
        let s =
            Schema::named(&[("country", DataType::Str)]).with_attr(Attribute::anon(DataType::Real));
        assert_eq!(s.arity(), 2);
        assert_eq!(s.dtype(2).unwrap(), DataType::Real);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            beer_schema().to_string(),
            "(name: str, brewery: str, alcperc: real)"
        );
        let rs = RelationSchema::new("beer", beer_schema());
        assert!(rs.to_string().starts_with("beer ("));
    }
}
