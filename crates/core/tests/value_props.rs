//! Property tests for the atomic value layer (Definition 2.1): domain
//! values must behave as set elements — total order, hash-consistent
//! equality, and stable round trips.

use mera_core::prelude::*;
use mera_core::value::{Date, Real, Time};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    /// Civil-date round trip over four centuries, including leap years
    /// and era boundaries.
    #[test]
    fn date_ymd_roundtrip(y in 1800i32..2200, m in 1u32..=12, d in 1u32..=28) {
        let date = Date::from_ymd(y, m, d).expect("valid date");
        prop_assert_eq!(date.to_ymd(), (y, m, d));
    }

    /// Day-number round trip: successive day numbers decode to
    /// monotonically increasing dates.
    #[test]
    fn date_day_numbers_are_monotone(n in -100_000i32..100_000) {
        let a = Date(n);
        let b = Date(n + 1);
        prop_assert!(a < b);
        let (_, m, d) = a.to_ymd();
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    /// Equality implies hash equality for reals (the -0.0 case is the
    /// classic trap).
    #[test]
    fn real_eq_implies_hash_eq(bits_a in any::<f64>(), bits_b in any::<f64>()) {
        let (Ok(a), Ok(b)) = (Real::new(bits_a), Real::new(bits_b)) else {
            // NaN rejected at construction — nothing to check
            return Ok(());
        };
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// Real ordering is total and consistent with f64 comparison.
    #[test]
    fn real_order_matches_f64(x in any::<f64>(), y in any::<f64>()) {
        let (Ok(a), Ok(b)) = (Real::new(x), Real::new(y)) else {
            return Ok(());
        };
        // compare through the normalised accessor (−0.0 becomes +0.0)
        prop_assert_eq!(
            a.cmp(&b),
            a.get().partial_cmp(&b.get()).expect("no NaN")
        );
    }

    /// Tuple projection then concatenation laws: `α` over `⊕` picks from
    /// the correct side.
    #[test]
    fn tuple_concat_projection(xs in proptest::collection::vec(0i64..100, 1..5),
                               ys in proptest::collection::vec(0i64..100, 1..5)) {
        let l: Tuple = xs.iter().map(|&v| Value::Int(v)).collect();
        let r: Tuple = ys.iter().map(|&v| Value::Int(v)).collect();
        let joined = l.concat(&r);
        prop_assert_eq!(joined.arity(), l.arity() + r.arity());
        // left attributes come first
        for i in 1..=l.arity() {
            prop_assert_eq!(joined.attr(i).expect("in range"), l.attr(i).expect("in range"));
        }
        for j in 1..=r.arity() {
            prop_assert_eq!(
                joined.attr(l.arity() + j).expect("in range"),
                r.attr(j).expect("in range")
            );
        }
        // projecting the left half recovers l
        let left_list = AttrList::identity(l.arity()).expect("non-empty");
        prop_assert_eq!(joined.project(&left_list).expect("projects"), l);
    }

    /// Projection composes: `α_b(α_a(r)) = α_{a∘b}(r)`.
    #[test]
    fn tuple_projection_composes(
        vals in proptest::collection::vec(0i64..100, 3..6),
        a_ix in proptest::collection::vec(1usize..=3, 1..4),
        b_pick in proptest::collection::vec(0usize..3, 1..3),
    ) {
        let t: Tuple = vals.iter().map(|&v| Value::Int(v)).collect();
        let a = AttrList::new(a_ix.clone()).expect("non-empty");
        let b_ix: Vec<usize> = b_pick.iter().map(|&p| (p % a_ix.len()) + 1).collect();
        let b = AttrList::new(b_ix.clone()).expect("non-empty");
        let two_step = t.project(&a).expect("in range").project(&b).expect("in range");
        let composed: Vec<usize> = b_ix.iter().map(|&i| a_ix[i - 1]).collect();
        let one_step = t
            .project(&AttrList::new(composed).expect("non-empty"))
            .expect("in range");
        prop_assert_eq!(two_step, one_step);
    }

    /// Time construction accepts exactly the 24·60·60 grid.
    #[test]
    fn time_construction_total_on_valid_grid(h in 0u32..24, m in 0u32..60, s in 0u32..60) {
        let t = Time::from_hms(h, m, s).expect("valid time");
        prop_assert_eq!(t.0, h * 3600 + m * 60 + s);
        let rendered = t.to_string();
        prop_assert_eq!(rendered.len(), 8);
    }

    /// Values of equal type compare consistently with their payload.
    #[test]
    fn int_values_order_like_ints(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(Value::Int(a).cmp(&Value::Int(b)), a.cmp(&b));
    }
}
