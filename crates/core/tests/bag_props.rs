//! Property-based tests of the multiplicity laws (Definitions 2.3, 3.1–3.2).
//!
//! These check the bag layer directly against the pointwise arithmetic the
//! paper defines, over arbitrary small bags of small integers — the regime
//! where collisions (shared elements) are frequent.

use mera_core::multiset::Bag;
use proptest::prelude::*;

/// Strategy: bags over a tiny universe (0..8) so elements collide often.
fn small_bag() -> impl Strategy<Value = Bag<u8>> {
    proptest::collection::vec((0u8..8, 1u64..6), 0..10)
        .prop_map(|pairs| pairs.into_iter().collect())
}

/// The full universe the strategy draws from; laws are checked pointwise
/// over every element, including absent ones (multiplicity 0).
const UNIVERSE: std::ops::Range<u8> = 0..8;

proptest! {
    #[test]
    fn union_is_pointwise_addition(a in small_bag(), b in small_bag()) {
        let u = a.union(&b).unwrap();
        for x in UNIVERSE {
            prop_assert_eq!(u.multiplicity(&x), a.multiplicity(&x) + b.multiplicity(&x));
        }
        prop_assert_eq!(u.len(), a.len() + b.len());
    }

    #[test]
    fn union_commutes_and_associates(a in small_bag(), b in small_bag(), c in small_bag()) {
        prop_assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        let left = a.union(&b).unwrap().union(&c).unwrap();
        let right = a.union(&b.union(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn difference_is_pointwise_saturating(a in small_bag(), b in small_bag()) {
        let d = a.difference(&b);
        for x in UNIVERSE {
            prop_assert_eq!(
                d.multiplicity(&x),
                a.multiplicity(&x).saturating_sub(b.multiplicity(&x))
            );
        }
    }

    #[test]
    fn intersection_is_pointwise_min(a in small_bag(), b in small_bag()) {
        let i = a.intersection(&b);
        for x in UNIVERSE {
            prop_assert_eq!(
                i.multiplicity(&x),
                a.multiplicity(&x).min(b.multiplicity(&x))
            );
        }
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    /// Theorem 3.1 at the bag level: E₁ ∩ E₂ = E₁ − (E₁ − E₂).
    #[test]
    fn intersection_desugars_to_double_difference(a in small_bag(), b in small_bag()) {
        prop_assert_eq!(a.intersection(&b), a.difference(&a.difference(&b)));
    }

    #[test]
    fn distinct_is_idempotent_and_caps(a in small_bag()) {
        let d = a.distinct();
        for x in UNIVERSE {
            prop_assert_eq!(d.multiplicity(&x), a.multiplicity(&x).min(1));
        }
        prop_assert_eq!(&d.distinct(), &d);
        prop_assert_eq!(d.len() as usize, a.distinct_len());
    }

    /// The paper's §3.3 note: δ distributes over ⊎ only in the weaker form
    /// δ(E₁ ⊎ E₂) = δ(δE₁ ⊎ δE₂).
    #[test]
    fn distinct_union_weak_distribution(a in small_bag(), b in small_bag()) {
        let lhs = a.union(&b).unwrap().distinct();
        let rhs = a.distinct().union(&b.distinct()).unwrap().distinct();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn submultiset_is_a_partial_order(a in small_bag(), b in small_bag(), c in small_bag()) {
        // reflexive
        prop_assert!(a.is_submultiset(&a));
        // antisymmetric
        if a.is_submultiset(&b) && b.is_submultiset(&a) {
            prop_assert_eq!(&a, &b);
        }
        // transitive
        if a.is_submultiset(&b) && b.is_submultiset(&c) {
            prop_assert!(a.is_submultiset(&c));
        }
    }

    #[test]
    fn difference_then_union_bounds(a in small_bag(), b in small_bag()) {
        // (a − b) ⊑ a, and a ⊑ (a − b) ⊎ b
        let d = a.difference(&b);
        prop_assert!(d.is_submultiset(&a));
        let rejoined = d.union(&b).unwrap();
        prop_assert!(a.is_submultiset(&rejoined));
    }

    #[test]
    fn intersection_bounds(a in small_bag(), b in small_bag()) {
        let i = a.intersection(&b);
        prop_assert!(i.is_submultiset(&a));
        prop_assert!(i.is_submultiset(&b));
    }

    #[test]
    fn product_cardinality_multiplies(a in small_bag(), b in small_bag()) {
        let p = a.product(&b, |&x, &y| (x, y)).unwrap();
        prop_assert_eq!(p.len(), a.len() * b.len());
        for x in UNIVERSE {
            for y in UNIVERSE {
                prop_assert_eq!(
                    p.multiplicity(&(x, y)),
                    a.multiplicity(&x) * b.multiplicity(&y)
                );
            }
        }
    }

    #[test]
    fn map_preserves_cardinality(a in small_bag()) {
        let m = a.map(|&x| Ok(x / 2)).unwrap();
        prop_assert_eq!(m.len(), a.len());
    }

    #[test]
    fn filter_partitions_cardinality(a in small_bag()) {
        let yes = a.filter(|&x| Ok(x % 2 == 0)).unwrap();
        let no = a.filter(|&x| Ok(x % 2 != 0)).unwrap();
        prop_assert_eq!(yes.len() + no.len(), a.len());
        prop_assert_eq!(yes.union(&no).unwrap(), a);
    }

    #[test]
    fn expanded_iteration_matches_len(a in small_bag()) {
        prop_assert_eq!(a.iter_expanded().count() as u64, a.len());
        let rebuilt: Bag<u8> = a.iter_expanded().copied().collect();
        prop_assert_eq!(rebuilt, a);
    }
}
