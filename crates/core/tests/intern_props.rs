//! Property tests for string interning: `Sym` must be observationally
//! identical to the `String` it replaced. Equality, ordering, and hashing
//! of `Value`s — the contracts the bag layer's maps and the display sort
//! order rely on — may not change because the representation became a
//! shared handle.

use mera_core::prelude::*;
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Arbitrary short strings over an alphabet that exercises sharing (small
/// alphabet ⇒ frequent duplicates) plus quote and non-ASCII characters.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..12, 0..8).prop_map(|ix| {
        ix.into_iter()
            .map(|i| ['a', 'b', 'z', '0', '9', ' ', '\'', 'é', 'µ', '∈', 'x', '_'][i as usize])
            .collect()
    })
}

proptest! {
    /// Interning preserves string equality exactly: two `Sym`s are equal
    /// iff their contents are, and equal content yields one shared handle.
    #[test]
    fn interning_preserves_equality(a in arb_string(), b in arb_string()) {
        let sa = Sym::new(&a);
        let sb = Sym::new(&b);
        prop_assert_eq!(sa == sb, a == b);
        prop_assert_eq!(sa.as_str(), a.as_str());
    }

    /// `Sym` ordering is the string ordering — the display sort order of
    /// relations must not change under interning.
    #[test]
    fn interning_preserves_order(a in arb_string(), b in arb_string()) {
        prop_assert_eq!(Sym::new(&a).cmp(&Sym::new(&b)), a.cmp(&b));
    }

    /// Equal values hash equal after interning (the bag layer keys maps by
    /// `Value`), and hashing is deterministic across separate interns.
    #[test]
    fn interning_preserves_hash(a in arb_string()) {
        let v1 = Value::str(a.as_str());
        let v2 = Value::str(a.clone());
        prop_assert_eq!(&v1, &v2);
        prop_assert_eq!(hash_of(&v1), hash_of(&v2));
    }

    /// `Value::Str` comparison across distinct values stays string-like,
    /// and `Display` renders the raw content in quotes.
    #[test]
    fn str_values_order_like_strings(a in arb_string(), b in arb_string()) {
        let va = Value::str(a.as_str());
        let vb = Value::str(b.as_str());
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
        prop_assert_eq!(va.to_string(), format!("'{a}'"));
    }

    /// Real normalisation is unaffected: −0.0 and +0.0 stay one value with
    /// one hash, so mixed tuples keyed on reals keep merging correctly.
    #[test]
    fn real_zero_normalisation_survives(sign in any::<bool>()) {
        let z = Value::real(if sign { -0.0 } else { 0.0 }).expect("not NaN");
        let pz = Value::real(0.0).expect("not NaN");
        prop_assert_eq!(&z, &pz);
        prop_assert_eq!(hash_of(&z), hash_of(&pz));
    }

    /// Tuples carrying interned strings still compare and hash value-wise.
    #[test]
    fn tuples_with_syms_hash_value_wise(a in arb_string(), n in 0i64..5) {
        let t1 = Tuple::new(vec![Value::str(a.as_str()), Value::Int(n)]);
        let t2 = Tuple::new(vec![Value::str(a.clone()), Value::Int(n)]);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(hash_of(&t1), hash_of(&t2));
        // shared-row clone is the same row, and still equal
        #[allow(clippy::redundant_clone)]
        let t3 = t1.clone();
        prop_assert_eq!(t3, t2);
    }
}
