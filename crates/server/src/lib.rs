//! # mera-server — a multi-client network front for the engine
//!
//! The paper's algebra, language and transaction model all assume a
//! single embedded caller; this crate puts the concurrent durable
//! engine ([`mera_store::ConcurrentDb`]) behind a TCP socket so many
//! independent clients share one database:
//!
//! * [`protocol`] — the hand-rolled wire format: length-prefixed
//!   frames carrying SQL text or XRA scripts in, streamed row batches
//!   and typed completion frames out. No serialization dependency; the
//!   codec is ~200 lines of explicit little-endian fields.
//! * [`serve`] / [`ServerHandle`] — the server: one non-blocking
//!   acceptor plus a fixed pool of session workers (the `mera-eval`
//!   worker-pool idiom: shared queue, condvar). Every session executes
//!   against the same [`ConcurrentDb`](mera_store::ConcurrentDb), so
//!   clients get MVCC snapshot reads and cross-session group commit
//!   without the server adding locks of its own.
//! * [`Client`] — a blocking session handle: `sql`, `xra`, `ping`,
//!   each assembling the streamed response into a [`Reply`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use mera_core::prelude::*;
//! use mera_store::{ConcurrentDb, MemStorage, StoreOptions};
//!
//! let db = ConcurrentDb::open(MemStorage::new(), DatabaseSchema::new(),
//!                             StoreOptions::default())?;
//! let server = mera_server::serve(Arc::new(db), "127.0.0.1:0",
//!                                 mera_server::ServerOptions::default())?;
//!
//! let mut client = mera_server::Client::connect(server.local_addr())?;
//! client.sql("CREATE TABLE beer (name TEXT, alcperc INT)")?;
//! client.sql("INSERT INTO beer VALUES ('Grolsch', 5)")?;
//! let reply = client.sql("SELECT * FROM beer")?;
//! assert_eq!(reply.results[0].len(), 1);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ClientResult, Reply};
pub use protocol::{Request, Response, Row};
pub use server::{serve, ServerHandle, ServerOptions};
