//! The `mera-server` binary: serve a database directory over TCP.
//!
//! ```text
//! mera-server [--addr HOST:PORT] [--data DIR] [--fsync always|never|N]
//!             [--workers N]
//! ```
//!
//! Without `--data` the server runs on in-memory storage (state lost at
//! exit) — useful for demos and benchmarks. `--fsync N` enables group
//! commit: WAL appends from concurrent sessions are batched into one
//! fsync per up-to-N commits.

use std::process::ExitCode;
use std::sync::Arc;

use mera_core::prelude::DatabaseSchema;
use mera_server::{serve, ServerOptions};
use mera_store::{ConcurrentDb, DirStorage, FsyncPolicy, MemStorage, StoreOptions};

struct Args {
    addr: String,
    data: Option<String>,
    fsync: FsyncPolicy,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        data: None,
        fsync: FsyncPolicy::Always,
        workers: ServerOptions::default().workers,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--data" => args.data = Some(value("--data")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--fsync" => {
                let v = value("--fsync")?;
                args.fsync = match v.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    n => FsyncPolicy::EveryN(
                        n.parse().map_err(|_| format!("--fsync: bad value {n:?}"))?,
                    ),
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: mera-server [--addr HOST:PORT] [--data DIR] \
                     [--fsync always|never|N] [--workers N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn serve_forever<S: mera_store::Storage + Send + 'static>(
    db: ConcurrentDb<S>,
    args: &Args,
) -> Result<(), String> {
    let server = serve(
        Arc::new(db),
        args.addr.as_str(),
        ServerOptions {
            workers: args.workers,
        },
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    eprintln!(
        "mera-server listening on {} ({} workers, {})",
        server.local_addr(),
        args.workers,
        match &args.data {
            Some(dir) => format!("data dir {dir}"),
            None => "in-memory storage".to_owned(),
        }
    );
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let options = StoreOptions {
        fsync: args.fsync,
        ..StoreOptions::default()
    };
    match &args.data {
        Some(dir) => {
            let storage = DirStorage::open(dir).map_err(|e| format!("open {dir}: {e}"))?;
            let db = ConcurrentDb::open(storage, DatabaseSchema::new(), options)
                .map_err(|e| format!("recover {dir}: {e}"))?;
            serve_forever(db, &args)
        }
        None => {
            let db = ConcurrentDb::open(MemStorage::new(), DatabaseSchema::new(), options)
                .map_err(|e| format!("open in-memory store: {e}"))?;
            serve_forever(db, &args)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mera-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
