//! The `mera-client` binary: an interactive line client.
//!
//! ```text
//! mera-client [--addr HOST:PORT] [--xra]
//! ```
//!
//! Reads statements from stdin, one per line, and prints rendered rows.
//! Lines are SQL by default; with `--xra` (or a leading `\x `) they are
//! sent as XRA script text. `\q` quits.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use mera_server::{Client, ClientError, Reply};

fn print_reply(reply: &Reply) {
    for notice in &reply.notices {
        println!("-- {notice}");
    }
    for rows in &reply.results {
        for row in rows {
            let rendered = row.values.join(", ");
            if row.multiplicity == 1 {
                println!("({rendered})");
            } else {
                println!("({rendered}) x{}", row.multiplicity);
            }
        }
        println!("-- {} row(s)", rows.len());
    }
    println!(
        "-- ok: {} committed, {} aborted",
        reply.committed, reply.aborted
    );
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut xra_mode = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?,
            "--xra" => xra_mode = true,
            "--help" | "-h" => {
                println!("usage: mera-client [--addr HOST:PORT] [--xra]");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let mut client = Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    client.ping().map_err(|e| format!("ping {addr}: {e}"))?;
    eprintln!(
        "connected to {addr} ({} mode)",
        if xra_mode { "xra" } else { "sql" }
    );

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        out.write_all(b"mera> ").and_then(|_| out.flush()).ok();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Ok(()); // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\q" {
            return Ok(());
        }
        let result = if let Some(script) = line.strip_prefix("\\x ") {
            client.xra(script)
        } else if xra_mode {
            client.xra(line)
        } else {
            client.sql(line)
        };
        match result {
            Ok(reply) => print_reply(&reply),
            Err(ClientError::Server(msg)) => println!("error: {msg}"),
            Err(e) => return Err(e.to_string()),
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mera-client: {msg}");
            ExitCode::FAILURE
        }
    }
}
