//! A blocking client for the `mera-server` wire protocol.
//!
//! One [`Client`] is one TCP session; it is not `Sync` — open one per
//! thread (sessions are cheap, and the server multiplexes them onto its
//! worker pool). Each call sends one request frame and reads the full
//! response sequence, so requests on a session are strictly ordered.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, write_frame, ProtocolError, Request, Response, Row};

/// Everything a request can return short of an answer.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connection refused, reset, torn frame).
    Io(io::Error),
    /// The peer sent a frame this protocol version cannot parse.
    Protocol(ProtocolError),
    /// The server answered with a terminal `Error` frame.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// Client-side result alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// The assembled answer to one SQL or XRA request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reply {
    /// One entry per result relation (per `?E` output for scripts, one
    /// for a SQL query, none for DML/DDL), rows in server order.
    pub results: Vec<Vec<Row>>,
    /// Per-transaction abort reasons, in occurrence order.
    pub notices: Vec<String>,
    /// Transactions that committed.
    pub committed: u32,
    /// Transactions that aborted.
    pub aborted: u32,
}

impl Reply {
    /// True when every transaction in the request committed.
    pub fn all_committed(&self) -> bool {
        self.aborted == 0
    }
}

/// A connected session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Executes one SQL statement.
    pub fn sql(&mut self, text: &str) -> ClientResult<Reply> {
        self.roundtrip(&Request::Sql(text.to_owned()))
    }

    /// Runs an XRA script.
    pub fn xra(&mut self, script: &str) -> ClientResult<Reply> {
        self.roundtrip(&Request::Xra(script.to_owned()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.send(&Request::Ping)?;
        match self.receive()? {
            Response::Pong => Ok(()),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            other => Err(ProtocolError(format!("expected Pong, got {other:?}")).into()),
        }
    }

    fn send(&mut self, request: &Request) -> ClientResult<()> {
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> ClientResult<Response> {
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the session mid-response",
            ))
        })?;
        Ok(Response::decode(&payload)?)
    }

    /// Sends a request and assembles its response sequence into a
    /// [`Reply`], reading until the terminal frame.
    fn roundtrip(&mut self, request: &Request) -> ClientResult<Reply> {
        self.send(request)?;
        let mut reply = Reply::default();
        let mut open: Option<Vec<Row>> = None;
        loop {
            match self.receive()? {
                Response::RowBatch { last, rows } => {
                    let mut acc = open.take().unwrap_or_default();
                    acc.extend(rows);
                    if last {
                        reply.results.push(acc);
                    } else {
                        open = Some(acc);
                    }
                }
                Response::Notice(msg) => reply.notices.push(msg),
                Response::Done { committed, aborted } => {
                    if open.is_some() {
                        return Err(ProtocolError("Done while a row batch was open".into()).into());
                    }
                    reply.committed = committed;
                    reply.aborted = aborted;
                    return Ok(reply);
                }
                Response::Error(msg) => return Err(ClientError::Server(msg)),
                Response::Pong => {
                    return Err(ProtocolError("unexpected Pong mid-reply".into()).into())
                }
            }
        }
    }
}
