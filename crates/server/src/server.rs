//! The multi-client TCP server over a [`ConcurrentDb`].
//!
//! One acceptor thread hands connections to a fixed pool of session
//! workers (same idiom as `mera-eval`'s worker pool: a shared
//! `Mutex<VecDeque<…>>` job queue drained under a `Condvar`). Each
//! worker owns one connection at a time and runs its request loop to
//! completion; every request executes against the shared
//! [`ConcurrentDb`], so concurrent sessions get MVCC snapshot reads and
//! group-committed writes for free — the server adds transport, not
//! another concurrency layer.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] raises a flag,
//! the non-blocking acceptor notices within one poll interval, the
//! workers finish (or abandon, for idle keep-alive sessions) their
//! current connection and exit, and `shutdown` joins them all.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use mera_core::prelude::Relation;
use mera_lang::RunResult;
use mera_store::{ConcurrentDb, Storage, StoreError};

use crate::protocol::{read_frame, write_frame, Request, Response, Row, BATCH_ROWS};

/// How often the acceptor and idle workers re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Session worker threads — the maximum number of connections served
    /// concurrently; further connections queue until a worker frees up.
    pub workers: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions { workers: 8 }
    }
}

/// Connections waiting for a session worker.
struct ConnQueue {
    ready: Mutex<VecDeque<TcpStream>>,
    wake: Condvar,
}

/// A running server: the acceptor plus its session workers.
///
/// Dropping the handle without calling [`shutdown`](Self::shutdown)
/// leaves the threads running for the life of the process (they hold
/// their own `Arc`s); tests and well-behaved embedders should shut down
/// explicitly.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, lets every worker finish its current
    /// connection, and joins all server threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.wake.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and serves the database until
/// [`ServerHandle::shutdown`]. Bind `"127.0.0.1:0"` to get an ephemeral
/// port back via [`ServerHandle::local_addr`].
pub fn serve<S>(
    db: Arc<ConcurrentDb<S>>,
    addr: impl ToSocketAddrs,
    options: ServerOptions,
) -> io::Result<ServerHandle>
where
    S: Storage + Send + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue {
        ready: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
    });

    let mut threads = Vec::with_capacity(options.workers.max(1) + 1);
    for id in 0..options.workers.max(1) {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        threads.push(
            thread::Builder::new()
                .name(format!("mera-session-{id}"))
                .spawn(move || session_worker(&db, &stop, &queue))?,
        );
    }
    {
        let stop = Arc::clone(&stop);
        let queue = Arc::clone(&queue);
        threads.push(
            thread::Builder::new()
                .name("mera-acceptor".into())
                .spawn(move || acceptor(&listener, &stop, &queue))?,
        );
    }
    Ok(ServerHandle {
        addr,
        stop,
        queue,
        threads,
    })
}

/// Accepts connections until the stop flag is raised, pushing each onto
/// the worker queue.
fn acceptor(listener: &TcpListener, stop: &AtomicBool, queue: &ConnQueue) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                // Session sockets block: the worker request loop reads
                // whole frames.
                if conn.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = conn.set_nodelay(true);
                let mut ready = lock(&queue.ready);
                ready.push_back(conn);
                drop(ready);
                queue.wake.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            // Transient accept errors (peer reset mid-handshake): retry.
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Serves connections from the queue until the stop flag is raised.
fn session_worker<S: Storage>(db: &ConcurrentDb<S>, stop: &AtomicBool, queue: &ConnQueue) {
    loop {
        let conn = {
            let mut ready = lock(&queue.ready);
            loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(conn) = ready.pop_front() {
                    break conn;
                }
                let (next, _timeout) = queue
                    .wake
                    .wait_timeout(ready, POLL_INTERVAL)
                    .unwrap_or_else(|e| e.into_inner());
                ready = next;
            }
        };
        // A failing session drops its connection; the worker survives to
        // serve the next one.
        let _ = serve_connection(db, conn, stop);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs one connection's request loop until the client hangs up or the
/// server stops.
fn serve_connection<S: Storage>(
    db: &ConcurrentDb<S>,
    conn: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    // Bounded read patience so an idle keep-alive connection re-checks
    // the stop flag instead of pinning its worker forever.
    conn.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()), // client closed cleanly
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let responses = match Request::decode(&payload) {
            Ok(request) => execute(db, &request),
            Err(e) => vec![Response::Error(e.to_string())],
        };
        for r in &responses {
            write_frame(&mut writer, &r.encode())?;
        }
        writer.flush()?;
    }
}

/// Executes one request, producing its full response sequence.
fn execute<S: Storage>(db: &ConcurrentDb<S>, request: &Request) -> Vec<Response> {
    match request {
        Request::Ping => vec![Response::Pong],
        Request::Sql(sql) => match db.run_sql(sql) {
            Ok(Some(relation)) => {
                let mut out = render(&relation);
                out.push(Response::Done {
                    committed: 1,
                    aborted: 0,
                });
                out
            }
            Ok(None) => vec![Response::Done {
                committed: 1,
                aborted: 0,
            }],
            Err(StoreError::TransactionAborted(reason)) => vec![
                Response::Notice(format!("transaction aborted: {reason}")),
                Response::Done {
                    committed: 0,
                    aborted: 1,
                },
            ],
            Err(e) => vec![Response::Error(e.to_string())],
        },
        Request::Xra(src) => match db.run_script(src) {
            Ok(results) => {
                let mut out = Vec::new();
                let (mut committed, mut aborted) = (0u32, 0u32);
                for result in results {
                    match result {
                        RunResult::Committed(queries) => {
                            committed += 1;
                            for q in queries {
                                out.extend(render(&q));
                            }
                        }
                        RunResult::Aborted(reason) => {
                            aborted += 1;
                            out.push(Response::Notice(format!("transaction aborted: {reason}")));
                        }
                    }
                }
                out.push(Response::Done { committed, aborted });
                out
            }
            Err(e) => vec![Response::Error(e.to_string())],
        },
    }
}

/// Renders one result relation as a run of `RowBatch` frames, the final
/// one flagged `last`.
fn render(relation: &Relation) -> Vec<Response> {
    let rows: Vec<Row> = relation
        .iter()
        .map(|(tuple, multiplicity)| Row {
            multiplicity,
            values: tuple.values().iter().map(|v| v.to_string()).collect(),
        })
        .collect();
    if rows.is_empty() {
        return vec![Response::RowBatch {
            last: true,
            rows: Vec::new(),
        }];
    }
    let nbatches = rows.len().div_ceil(BATCH_ROWS);
    let mut out = Vec::with_capacity(nbatches);
    let mut it = rows.into_iter();
    for i in 0..nbatches {
        let chunk: Vec<Row> = it.by_ref().take(BATCH_ROWS).collect();
        out.push(Response::RowBatch {
            last: i + 1 == nbatches,
            rows: chunk,
        });
    }
    out
}
