//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every message — in either direction — is one *frame*:
//!
//! ```text
//! u32 le payload length | payload bytes
//! ```
//!
//! A request payload is a kind byte followed by UTF-8 text:
//!
//! | kind | meaning                      |
//! |------|------------------------------|
//! | 1    | SQL statement                |
//! | 2    | XRA script                   |
//! | 3    | ping (no text)               |
//!
//! The server answers one request with a *response sequence*: zero or
//! more `RowBatch` frames (streaming one result relation each, split
//! into chunks; the `last` flag closes a relation) terminated by exactly
//! one `Done`, `Error` or `Pong` frame. A response payload is a tag byte
//! followed by tag-specific fields:
//!
//! | tag | frame    | fields                                          |
//! |-----|----------|-------------------------------------------------|
//! | 1   | RowBatch | u8 last, u32 nrows, then per row: u64 mult,     |
//! |     |          | u32 ncols, per column u32 len + UTF-8 text      |
//! | 2   | Done     | u32 committed, u32 aborted                      |
//! | 3   | Error    | u32 len + UTF-8 message                         |
//! | 4   | Pong     | —                                               |
//! | 5   | Notice   | u32 len + UTF-8 message                         |
//!
//! `Done`, `Error` and `Pong` are *terminal*: exactly one of them ends
//! every response sequence. `RowBatch` and `Notice` (per-transaction
//! abort reasons from a script) are interior frames.
//!
//! Values cross the wire *rendered* (their [`Display`](std::fmt::Display)
//! form): the protocol ships query results to humans and test harnesses,
//! not typed pages. Frames larger than [`MAX_FRAME`] are rejected on both
//! sides so a corrupt length prefix cannot trigger an unbounded
//! allocation.

use std::io::{self, Read, Write};

/// Hard ceiling on a single frame's payload, requests and responses
/// alike. A corrupt or hostile length prefix fails fast instead of
/// allocating gigabytes.
pub const MAX_FRAME: usize = 64 << 20;

/// Rows per `RowBatch` frame when the server streams a result relation.
pub const BATCH_ROWS: usize = 512;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one SQL statement.
    Sql(String),
    /// Run an XRA script (declarations, views, keys, transactions).
    Xra(String),
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
}

/// One rendered result row: a multiplicity and the column values in
/// schema order, each in its `Display` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// How many times the tuple occurs in the result multi-set.
    pub multiplicity: u64,
    /// The tuple's values, rendered as text.
    pub values: Vec<String>,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A chunk of one result relation. `last` marks the final chunk, so
    /// a relation larger than [`BATCH_ROWS`] streams as several batches.
    RowBatch {
        /// True on the final chunk of this result relation.
        last: bool,
        /// The rows in this chunk.
        rows: Vec<Row>,
    },
    /// The request finished: how many transactions committed and how
    /// many aborted (for SQL: `1, 0` or `0, 1`).
    Done {
        /// Transactions that committed.
        committed: u32,
        /// Transactions that aborted (conflicts, constraint violations).
        aborted: u32,
    },
    /// The request failed as a whole: parse error, unknown relation,
    /// storage failure. The session stays usable.
    Error(String),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Non-terminal diagnostic: a transaction inside the request
    /// aborted (conflict, constraint violation) but the request itself
    /// carried on; the reason text is rendered for the client.
    Notice(String),
}

/// A malformed frame (bad tag, truncated field, invalid UTF-8,
/// oversized length). Distinct from transport [`io::Error`]s so callers
/// can tell "the peer spoke garbage" from "the connection died".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

impl From<ProtocolError> for io::Error {
    fn from(e: ProtocolError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Writes one frame: length prefix then payload. Does not flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame's payload. `Ok(None)` on clean EOF at a frame
/// boundary; EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError(format!("frame of {len} bytes exceeds cap")).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A cursor over a received payload, decoding fixed-width fields and
/// length-prefixed strings with bounds checks.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ProtocolError("truncated frame".into()))?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError("invalid UTF-8".into()))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError("trailing bytes in frame".into()))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Sql(text) => {
                out.push(1);
                out.extend_from_slice(text.as_bytes());
            }
            Request::Xra(text) => {
                out.push(2);
                out.extend_from_slice(text.as_bytes());
            }
            Request::Ping => out.push(3),
        }
        out
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let (&kind, rest) = payload
            .split_first()
            .ok_or_else(|| ProtocolError("empty request".into()))?;
        let text = || {
            std::str::from_utf8(rest)
                .map(str::to_owned)
                .map_err(|_| ProtocolError("invalid UTF-8".into()))
        };
        match kind {
            1 => Ok(Request::Sql(text()?)),
            2 => Ok(Request::Xra(text()?)),
            3 if rest.is_empty() => Ok(Request::Ping),
            3 => Err(ProtocolError("ping carries no text".into())),
            other => Err(ProtocolError(format!("unknown request kind {other}"))),
        }
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::RowBatch { last, rows } => {
                out.push(1);
                out.push(u8::from(*last));
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.multiplicity.to_le_bytes());
                    out.extend_from_slice(&(row.values.len() as u32).to_le_bytes());
                    for v in &row.values {
                        put_string(&mut out, v);
                    }
                }
            }
            Response::Done { committed, aborted } => {
                out.push(2);
                out.extend_from_slice(&committed.to_le_bytes());
                out.extend_from_slice(&aborted.to_le_bytes());
            }
            Response::Error(msg) => {
                out.push(3);
                put_string(&mut out, msg);
            }
            Response::Pong => out.push(4),
            Response::Notice(msg) => {
                out.push(5);
                put_string(&mut out, msg);
            }
        }
        out
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut c = Cursor::new(payload);
        let decoded = match c.u8()? {
            1 => {
                let last = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(ProtocolError(format!("bad last flag {other}"))),
                };
                let nrows = c.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(BATCH_ROWS * 4));
                for _ in 0..nrows {
                    let multiplicity = c.u64()?;
                    let ncols = c.u32()? as usize;
                    let mut values = Vec::with_capacity(ncols.min(256));
                    for _ in 0..ncols {
                        values.push(c.string()?);
                    }
                    rows.push(Row {
                        multiplicity,
                        values,
                    });
                }
                Response::RowBatch { last, rows }
            }
            2 => Response::Done {
                committed: c.u32()?,
                aborted: c.u32()?,
            },
            3 => Response::Error(c.string()?),
            4 => Response::Pong,
            5 => Response::Notice(c.string()?),
            other => return Err(ProtocolError(format!("unknown response tag {other}"))),
        };
        c.finish()?;
        Ok(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Sql("SELECT * FROM beer".into()),
            Request::Xra("?project[%1](beer);".into()),
            Request::Ping,
        ] {
            assert_eq!(Request::decode(&req.encode()).expect("decodes"), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::RowBatch {
                last: true,
                rows: vec![
                    Row {
                        multiplicity: 2,
                        values: vec!["'Grolsch'".into(), "5".into()],
                    },
                    Row {
                        multiplicity: 1,
                        values: vec![],
                    },
                ],
            },
            Response::RowBatch {
                last: false,
                rows: vec![],
            },
            Response::Done {
                committed: 3,
                aborted: 1,
            },
            Response::Error("E0401: key violated".into()),
            Response::Pong,
            Response::Notice("transaction aborted: conflict".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).expect("decodes"), resp);
        }
    }

    #[test]
    fn frames_round_trip_and_eof_is_clean_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("writes");
        write_frame(&mut buf, b"").expect("writes");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("reads"), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).expect("reads"), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).expect("clean eof"), None);
    }

    #[test]
    fn torn_frame_and_oversize_length_are_errors() {
        // length says 10 bytes, only 3 present
        let mut torn = Vec::new();
        torn.extend_from_slice(&10u32.to_le_bytes());
        torn.extend_from_slice(b"abc");
        assert!(read_frame(&mut &torn[..]).is_err());

        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    #[test]
    fn garbage_payloads_are_rejected_not_panicked() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[9]).is_err());
        assert!(Request::decode(&[1, 0xff, 0xfe]).is_err());
        assert!(Response::decode(&[1, 2]).is_err());
        // row count larger than the payload can hold
        let mut bad = vec![1u8, 1];
        bad.extend_from_slice(&1000u32.to_le_bytes());
        assert!(Response::decode(&bad).is_err());
        // trailing junk after a valid Pong
        assert!(Response::decode(&[4, 0]).is_err());
    }
}
