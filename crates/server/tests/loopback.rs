//! End-to-end server tests over real loopback sockets: concurrent
//! clients, SQL and XRA fronts, snapshot reads, abort reporting, and
//! durability of network-committed work.

use std::sync::Arc;
use std::thread;

use mera_core::prelude::*;
use mera_server::{serve, Client, ClientError, ServerHandle, ServerOptions};
use mera_store::{ConcurrentDb, FsyncPolicy, MemStorage, StoreOptions};

fn start(storage: MemStorage, fsync: FsyncPolicy) -> (Arc<ConcurrentDb<MemStorage>>, ServerHandle) {
    let options = StoreOptions {
        fsync,
        ..StoreOptions::default()
    };
    let db = Arc::new(ConcurrentDb::open(storage, DatabaseSchema::new(), options).expect("opens"));
    let server = serve(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default()).expect("binds");
    (db, server)
}

#[test]
fn ping_sql_and_xra_round_trip() {
    let (_db, server) = start(MemStorage::new(), FsyncPolicy::Always);
    let mut client = Client::connect(server.local_addr()).expect("connects");
    client.ping().expect("pong");

    client
        .sql("CREATE TABLE beer (name TEXT, alcperc INT)")
        .expect("ddl");
    let reply = client
        .sql("INSERT INTO beer VALUES ('Grolsch', 5), ('Bock', 7)")
        .expect("dml");
    assert!(reply.all_committed());
    let reply = client
        .sql("SELECT name FROM beer WHERE alcperc > 6")
        .expect("query");
    assert_eq!(reply.results.len(), 1);
    assert_eq!(reply.results[0].len(), 1);
    assert_eq!(reply.results[0][0].values, vec!["'Bock'".to_owned()]);

    // the XRA front door shares the same database
    let reply = client
        .xra(
            "begin insert(beer, values (str, int) {('Tripel', 8)}); end\n\
              begin ?project[%1](beer); end",
        )
        .expect("script");
    assert_eq!(reply.committed, 2);
    assert_eq!(reply.results.len(), 1);
    assert_eq!(reply.results[0].len(), 3);
    server.shutdown();
}

#[test]
fn errors_are_reported_and_the_session_survives() {
    let (_db, server) = start(MemStorage::new(), FsyncPolicy::Always);
    let mut client = Client::connect(server.local_addr()).expect("connects");

    match client.sql("SELECT * FROM nonexistent") {
        Err(ClientError::Server(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected a server error, got {other:?}"),
    }
    match client.sql("THIS IS NOT SQL") {
        Err(ClientError::Server(_)) => {}
        other => panic!("expected a server error, got {other:?}"),
    }
    // the session is still usable after both failures
    client.ping().expect("pong");
    client
        .sql("CREATE TABLE t (a INT)")
        .expect("ddl still works");
    server.shutdown();
}

#[test]
fn constraint_aborts_surface_as_notices_with_counts() {
    let (_db, server) = start(MemStorage::new(), FsyncPolicy::Always);
    let mut client = Client::connect(server.local_addr()).expect("connects");
    client
        .sql("CREATE TABLE acct (id INT PRIMARY KEY, owner TEXT)")
        .expect("ddl");
    client
        .sql("INSERT INTO acct VALUES (1, 'ann')")
        .expect("dml");
    let reply = client
        .sql("INSERT INTO acct VALUES (1, 'bob')")
        .expect("abort is a reply, not a transport error");
    assert_eq!(reply.committed, 0);
    assert_eq!(reply.aborted, 1);
    assert_eq!(reply.notices.len(), 1);
    assert!(
        reply.notices[0].contains("aborted"),
        "notice: {}",
        reply.notices[0]
    );
    server.shutdown();
}

#[test]
fn eight_concurrent_clients_commit_through_group_commit() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 25;

    let storage = MemStorage::new();
    let (db, server) = start(storage.clone(), FsyncPolicy::EveryN(8));
    let addr = server.local_addr();
    {
        let mut admin = Client::connect(addr).expect("connects");
        admin
            .sql("CREATE TABLE hits (client INT, n INT)")
            .expect("ddl");
    }

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                let mut committed = 0usize;
                for n in 0..PER_CLIENT {
                    let stmt = format!("INSERT INTO hits VALUES ({c}, {n})");
                    // first-committer-wins can abort any racing insert;
                    // retry until this client's write lands
                    loop {
                        let reply = client.sql(&stmt).expect("io ok");
                        if reply.all_committed() {
                            committed += 1;
                            break;
                        }
                    }
                }
                committed
            })
        })
        .collect();
    let total: usize = workers.into_iter().map(|w| w.join().expect("joins")).sum();
    assert_eq!(total, CLIENTS * PER_CLIENT);

    // every acknowledged commit is visible through a fresh session
    let mut check = Client::connect(addr).expect("connects");
    let reply = check.sql("SELECT * FROM hits").expect("query");
    assert_eq!(reply.results[0].len(), CLIENTS * PER_CLIENT);

    // …and durable: a crash-reopen of the same bytes has all of them
    db.sync().expect("final sync");
    server.shutdown();
    drop(db);
    let recovered = ConcurrentDb::open(
        MemStorage::from_image(storage.image()),
        DatabaseSchema::new(),
        StoreOptions::default(),
    )
    .expect("recovers");
    assert_eq!(
        recovered
            .pin()
            .database()
            .relation("hits")
            .expect("exists")
            .len(),
        (CLIENTS * PER_CLIENT) as u64
    );
}

#[test]
fn readers_scale_against_a_writer_without_blocking() {
    const READERS: usize = 4;

    let (_db, server) = start(MemStorage::new(), FsyncPolicy::EveryN(4));
    let addr = server.local_addr();
    {
        let mut admin = Client::connect(addr).expect("connects");
        admin.sql("CREATE TABLE log (n INT)").expect("ddl");
        admin.sql("INSERT INTO log VALUES (0)").expect("seed");
    }

    let writer = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connects");
        for n in 1..=50 {
            loop {
                let reply = client
                    .sql(&format!("INSERT INTO log VALUES ({n})"))
                    .expect("io ok");
                if reply.all_committed() {
                    break;
                }
            }
        }
    });
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                let mut reads = 0usize;
                let mut last = 0usize;
                for _ in 0..30 {
                    let reply = client.sql("SELECT * FROM log").expect("query");
                    let seen = reply.results[0].len();
                    // each read sees a consistent snapshot that never
                    // goes backwards on one session
                    assert!(seen >= last, "snapshot went backwards: {seen} < {last}");
                    last = seen;
                    reads += 1;
                }
                reads
            })
        })
        .collect();
    writer.join().expect("writer joins");
    let total: usize = readers.into_iter().map(|r| r.join().expect("joins")).sum();
    assert_eq!(total, READERS * 30);
    server.shutdown();
}

#[test]
fn stacked_views_work_over_the_wire_from_both_front_doors() {
    let (_db, server) = start(MemStorage::new(), FsyncPolicy::Always);
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // XRA: declare a relation, a view, and a view over that view
    let reply = client
        .xra(
            "relation beer (name: str, alcperc: int);\n\
             view strong = select[%2 > 5](beer);\n\
             view strong_names = project[%1](strong);\n\
             insert(beer, values (str, int) {('Grolsch', 5), ('Bock', 7)});\n\
             ?strong_names;",
        )
        .expect("script");
    assert!(reply.all_committed());
    assert_eq!(reply.results[0].len(), 1);

    // SQL: a third layer on top of the XRA-defined stack
    client
        .sql("CREATE MATERIALIZED VIEW shouted AS SELECT name FROM strong_names")
        .expect("sql view over xra view");
    client
        .sql("INSERT INTO beer VALUES ('Tripel', 8)")
        .expect("dml");
    let reply = client.sql("SELECT * FROM shouted").expect("query");
    assert_eq!(reply.results[0].len(), 2);
    server.shutdown();
}

#[test]
fn large_results_stream_in_multiple_batches() {
    let (db, server) = start(MemStorage::new(), FsyncPolicy::Never);
    let addr = server.local_addr();
    db.run_sql("CREATE TABLE big (n INT)").expect("ddl");
    // one multi-row insert, larger than one RowBatch frame (512 rows)
    let values: Vec<String> = (0..1300).map(|n| format!("({n})")).collect();
    db.run_sql(&format!("INSERT INTO big VALUES {}", values.join(", ")))
        .expect("bulk dml");

    let mut client = Client::connect(addr).expect("connects");
    let reply = client.sql("SELECT * FROM big").expect("query");
    assert_eq!(reply.results.len(), 1);
    assert_eq!(reply.results[0].len(), 1300);
    server.shutdown();
}
