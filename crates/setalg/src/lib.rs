//! # mera-setalg — the classical *set*-semantics relational algebra
//! baseline
//!
//! The paper motivates multi-set semantics with two claims about the
//! set-based model (§1 and Example 3.2):
//!
//! 1. "the high costs of duplicate removal in database operations is often
//!    prohibitive" — a set-based engine must eliminate duplicates after
//!    every duplicate-producing operator;
//! 2. under set semantics, inserting a projection before an aggregation
//!    "produces a different (and incorrect) result", because the projection
//!    collapses duplicates that the aggregate should have seen.
//!
//! This crate is the comparator that makes both claims measurable: a
//! faithful set-semantics evaluator over the same expression trees,
//! relations and workloads as the multi-set engine. Every operator's output
//! is a set (all multiplicities 1), enforced the way a set-based system
//! would — by deduplicating after each duplicate-producing step.
//!
//! Used by experiments E6 (Example 3.2 correctness divergence) and E7
//! (duplicate-removal cost sweep), see `EXPERIMENTS.md`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use mera_core::prelude::*;
use mera_eval::provider::{RelationProvider, Schemas};
use mera_expr::rel::RelExpr;
use mera_expr::Aggregate;
use rustc_hash::FxHashMap;

/// Evaluates an expression under classical *set* semantics: stored
/// relations are read as sets (duplicates discarded) and every operator
/// yields a set.
///
/// The operator implementations follow the standard set-based relational
/// algebra: union/difference/intersection are the set versions; selection
/// filters; projection deduplicates its output (the step that loses the
/// multiplicities bag semantics preserves); aggregates see the
/// *deduplicated* input.
pub fn eval_set(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
) -> CoreResult<Relation> {
    expr.schema(&Schemas(provider))?;
    eval_inner(expr, provider)
}

fn eval_inner(expr: &RelExpr, provider: &(impl RelationProvider + ?Sized)) -> CoreResult<Relation> {
    match expr {
        // a set-based system stores sets: duplicates vanish at the base
        RelExpr::Scan(name) => Ok(provider.relation(name)?.distinct()),
        RelExpr::Values(rel) => Ok(rel.distinct()),
        RelExpr::Union(l, r) => {
            // set union: membership-or — dedup after the merge
            Ok(eval_inner(l, provider)?
                .union(&eval_inner(r, provider)?)?
                .distinct())
        }
        RelExpr::Difference(l, r) => {
            // set difference on sets of multiplicity 1 coincides with the
            // bag kernel
            eval_inner(l, provider)?.difference(&eval_inner(r, provider)?)
        }
        RelExpr::Intersect(l, r) => {
            eval_inner(l, provider)?.intersection(&eval_inner(r, provider)?)
        }
        RelExpr::Product(l, r) => {
            // inputs are sets, so the product is duplicate-free already
            eval_inner(l, provider)?.product(&eval_inner(r, provider)?)
        }
        RelExpr::Select { input, predicate } => {
            eval_inner(input, provider)?.select(|t| predicate.eval_predicate(t))
        }
        RelExpr::Project { input, attrs } => {
            // the step the paper highlights: set projection removes the
            // duplicates that arise from dropping attributes
            Ok(eval_inner(input, provider)?.project(attrs)?.distinct())
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let prod = eval_inner(left, provider)?.product(&eval_inner(right, provider)?)?;
            prod.select(|t| predicate.eval_predicate(t))
        }
        RelExpr::ExtProject { input, exprs } => {
            let rel = eval_inner(input, provider)?;
            let out_schema = ext_project_schema(&rel, exprs)?;
            Ok(rel
                .map_tuples(out_schema, |t| {
                    let vals: CoreResult<Vec<Value>> = exprs.iter().map(|e| e.eval(t)).collect();
                    Ok(Tuple::new(vals?))
                })?
                .distinct())
        }
        RelExpr::Distinct(input) => Ok(eval_inner(input, provider)?.distinct()),
        RelExpr::GroupBy {
            input,
            keys,
            agg,
            attr,
        } => {
            let rel = eval_inner(input, provider)?;
            group_by_set(&rel, keys, *agg, *attr)
        }
        RelExpr::Closure(input) => {
            // closure is set-valued under both semantics
            mera_eval::reference::transitive_closure(&eval_inner(input, provider)?)
        }
    }
}

fn ext_project_schema(rel: &Relation, exprs: &[mera_expr::ScalarExpr]) -> CoreResult<SchemaRef> {
    use mera_expr::ScalarExpr;
    let s = rel.schema();
    let mut attrs = Vec::with_capacity(exprs.len());
    for e in exprs {
        let t = e.infer_type(s)?;
        let name = match e {
            ScalarExpr::Attr(i) => s.attr(*i)?.name.clone(),
            _ => None,
        };
        attrs.push(Attribute { name, dtype: t });
    }
    Ok(Arc::new(Schema::new(attrs)))
}

/// Set-semantics group-by: aggregates run over the *set* of input tuples
/// (each distinct tuple counted once) — the behaviour whose interaction
/// with projection Example 3.2 calls incorrect.
fn group_by_set(
    rel: &Relation,
    keys: &[usize],
    agg: Aggregate,
    attr: usize,
) -> CoreResult<Relation> {
    let key_list = if keys.is_empty() {
        None
    } else {
        let list = AttrList::new_unique(keys.to_vec())?;
        list.check_arity(rel.schema().arity())?;
        Some(list)
    };
    let in_type = rel.schema().dtype(attr)?;
    let out_type = agg.result_type(in_type)?;
    let key_schema = match &key_list {
        Some(list) => rel.schema().project(list)?,
        None => Schema::new(vec![]),
    };
    let out_schema = Arc::new(key_schema.with_attr(Attribute::anon(out_type)));

    let mut groups: FxHashMap<Tuple, Vec<Value>> = FxHashMap::default();
    // the set evaluator walks the support only: one occurrence per tuple
    for t in rel.support() {
        let key = match &key_list {
            Some(list) => t.project(list)?,
            None => Tuple::empty(),
        };
        groups.entry(key).or_default().push(t.attr(attr)?.clone());
    }
    let mut out = Relation::empty(out_schema);
    if key_list.is_none() {
        let vals = groups.remove(&Tuple::empty()).unwrap_or_default();
        let v = agg.compute(in_type, vals.iter().map(|v| (v, 1)))?;
        out.insert(Tuple::new(vec![v]), 1)?;
        return Ok(out);
    }
    for (key, vals) in groups {
        let v = agg.compute(in_type, vals.iter().map(|v| (v, 1)))?;
        let mut kv = key.into_values();
        kv.push(v);
        out.insert(Tuple::new(kv), 1)?;
    }
    Ok(out)
}

/// Counts how many tuples each operator of a set-semantics evaluation has
/// to *deduplicate* — the work the paper's cost claim is about. Returns
/// `(result, tuples_deduplicated)` where the second component sums, over
/// every distinct-enforcing step, the number of input tuples the step
/// scanned.
pub fn eval_set_counting(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
) -> CoreResult<(Relation, u64)> {
    expr.schema(&Schemas(provider))?;
    let mut work = 0u64;
    let rel = counting_inner(expr, provider, &mut work)?;
    Ok((rel, work))
}

fn counting_inner(
    expr: &RelExpr,
    provider: &(impl RelationProvider + ?Sized),
    work: &mut u64,
) -> CoreResult<Relation> {
    fn dedup(r: Relation, work: &mut u64) -> Relation {
        *work += r.len();
        r.distinct()
    }
    match expr {
        RelExpr::Scan(name) => Ok(dedup(provider.relation(name)?.clone(), work)),
        RelExpr::Values(rel) => Ok(dedup(rel.as_ref().clone(), work)),
        RelExpr::Union(l, r) => {
            let u =
                counting_inner(l, provider, work)?.union(&counting_inner(r, provider, work)?)?;
            Ok(dedup(u, work))
        }
        RelExpr::Project { input, attrs } => {
            let p = counting_inner(input, provider, work)?.project(attrs)?;
            Ok(dedup(p, work))
        }
        RelExpr::ExtProject { .. } | RelExpr::Distinct(_) | RelExpr::GroupBy { .. } => {
            // fall back to the plain evaluator for the remaining shapes,
            // charging the dedups they perform internally
            match expr {
                RelExpr::ExtProject { input, exprs } => {
                    let rel = counting_inner(input, provider, work)?;
                    let out_schema = ext_project_schema(&rel, exprs)?;
                    let mapped = rel.map_tuples(out_schema, |t| {
                        let vals: CoreResult<Vec<Value>> =
                            exprs.iter().map(|e| e.eval(t)).collect();
                        Ok(Tuple::new(vals?))
                    })?;
                    Ok(dedup(mapped, work))
                }
                RelExpr::Distinct(input) => {
                    let rel = counting_inner(input, provider, work)?;
                    Ok(dedup(rel, work))
                }
                RelExpr::GroupBy {
                    input,
                    keys,
                    agg,
                    attr,
                } => {
                    let rel = counting_inner(input, provider, work)?;
                    group_by_set(&rel, keys, *agg, *attr)
                }
                _ => unreachable!("outer match covers these variants"),
            }
        }
        RelExpr::Difference(l, r) => {
            counting_inner(l, provider, work)?.difference(&counting_inner(r, provider, work)?)
        }
        RelExpr::Intersect(l, r) => {
            counting_inner(l, provider, work)?.intersection(&counting_inner(r, provider, work)?)
        }
        RelExpr::Product(l, r) => {
            counting_inner(l, provider, work)?.product(&counting_inner(r, provider, work)?)
        }
        RelExpr::Select { input, predicate } => {
            counting_inner(input, provider, work)?.select(|t| predicate.eval_predicate(t))
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let prod = counting_inner(left, provider, work)?
                .product(&counting_inner(right, provider, work)?)?;
            prod.select(|t| predicate.eval_predicate(t))
        }
        RelExpr::Closure(input) => {
            let rel = counting_inner(input, provider, work)?;
            mera_eval::reference::transitive_closure(&rel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;
    use mera_eval::eval;
    use mera_expr::ScalarExpr;

    /// The paper's beer database with a duplicate-heavy beer relation.
    fn beer_db() -> Database {
        let schema = DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh");
        let mut db = Database::new(schema);
        let bs = Arc::clone(db.schema().get("beer").expect("declared"));
        db.replace(
            "beer",
            Relation::from_tuples(
                bs,
                vec![
                    tuple!["Grolsch", "Grolsche", 5.0_f64],
                    tuple!["Heineken", "Heineken", 5.0_f64],
                    tuple!["Amstel", "Heineken", 5.1_f64],
                    tuple!["Bock", "Grolsche", 6.5_f64],
                ],
            )
            .expect("typed"),
        )
        .expect("replace");
        let ws = Arc::clone(db.schema().get("brewery").expect("declared"));
        db.replace(
            "brewery",
            Relation::from_tuples(
                ws,
                vec![
                    tuple!["Grolsche", "Enschede", "NL"],
                    tuple!["Heineken", "Amsterdam", "NL"],
                ],
            )
            .expect("typed"),
        )
        .expect("replace");
        db
    }

    #[test]
    fn set_scan_discards_duplicates() {
        let schema = DatabaseSchema::new()
            .with("r", Schema::anon(&[DataType::Int]))
            .expect("fresh");
        let mut db = Database::new(schema);
        db.update_with("r", |r| {
            let mut r = r.clone();
            r.insert(tuple![1_i64], 5)?;
            Ok(r)
        })
        .expect("update");
        let out = eval_set(&RelExpr::scan("r"), &db).expect("evaluates");
        assert_eq!(out.len(), 1);
    }

    /// Example 3.2's incorrectness claim, reproduced exactly: under set
    /// semantics the direct aggregation and the projection-reduced
    /// aggregation disagree; under bag semantics they agree.
    #[test]
    fn example_3_2_set_semantics_is_wrong() {
        use mera_expr::Aggregate;
        let db = beer_db();
        let join = RelExpr::scan("beer").join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        );
        let direct = join.clone().group_by(&[6], Aggregate::Avg, 3);
        let reduced = join.project(&[3, 6]).group_by(&[2], Aggregate::Avg, 1);

        // bag semantics: identical
        assert_eq!(
            eval(&direct, &db).expect("bag direct"),
            eval(&reduced, &db).expect("bag reduced")
        );

        // set semantics: the projection collapses the two distinct 5.0%
        // beers into one tuple, skewing the NL average
        let set_direct = eval_set(&direct, &db).expect("set direct");
        let set_reduced = eval_set(&reduced, &db).expect("set reduced");
        assert_ne!(set_direct, set_reduced);
        let nl_direct = (5.0 + 5.0 + 5.1 + 6.5) / 4.0;
        let nl_reduced = (5.0 + 5.1 + 6.5) / 3.0; // 5.0 counted once!
        assert_eq!(set_direct.multiplicity(&tuple!["NL", nl_direct]), 1);
        assert_eq!(set_reduced.multiplicity(&tuple!["NL", nl_reduced]), 1);
    }

    #[test]
    fn set_and_bag_agree_on_duplicate_free_data() {
        // when the data and query produce no duplicates, both semantics
        // coincide — a sanity check on the baseline
        let db = beer_db();
        let e = RelExpr::scan("brewery").select(ScalarExpr::attr(3).eq(ScalarExpr::str("NL")));
        assert_eq!(eval_set(&e, &db).expect("set"), eval(&e, &db).expect("bag"));
    }

    #[test]
    fn set_projection_loses_cardinality() {
        let db = beer_db();
        let e = RelExpr::scan("beer").project(&[3]);
        let bag = eval(&e, &db).expect("bag");
        let set = eval_set(&e, &db).expect("set");
        assert_eq!(bag.len(), 4); // bag projection keeps all 4 tuples
        assert_eq!(set.len(), 3); // 5.0 appears once in the set result
    }

    #[test]
    fn counting_evaluator_charges_dedup_work() {
        let db = beer_db();
        let e = RelExpr::scan("beer").project(&[3]);
        let (set, work) = eval_set_counting(&e, &db).expect("evaluates");
        assert_eq!(set.len(), 3);
        // scan dedups 4 tuples, projection dedups 4 more
        assert_eq!(work, 8);
        let (_, bag_work) = eval_set_counting(&RelExpr::scan("brewery"), &db).expect("ok");
        assert_eq!(bag_work, 2);
    }

    #[test]
    fn results_always_duplicate_free() {
        let db = beer_db();
        let exprs = vec![
            RelExpr::scan("beer").project(&[2]),
            RelExpr::scan("beer").union(RelExpr::scan("beer")),
            RelExpr::scan("beer")
                .product(RelExpr::scan("brewery"))
                .project(&[2]),
            RelExpr::scan("beer").ext_project(vec![ScalarExpr::attr(2)]),
        ];
        for e in exprs {
            let out = eval_set(&e, &db).expect("evaluates");
            assert!(
                out.iter().all(|(_, m)| m == 1),
                "set result with duplicates for {e}: {out}"
            );
        }
    }
}
