//! # mera-expr — expression trees for the multi-set algebra
//!
//! Three layers of expressions from the paper:
//!
//! * [`scalar`] — per-tuple scalar expressions: the selection conditions of
//!   Definition 3.1 and the arithmetic expressions of the extended
//!   projection (Definition 3.4),
//! * [`aggregate`] — the multi-set aggregate functions CNT/SUM/AVG/MIN/MAX
//!   (Definition 3.3), with their multiplicity-weighted semantics,
//! * [`rel`] — the relational algebra tree itself (Definitions 3.1, 3.2,
//!   3.4) with full static schema inference.
//!
//! Evaluation lives in `mera-eval`; this crate is purely the typed ASTs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod rel;
pub mod scalar;

pub use aggregate::Aggregate;
pub use rel::{EmptyProvider, RelExpr, SchemaProvider};
pub use scalar::{arith_result_type, eval_arith, ArithOp, CmpOp, ScalarExpr};
