//! The multi-set extended relational algebra expression tree
//! (Definitions 3.1, 3.2 and 3.4).
//!
//! [`RelExpr`] has one variant per construct the paper admits:
//!
//! | paper | variant |
//! |---|---|
//! | database relation | [`RelExpr::Scan`] |
//! | `E₁ ⊎ E₂` | [`RelExpr::Union`] |
//! | `E₁ − E₂` | [`RelExpr::Difference`] |
//! | `E₁ × E₂` | [`RelExpr::Product`] |
//! | `σ_φ E` | [`RelExpr::Select`] |
//! | `π_a E` (plain) | [`RelExpr::Project`] |
//! | `E₁ ∩ E₂` | [`RelExpr::Intersect`] |
//! | `E₁ ⋈_φ E₂` | [`RelExpr::Join`] |
//! | `π_(e₁,…,eₙ) E` (extended) | [`RelExpr::ExtProject`] |
//! | `δE` | [`RelExpr::Distinct`] |
//! | `γ_{a,f,p} E` | [`RelExpr::GroupBy`] |
//!
//! [`RelExpr::Values`] additionally embeds a literal relation so that
//! expression trees are self-contained in tests and assignment results can
//! be re-fed into the algebra.
//!
//! Children are `Arc`-shared: optimizer rewrites rebuild only the spine of
//! the tree and reuse untouched subtrees — the standard answer to tree
//! rewriting under ownership.

use std::fmt;
use std::sync::Arc;

use mera_core::prelude::*;

use crate::aggregate::Aggregate;
use crate::scalar::ScalarExpr;

/// Supplies schemas for named database relations during schema inference.
pub trait SchemaProvider {
    /// The schema of the relation called `name`.
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef>;
}

impl SchemaProvider for DatabaseSchema {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        self.get(name).map(Arc::clone)
    }
}

/// A provider with no relations (for expression trees built purely from
/// [`RelExpr::Values`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyProvider;

impl SchemaProvider for EmptyProvider {
    fn relation_schema(&self, name: &str) -> CoreResult<SchemaRef> {
        Err(CoreError::UnknownRelation(name.to_owned()))
    }
}

/// A multi-set extended relational algebra expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RelExpr {
    /// A database relation, referenced by name (the base case of
    /// Definition 3.1: "a database relation is a basic relational
    /// expression").
    Scan(String),
    /// A literal relation embedded in the expression.
    Values(Arc<Relation>),
    /// Multi-set union `E₁ ⊎ E₂` — multiplicities add.
    Union(Arc<RelExpr>, Arc<RelExpr>),
    /// Multi-set difference `E₁ − E₂` — `max(0, m₁−m₂)`.
    Difference(Arc<RelExpr>, Arc<RelExpr>),
    /// Cartesian product `E₁ × E₂` — multiplicities multiply.
    Product(Arc<RelExpr>, Arc<RelExpr>),
    /// Selection `σ_φ E`.
    Select {
        /// Input expression.
        input: Arc<RelExpr>,
        /// The condition `φ : dom(E) → bool`.
        predicate: ScalarExpr,
    },
    /// Plain projection `π_a E` — multiplicities of collapsing tuples sum.
    Project {
        /// Input expression.
        input: Arc<RelExpr>,
        /// The attribute list `a`.
        attrs: AttrList,
    },
    /// Intersection `E₁ ∩ E₂` — `min(m₁, m₂)` (Definition 3.2).
    Intersect(Arc<RelExpr>, Arc<RelExpr>),
    /// Join `E₁ ⋈_φ E₂ = σ_φ(E₁ × E₂)` (Definition 3.2). The predicate is
    /// expressed over the concatenated schema `E ⊕ E'`.
    Join {
        /// Left input.
        left: Arc<RelExpr>,
        /// Right input.
        right: Arc<RelExpr>,
        /// Join condition over `E ⊕ E'`.
        predicate: ScalarExpr,
    },
    /// Extended projection `π_(e₁,…,eₙ) E` with arithmetic expressions
    /// (Definition 3.4); the plain projection is the special case where all
    /// expressions are bare attributes.
    ExtProject {
        /// Input expression.
        input: Arc<RelExpr>,
        /// The expression list `(e₁, …, eₙ)`; must be non-empty.
        exprs: Vec<ScalarExpr>,
    },
    /// Duplicate elimination `δE` (Definition 3.4).
    Distinct(Arc<RelExpr>),
    /// Group-by `γ_{a,f,p} E` (Definition 3.4): aggregate `f` on attribute
    /// `p` per group of tuples equal on the duplicate-free key list `a`.
    /// An empty key list aggregates the whole input into one tuple.
    GroupBy {
        /// Input expression.
        input: Arc<RelExpr>,
        /// The grouping attribute indexes (1-based, duplicate-free; may be
        /// empty for whole-relation aggregation).
        keys: Vec<usize>,
        /// The aggregate function `f`.
        agg: Aggregate,
        /// The aggregated attribute `p` (1-based; a dummy for `CNT`).
        attr: usize,
    },
    /// Transitive closure `α(E)` — the §5 extension the paper points to
    /// ("the addition of a transitive closure operator allowing
    /// expressions with a recursive nature is discussed in \[11\]").
    ///
    /// `E` must be a binary relation whose two attributes share a domain
    /// (an edge relation). The result is the *duplicate-free* set of pairs
    /// `(x, y)` connected by a path of ≥ 1 edges: closure is defined via
    /// the δ-based least fixpoint, since a naive bag fixpoint diverges on
    /// cycles (each lap around a cycle would multiply multiplicities).
    Closure(Arc<RelExpr>),
}

impl RelExpr {
    // ------------------------------------------------------------------
    // builder API
    // ------------------------------------------------------------------

    /// A named database relation.
    pub fn scan(name: impl Into<String>) -> Self {
        RelExpr::Scan(name.into())
    }

    /// A literal relation.
    pub fn values(rel: Relation) -> Self {
        RelExpr::Values(Arc::new(rel))
    }

    /// `self ⊎ other`.
    pub fn union(self, other: RelExpr) -> Self {
        RelExpr::Union(Arc::new(self), Arc::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: RelExpr) -> Self {
        RelExpr::Difference(Arc::new(self), Arc::new(other))
    }

    /// `self × other`.
    pub fn product(self, other: RelExpr) -> Self {
        RelExpr::Product(Arc::new(self), Arc::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: RelExpr) -> Self {
        RelExpr::Intersect(Arc::new(self), Arc::new(other))
    }

    /// `σ_φ self`.
    pub fn select(self, predicate: ScalarExpr) -> Self {
        RelExpr::Select {
            input: Arc::new(self),
            predicate,
        }
    }

    /// `π_a self` with 1-based attribute indexes.
    ///
    /// # Panics
    /// Panics when `attrs` is empty or contains index 0; use
    /// [`AttrList::new`] directly to handle those as errors.
    pub fn project(self, attrs: &[usize]) -> Self {
        RelExpr::Project {
            input: Arc::new(self),
            attrs: AttrList::new(attrs.to_vec()).expect("valid projection list"),
        }
    }

    /// `self ⋈_φ other`.
    pub fn join(self, other: RelExpr, predicate: ScalarExpr) -> Self {
        RelExpr::Join {
            left: Arc::new(self),
            right: Arc::new(other),
            predicate,
        }
    }

    /// Extended projection with arbitrary scalar expressions.
    pub fn ext_project(self, exprs: Vec<ScalarExpr>) -> Self {
        RelExpr::ExtProject {
            input: Arc::new(self),
            exprs,
        }
    }

    /// `δ self`.
    pub fn distinct(self) -> Self {
        RelExpr::Distinct(Arc::new(self))
    }

    /// `γ_{keys, agg, attr} self`.
    pub fn group_by(self, keys: &[usize], agg: Aggregate, attr: usize) -> Self {
        RelExpr::GroupBy {
            input: Arc::new(self),
            keys: keys.to_vec(),
            agg,
            attr,
        }
    }

    /// `α(self)` — transitive closure of a binary edge relation.
    pub fn closure(self) -> Self {
        RelExpr::Closure(Arc::new(self))
    }

    // ------------------------------------------------------------------
    // schema inference
    // ------------------------------------------------------------------

    /// Infers the output schema against a catalog, validating the whole
    /// tree: operand compatibility for ⊎/−/∩, predicate typing for σ/⋈,
    /// attribute ranges for π/γ, duplicate-freeness of grouping lists, and
    /// aggregate/domain compatibility.
    pub fn schema<P: SchemaProvider>(&self, provider: &P) -> CoreResult<SchemaRef> {
        match self {
            RelExpr::Scan(name) => provider.relation_schema(name),
            RelExpr::Values(rel) => Ok(Arc::clone(rel.schema())),
            RelExpr::Union(l, r) | RelExpr::Difference(l, r) | RelExpr::Intersect(l, r) => {
                let ls = l.schema(provider)?;
                let rs = r.schema(provider)?;
                ls.check_same_types(&rs)?;
                Ok(ls)
            }
            RelExpr::Product(l, r) => {
                let ls = l.schema(provider)?;
                let rs = r.schema(provider)?;
                Ok(Arc::new(ls.concat(&rs)))
            }
            RelExpr::Select { input, predicate } => {
                let s = input.schema(provider)?;
                let t = predicate.infer_type(&s)?;
                if t != DataType::Bool {
                    return Err(CoreError::TypeError(format!(
                        "selection condition has type {t}, expected bool"
                    )));
                }
                Ok(s)
            }
            RelExpr::Project { input, attrs } => {
                let s = input.schema(provider)?;
                Ok(Arc::new(s.project(attrs)?))
            }
            RelExpr::Join {
                left,
                right,
                predicate,
            } => {
                let ls = left.schema(provider)?;
                let rs = right.schema(provider)?;
                let joined = ls.concat(&rs);
                let t = predicate.infer_type(&joined)?;
                if t != DataType::Bool {
                    return Err(CoreError::TypeError(format!(
                        "join condition has type {t}, expected bool"
                    )));
                }
                Ok(Arc::new(joined))
            }
            RelExpr::ExtProject { input, exprs } => {
                if exprs.is_empty() {
                    return Err(CoreError::TypeError(
                        "extended projection needs at least one expression".into(),
                    ));
                }
                let s = input.schema(provider)?;
                let mut attrs = Vec::with_capacity(exprs.len());
                for e in exprs {
                    let t = e.infer_type(&s)?;
                    // bare attribute references keep their name
                    let name = match e {
                        ScalarExpr::Attr(i) => s.attr(*i)?.name.clone(),
                        _ => None,
                    };
                    attrs.push(Attribute { name, dtype: t });
                }
                Ok(Arc::new(Schema::new(attrs)))
            }
            RelExpr::Distinct(input) => input.schema(provider),
            RelExpr::GroupBy {
                input,
                keys,
                agg,
                attr,
            } => {
                let s = input.schema(provider)?;
                let key_schema = if keys.is_empty() {
                    Schema::new(vec![])
                } else {
                    let list = AttrList::new_unique(keys.clone())?;
                    list.check_arity(s.arity())?;
                    s.project(&list)?
                };
                let in_type = s.dtype(*attr)?;
                let out_type = agg.result_type(in_type)?;
                // result schema: grouping attributes ⊕ ran(f)
                Ok(Arc::new(key_schema.with_attr(Attribute::anon(out_type))))
            }
            RelExpr::Closure(input) => {
                let s = input.schema(provider)?;
                if s.arity() != 2 {
                    return Err(CoreError::TypeError(format!(
                        "transitive closure needs a binary relation, found arity {}",
                        s.arity()
                    )));
                }
                if s.dtype(1)? != s.dtype(2)? {
                    return Err(CoreError::TypeError(format!(
                        "transitive closure needs matching attribute domains, found {} and {}",
                        s.dtype(1)?,
                        s.dtype(2)?
                    )));
                }
                Ok(s)
            }
        }
    }

    // ------------------------------------------------------------------
    // tree plumbing (for the optimizer)
    // ------------------------------------------------------------------

    /// The direct child expressions, left to right.
    pub fn children(&self) -> Vec<&Arc<RelExpr>> {
        match self {
            RelExpr::Scan(_) | RelExpr::Values(_) => vec![],
            RelExpr::Select { input, .. }
            | RelExpr::Project { input, .. }
            | RelExpr::ExtProject { input, .. }
            | RelExpr::Distinct(input)
            | RelExpr::Closure(input)
            | RelExpr::GroupBy { input, .. } => vec![input],
            RelExpr::Union(l, r)
            | RelExpr::Difference(l, r)
            | RelExpr::Product(l, r)
            | RelExpr::Intersect(l, r) => vec![l, r],
            RelExpr::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Rebuilds this node with new children (same arity and order as
    /// [`RelExpr::children`]).
    ///
    /// # Panics
    /// Panics when `children` has the wrong length — a programming error in
    /// a rewrite rule, not a data error.
    pub fn with_children(&self, mut children: Vec<RelExpr>) -> RelExpr {
        let mut take = |n: usize| -> Vec<Arc<RelExpr>> {
            assert_eq!(children.len(), n, "with_children arity mismatch");
            children.drain(..).map(Arc::new).collect()
        };
        match self {
            RelExpr::Scan(name) => {
                assert!(children.is_empty(), "with_children arity mismatch");
                RelExpr::Scan(name.clone())
            }
            RelExpr::Values(rel) => {
                assert!(children.is_empty(), "with_children arity mismatch");
                RelExpr::Values(Arc::clone(rel))
            }
            RelExpr::Select { predicate, .. } => {
                let mut c = take(1);
                RelExpr::Select {
                    input: c.pop().expect("one child"),
                    predicate: predicate.clone(),
                }
            }
            RelExpr::Project { attrs, .. } => {
                let mut c = take(1);
                RelExpr::Project {
                    input: c.pop().expect("one child"),
                    attrs: attrs.clone(),
                }
            }
            RelExpr::ExtProject { exprs, .. } => {
                let mut c = take(1);
                RelExpr::ExtProject {
                    input: c.pop().expect("one child"),
                    exprs: exprs.clone(),
                }
            }
            RelExpr::Distinct(_) => {
                let mut c = take(1);
                RelExpr::Distinct(c.pop().expect("one child"))
            }
            RelExpr::Closure(_) => {
                let mut c = take(1);
                RelExpr::Closure(c.pop().expect("one child"))
            }
            RelExpr::GroupBy {
                keys, agg, attr, ..
            } => {
                let mut c = take(1);
                RelExpr::GroupBy {
                    input: c.pop().expect("one child"),
                    keys: keys.clone(),
                    agg: *agg,
                    attr: *attr,
                }
            }
            RelExpr::Union(..) => {
                let mut c = take(2);
                let r = c.pop().expect("two children");
                let l = c.pop().expect("two children");
                RelExpr::Union(l, r)
            }
            RelExpr::Difference(..) => {
                let mut c = take(2);
                let r = c.pop().expect("two children");
                let l = c.pop().expect("two children");
                RelExpr::Difference(l, r)
            }
            RelExpr::Product(..) => {
                let mut c = take(2);
                let r = c.pop().expect("two children");
                let l = c.pop().expect("two children");
                RelExpr::Product(l, r)
            }
            RelExpr::Intersect(..) => {
                let mut c = take(2);
                let r = c.pop().expect("two children");
                let l = c.pop().expect("two children");
                RelExpr::Intersect(l, r)
            }
            RelExpr::Join { predicate, .. } => {
                let mut c = take(2);
                let right = c.pop().expect("two children");
                let left = c.pop().expect("two children");
                RelExpr::Join {
                    left,
                    right,
                    predicate: predicate.clone(),
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Names of all database relations scanned by the tree, sorted and
    /// deduplicated.
    pub fn scanned_relations(&self) -> Vec<&str> {
        fn go<'a>(e: &'a RelExpr, out: &mut Vec<&'a str>) {
            if let RelExpr::Scan(name) = e {
                out.push(name);
            }
            for c in e.children() {
                go(c, out);
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The operator's display name (used by plan rendering and stats).
    pub fn op_name(&self) -> &'static str {
        match self {
            RelExpr::Scan(_) => "scan",
            RelExpr::Values(_) => "values",
            RelExpr::Union(..) => "union",
            RelExpr::Difference(..) => "difference",
            RelExpr::Product(..) => "product",
            RelExpr::Select { .. } => "select",
            RelExpr::Project { .. } => "project",
            RelExpr::Intersect(..) => "intersect",
            RelExpr::Join { .. } => "join",
            RelExpr::ExtProject { .. } => "ext-project",
            RelExpr::Distinct(_) => "distinct",
            RelExpr::Closure(_) => "closure",
            RelExpr::GroupBy { .. } => "group-by",
        }
    }
}

impl fmt::Display for RelExpr {
    /// Renders the expression in the paper's prefix notation on one line,
    /// with ASCII operator names (`u+` for ⊎, `sigma`, `pi`, …).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelExpr::Scan(name) => write!(f, "{name}"),
            RelExpr::Values(rel) => write!(f, "<values:{} tuples>", rel.len()),
            RelExpr::Union(l, r) => write!(f, "({l} u+ {r})"),
            RelExpr::Difference(l, r) => write!(f, "({l} - {r})"),
            RelExpr::Product(l, r) => write!(f, "({l} x {r})"),
            RelExpr::Select { input, predicate } => write!(f, "sigma[{predicate}]({input})"),
            RelExpr::Project { input, attrs } => write!(f, "pi{attrs}({input})"),
            RelExpr::Intersect(l, r) => write!(f, "({l} n {r})"),
            RelExpr::Join {
                left,
                right,
                predicate,
            } => write!(f, "({left} join[{predicate}] {right})"),
            RelExpr::ExtProject { input, exprs } => {
                write!(f, "pi(")?;
                for (i, e) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")({input})")
            }
            RelExpr::Distinct(input) => write!(f, "delta({input})"),
            RelExpr::Closure(input) => write!(f, "alpha({input})"),
            RelExpr::GroupBy {
                input,
                keys,
                agg,
                attr,
            } => {
                write!(f, "gamma[(")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "%{k}")?;
                }
                write!(f, "),{agg},%{attr}]({input})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .unwrap()
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .unwrap()
    }

    #[test]
    fn scan_schema_comes_from_catalog() {
        let c = catalog();
        let s = RelExpr::scan("beer").schema(&c).unwrap();
        assert_eq!(s.arity(), 3);
        assert!(RelExpr::scan("ale").schema(&c).is_err());
        assert!(RelExpr::scan("beer").schema(&EmptyProvider).is_err());
    }

    #[test]
    fn union_family_requires_compatible_operands() {
        let c = catalog();
        let ok = RelExpr::scan("beer").union(RelExpr::scan("beer"));
        assert_eq!(ok.schema(&c).unwrap().arity(), 3);
        // beer and brewery are both (str,str,str)-incompatible: alcperc is real
        let bad = RelExpr::scan("beer").union(RelExpr::scan("brewery"));
        assert!(bad.schema(&c).is_err());
        let bad = RelExpr::scan("beer").intersect(RelExpr::scan("brewery"));
        assert!(bad.schema(&c).is_err());
        let bad = RelExpr::scan("beer").difference(RelExpr::scan("brewery"));
        assert!(bad.schema(&c).is_err());
    }

    #[test]
    fn product_concatenates_schemas() {
        let c = catalog();
        let p = RelExpr::scan("beer").product(RelExpr::scan("brewery"));
        let s = p.schema(&c).unwrap();
        assert_eq!(s.arity(), 6);
        assert_eq!(s.attr(4).unwrap().name.as_deref(), Some("name"));
    }

    #[test]
    fn select_requires_boolean_predicate() {
        let c = catalog();
        let ok = RelExpr::scan("beer").select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.0)));
        assert_eq!(ok.schema(&c).unwrap().arity(), 3);
        let bad = RelExpr::scan("beer").select(ScalarExpr::attr(3));
        assert!(bad.schema(&c).is_err());
        // predicate referencing a missing attribute
        let bad = RelExpr::scan("beer").select(ScalarExpr::attr(7).eq(ScalarExpr::int(1)));
        assert!(bad.schema(&c).is_err());
    }

    #[test]
    fn join_predicate_sees_concatenated_schema() {
        let c = catalog();
        // Example 3.1's join: beer.brewery = brewery.name, i.e. %2 = %4
        let j = RelExpr::scan("beer").join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
        );
        let s = j.schema(&c).unwrap();
        assert_eq!(s.arity(), 6);
        // %4 would be out of range for either side alone
        let bad = RelExpr::scan("beer").join(
            RelExpr::scan("brewery"),
            ScalarExpr::attr(7).eq(ScalarExpr::attr(1)),
        );
        assert!(bad.schema(&c).is_err());
    }

    #[test]
    fn ext_project_types_and_names() {
        let c = catalog();
        let e = RelExpr::scan("beer").ext_project(vec![
            ScalarExpr::attr(1),
            ScalarExpr::attr(3).mul(ScalarExpr::real(1.1)),
        ]);
        let s = e.schema(&c).unwrap();
        assert_eq!(s.attr(1).unwrap().name.as_deref(), Some("name"));
        assert_eq!(s.attr(2).unwrap().name, None);
        assert_eq!(s.dtype(2).unwrap(), DataType::Real);
        let bad = RelExpr::scan("beer").ext_project(vec![]);
        assert!(bad.schema(&c).is_err());
    }

    #[test]
    fn group_by_schema_is_keys_plus_range() {
        let c = catalog();
        // AVG alcperc per brewery
        let g = RelExpr::scan("beer").group_by(&[2], Aggregate::Avg, 3);
        let s = g.schema(&c).unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr(1).unwrap().name.as_deref(), Some("brewery"));
        assert_eq!(s.dtype(2).unwrap(), DataType::Real);
        // empty key list: single aggregate column
        let g = RelExpr::scan("beer").group_by(&[], Aggregate::Cnt, 1);
        let s = g.schema(&c).unwrap();
        assert_eq!(s.arity(), 1);
        assert_eq!(s.dtype(1).unwrap(), DataType::Int);
    }

    #[test]
    fn group_by_validates_keys_and_aggregate() {
        let c = catalog();
        // duplicate key
        let g = RelExpr::scan("beer").group_by(&[2, 2], Aggregate::Cnt, 1);
        assert!(matches!(
            g.schema(&c),
            Err(CoreError::DuplicateAttrInList(2))
        ));
        // SUM over a string attribute
        let g = RelExpr::scan("beer").group_by(&[2], Aggregate::Sum, 1);
        assert!(g.schema(&c).is_err());
        // aggregated attribute out of range
        let g = RelExpr::scan("beer").group_by(&[2], Aggregate::Cnt, 9);
        assert!(g.schema(&c).is_err());
    }

    #[test]
    fn values_carries_its_own_schema() {
        let rel = relation_of(
            Schema::anon(&[DataType::Int]),
            vec![tuple![1_i64], tuple![1_i64]],
        )
        .unwrap();
        let e = RelExpr::values(rel);
        assert_eq!(e.schema(&EmptyProvider).unwrap().arity(), 1);
    }

    #[test]
    fn children_and_with_children_roundtrip() {
        let c = catalog();
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.0)))
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .project(&[1, 6]);
        assert_eq!(e.node_count(), 5);
        let kids: Vec<RelExpr> = e.children().iter().map(|a| a.as_ref().clone()).collect();
        let rebuilt = e.with_children(kids);
        assert_eq!(rebuilt, e);
        assert_eq!(rebuilt.schema(&c).unwrap().arity(), 2);
    }

    #[test]
    fn scanned_relations_deduplicates() {
        let e = RelExpr::scan("beer")
            .union(RelExpr::scan("beer"))
            .product(RelExpr::scan("brewery"));
        assert_eq!(e.scanned_relations(), vec!["beer", "brewery"]);
    }

    #[test]
    fn display_examples() {
        // Example 3.1: pi(%1)(sigma[...](beer x brewery))
        let e = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .select(
                ScalarExpr::attr(2)
                    .eq(ScalarExpr::attr(4))
                    .and(ScalarExpr::attr(6).eq(ScalarExpr::str("NL"))),
            )
            .project(&[1]);
        let s = e.to_string();
        assert!(s.starts_with("pi(%1)(sigma["), "{s}");
        assert!(s.contains("(beer x brewery)"), "{s}");
    }

    #[test]
    fn op_names() {
        assert_eq!(RelExpr::scan("r").op_name(), "scan");
        assert_eq!(RelExpr::scan("r").distinct().op_name(), "distinct");
    }
}
