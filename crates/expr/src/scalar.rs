//! Scalar expressions over tuples.
//!
//! Two constructs of the paper need expressions on individual tuples:
//!
//! * the selection condition `φ`, "a function from dom(E) into the boolean
//!   domain" (Definition 3.1), and
//! * the arithmetic expressions of the *extended projection* (Definition
//!   3.4), "functions from dom(E) into a basic domain".
//!
//! [`ScalarExpr`] covers both: attributes are referenced by prefixed index
//! (`%i`, 1-based) exactly as in the paper, composed with literals,
//! arithmetic, comparisons and boolean connectives. Expressions are typed:
//! [`ScalarExpr::infer_type`] computes the output domain against an input
//! schema and rejects ill-typed trees before any tuple is touched.

use std::fmt;
use std::sync::Arc;

use mera_core::prelude::*;
use mera_core::value::{Money, Real};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Division `/` (integer division on `int`, checked).
    Div,
    /// Remainder `%` (on `int` only).
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        })
    }
}

/// Comparison operators; defined between values of the same domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality `=`.
    Eq,
    /// Inequality `<>`.
    Ne,
    /// Less-than `<` (ordered domains only).
    Lt,
    /// At-most `<=`.
    Le,
    /// Greater-than `>`.
    Gt,
    /// At-least `>=`.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on an ordering. Public so the columnar
    /// evaluator in `mera-eval` can apply the exact comparison semantics
    /// element-wise.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The comparison with swapped operands (`a op b ⟺ b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// True for the range comparisons that require an ordered domain.
    pub fn needs_order(self) -> bool {
        !matches!(self, CmpOp::Eq | CmpOp::Ne)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A scalar expression evaluated per tuple.
///
/// Subtrees are `Arc`-shared so optimizer rewrites can reuse fragments
/// without cloning whole trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarExpr {
    /// Attribute reference `%i` (1-based).
    Attr(usize),
    /// A literal value.
    Literal(Value),
    /// Binary arithmetic.
    Arith(ArithOp, Arc<ScalarExpr>, Arc<ScalarExpr>),
    /// Arithmetic negation.
    Neg(Arc<ScalarExpr>),
    /// Comparison between two same-domain operands.
    Cmp(CmpOp, Arc<ScalarExpr>, Arc<ScalarExpr>),
    /// Conjunction.
    And(Arc<ScalarExpr>, Arc<ScalarExpr>),
    /// Disjunction.
    Or(Arc<ScalarExpr>, Arc<ScalarExpr>),
    /// Negation.
    Not(Arc<ScalarExpr>),
    /// String concatenation.
    Concat(Arc<ScalarExpr>, Arc<ScalarExpr>),
}

impl ScalarExpr {
    /// Attribute reference `%i`.
    pub fn attr(i: usize) -> Self {
        ScalarExpr::Attr(i)
    }

    /// Literal integer.
    pub fn int(v: i64) -> Self {
        ScalarExpr::Literal(Value::Int(v))
    }

    /// Literal real (panics on NaN — a literal programming error).
    pub fn real(v: f64) -> Self {
        ScalarExpr::Literal(Value::real(v).expect("literal reals must not be NaN"))
    }

    /// Literal string (interned).
    pub fn str(s: impl AsRef<str>) -> Self {
        ScalarExpr::Literal(Value::str(s.as_ref()))
    }

    /// Literal boolean.
    pub fn bool(b: bool) -> Self {
        ScalarExpr::Literal(Value::Bool(b))
    }

    /// `self op other` arithmetic.
    pub fn arith(self, op: ArithOp, other: ScalarExpr) -> Self {
        ScalarExpr::Arith(op, Arc::new(self), Arc::new(other))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: ScalarExpr) -> Self {
        self.arith(ArithOp::Add, other)
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: ScalarExpr) -> Self {
        self.arith(ArithOp::Sub, other)
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: ScalarExpr) -> Self {
        self.arith(ArithOp::Mul, other)
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: ScalarExpr) -> Self {
        self.arith(ArithOp::Div, other)
    }

    /// `self op other` comparison.
    pub fn cmp(self, op: CmpOp, other: ScalarExpr) -> Self {
        ScalarExpr::Cmp(op, Arc::new(self), Arc::new(other))
    }

    /// `self = other`.
    pub fn eq(self, other: ScalarExpr) -> Self {
        self.cmp(CmpOp::Eq, other)
    }

    /// `self ∧ other`.
    pub fn and(self, other: ScalarExpr) -> Self {
        ScalarExpr::And(Arc::new(self), Arc::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: ScalarExpr) -> Self {
        ScalarExpr::Or(Arc::new(self), Arc::new(other))
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        ScalarExpr::Not(Arc::new(self))
    }

    /// `self || other` string concatenation.
    pub fn concat_with(self, other: ScalarExpr) -> Self {
        ScalarExpr::Concat(Arc::new(self), Arc::new(other))
    }

    /// Evaluates the expression on a tuple.
    pub fn eval(&self, tuple: &Tuple) -> CoreResult<Value> {
        match self {
            ScalarExpr::Attr(i) => Ok(tuple.attr(*i)?.clone()),
            ScalarExpr::Literal(v) => Ok(v.clone()),
            ScalarExpr::Arith(op, l, r) => eval_arith(*op, &l.eval(tuple)?, &r.eval(tuple)?),
            ScalarExpr::Neg(e) => match e.eval(tuple)? {
                Value::Int(i) => Ok(Value::Int(
                    i.checked_neg().ok_or(CoreError::Overflow("negation"))?,
                )),
                Value::Real(r) => Value::real(-r.get()),
                Value::Money(m) => Ok(Value::Money(Money(
                    m.0.checked_neg().ok_or(CoreError::Overflow("negation"))?,
                ))),
                other => Err(CoreError::TypeError(format!(
                    "cannot negate {}",
                    other.data_type()
                ))),
            },
            ScalarExpr::Cmp(op, l, r) => {
                let lv = l.eval(tuple)?;
                let rv = r.eval(tuple)?;
                if lv.data_type() != rv.data_type() {
                    return Err(CoreError::TypeError(format!(
                        "cannot compare {} with {}",
                        lv.data_type(),
                        rv.data_type()
                    )));
                }
                Ok(Value::Bool(op.test(lv.cmp(&rv))))
            }
            ScalarExpr::And(l, r) => {
                // strict conjunction: both sides must be boolean, but we may
                // short-circuit on a false left side
                if !l.eval(tuple)?.as_bool()? {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(r.eval(tuple)?.as_bool()?))
            }
            ScalarExpr::Or(l, r) => {
                if l.eval(tuple)?.as_bool()? {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(r.eval(tuple)?.as_bool()?))
            }
            ScalarExpr::Not(e) => Ok(Value::Bool(!e.eval(tuple)?.as_bool()?)),
            ScalarExpr::Concat(l, r) => match (l.eval(tuple)?, r.eval(tuple)?) {
                (Value::Str(a), Value::Str(b)) => {
                    let mut s = String::with_capacity(a.len() + b.len());
                    s.push_str(&a);
                    s.push_str(&b);
                    Ok(Value::str(s))
                }
                (a, b) => Err(CoreError::TypeError(format!(
                    "cannot concatenate {} with {}",
                    a.data_type(),
                    b.data_type()
                ))),
            },
        }
    }

    /// Evaluates a predicate (boolean-typed expression) on a tuple.
    pub fn eval_predicate(&self, tuple: &Tuple) -> CoreResult<bool> {
        self.eval(tuple)?.as_bool()
    }

    /// Infers the output domain against an input schema, rejecting ill-typed
    /// trees.
    pub fn infer_type(&self, schema: &Schema) -> CoreResult<DataType> {
        match self {
            ScalarExpr::Attr(i) => schema.dtype(*i),
            ScalarExpr::Literal(v) => Ok(v.data_type()),
            ScalarExpr::Arith(op, l, r) => {
                arith_result_type(*op, l.infer_type(schema)?, r.infer_type(schema)?)
            }
            ScalarExpr::Neg(e) => {
                let t = e.infer_type(schema)?;
                if t.is_numeric() {
                    Ok(t)
                } else {
                    Err(CoreError::TypeError(format!("cannot negate {t}")))
                }
            }
            ScalarExpr::Cmp(op, l, r) => {
                let lt = l.infer_type(schema)?;
                let rt = r.infer_type(schema)?;
                if lt != rt {
                    return Err(CoreError::TypeError(format!(
                        "cannot compare {lt} with {rt}"
                    )));
                }
                if op.needs_order() && !lt.is_ordered() {
                    return Err(CoreError::TypeError(format!(
                        "domain {lt} has no order for {op}"
                    )));
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
                for side in [l, r] {
                    let t = side.infer_type(schema)?;
                    if t != DataType::Bool {
                        return Err(CoreError::TypeError(format!(
                            "boolean connective applied to {t}"
                        )));
                    }
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::Not(e) => {
                let t = e.infer_type(schema)?;
                if t != DataType::Bool {
                    return Err(CoreError::TypeError(format!("NOT applied to {t}")));
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::Concat(l, r) => {
                let lt = l.infer_type(schema)?;
                let rt = r.infer_type(schema)?;
                if lt == DataType::Str && rt == DataType::Str {
                    Ok(DataType::Str)
                } else {
                    Err(CoreError::TypeError(format!(
                        "cannot concatenate {lt} with {rt}"
                    )))
                }
            }
        }
    }

    /// Collects the set of attribute indexes referenced by the expression,
    /// in ascending order without duplicates.
    pub fn attrs_used(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let ScalarExpr::Attr(i) = e {
                out.push(*i);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Largest attribute index referenced, or 0 if none.
    pub fn max_attr(&self) -> usize {
        self.attrs_used().last().copied().unwrap_or(0)
    }

    /// Calls `f` on every node of the tree (pre-order).
    pub fn walk<F: FnMut(&ScalarExpr)>(&self, f: &mut F) {
        f(self);
        match self {
            ScalarExpr::Attr(_) | ScalarExpr::Literal(_) => {}
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => e.walk(f),
            ScalarExpr::Arith(_, l, r)
            | ScalarExpr::Cmp(_, l, r)
            | ScalarExpr::And(l, r)
            | ScalarExpr::Or(l, r)
            | ScalarExpr::Concat(l, r) => {
                l.walk(f);
                r.walk(f);
            }
        }
    }

    /// Rewrites every attribute index through `f` (used by pushdown rules to
    /// re-base predicates across products); fails if `f` does.
    pub fn map_attrs<F>(&self, f: &mut F) -> CoreResult<ScalarExpr>
    where
        F: FnMut(usize) -> CoreResult<usize>,
    {
        Ok(match self {
            ScalarExpr::Attr(i) => ScalarExpr::Attr(f(*i)?),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Arith(op, l, r) => {
                ScalarExpr::Arith(*op, Arc::new(l.map_attrs(f)?), Arc::new(r.map_attrs(f)?))
            }
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Arc::new(e.map_attrs(f)?)),
            ScalarExpr::Cmp(op, l, r) => {
                ScalarExpr::Cmp(*op, Arc::new(l.map_attrs(f)?), Arc::new(r.map_attrs(f)?))
            }
            ScalarExpr::And(l, r) => {
                ScalarExpr::And(Arc::new(l.map_attrs(f)?), Arc::new(r.map_attrs(f)?))
            }
            ScalarExpr::Or(l, r) => {
                ScalarExpr::Or(Arc::new(l.map_attrs(f)?), Arc::new(r.map_attrs(f)?))
            }
            ScalarExpr::Not(e) => ScalarExpr::Not(Arc::new(e.map_attrs(f)?)),
            ScalarExpr::Concat(l, r) => {
                ScalarExpr::Concat(Arc::new(l.map_attrs(f)?), Arc::new(r.map_attrs(f)?))
            }
        })
    }

    /// True when the expression references no attributes (a constant).
    pub fn is_constant(&self) -> bool {
        let mut constant = true;
        self.walk(&mut |e| {
            if matches!(e, ScalarExpr::Attr(_)) {
                constant = false;
            }
        });
        constant
    }

    /// Splits a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&ScalarExpr> {
        let mut out = Vec::new();
        fn go<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a ScalarExpr>) {
            match e {
                ScalarExpr::And(l, r) => {
                    go(l, out);
                    go(r, out);
                }
                other => out.push(other),
            }
        }
        go(self, &mut out);
        out
    }

    /// Rebuilds a conjunction from conjuncts; an empty list yields `true`.
    pub fn conjoin(mut parts: Vec<ScalarExpr>) -> ScalarExpr {
        match parts.len() {
            0 => ScalarExpr::bool(true),
            1 => parts.pop().expect("len checked"),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, e| acc.and(e))
            }
        }
    }
}

/// Per-operator result typing for arithmetic (see crate docs for the
/// coercion table).
pub fn arith_result_type(op: ArithOp, l: DataType, r: DataType) -> CoreResult<DataType> {
    use DataType::*;
    let err = || {
        Err(CoreError::TypeError(format!(
            "no arithmetic {op} between {l} and {r}"
        )))
    };
    match op {
        ArithOp::Add | ArithOp::Sub => match (l, r) {
            (Int, Int) => Ok(Int),
            (Int, Real) | (Real, Int) | (Real, Real) => Ok(Real),
            (Money, Money) => Ok(Money),
            _ => err(),
        },
        ArithOp::Mul => match (l, r) {
            (Int, Int) => Ok(Int),
            (Int, Real) | (Real, Int) | (Real, Real) => Ok(Real),
            (Money, Int) | (Int, Money) => Ok(Money),
            (Money, Real) | (Real, Money) => Ok(Money),
            _ => err(),
        },
        ArithOp::Div => match (l, r) {
            (Int, Int) => Ok(Int),
            (Int, Real) | (Real, Int) | (Real, Real) => Ok(Real),
            (Money, Int) | (Money, Real) => Ok(Money),
            (Money, Money) => Ok(Real),
            _ => err(),
        },
        ArithOp::Mod => match (l, r) {
            (Int, Int) => Ok(Int),
            _ => err(),
        },
    }
}

/// Evaluates one arithmetic operation on two values, following
/// [`arith_result_type`]. Public so the columnar evaluator in `mera-eval`
/// can reuse the exact scalar semantics element-wise.
pub fn eval_arith(op: ArithOp, l: &Value, r: &Value) -> CoreResult<Value> {
    use ArithOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let v = match op {
                Add => a.checked_add(b),
                Sub => a.checked_sub(b),
                Mul => a.checked_mul(b),
                Div => {
                    if b == 0 {
                        return Err(CoreError::DivisionByZero);
                    }
                    a.checked_div(b)
                }
                Mod => {
                    if b == 0 {
                        return Err(CoreError::DivisionByZero);
                    }
                    a.checked_rem(b)
                }
            };
            Ok(Value::Int(v.ok_or(CoreError::Overflow("int arithmetic"))?))
        }
        (Value::Money(a), Value::Money(b)) => match op {
            Add => Ok(Value::Money(Money(
                a.0.checked_add(b.0).ok_or(CoreError::Overflow("money"))?,
            ))),
            Sub => Ok(Value::Money(Money(
                a.0.checked_sub(b.0).ok_or(CoreError::Overflow("money"))?,
            ))),
            Div => {
                if b.0 == 0 {
                    return Err(CoreError::DivisionByZero);
                }
                Value::real(a.0 as f64 / b.0 as f64)
            }
            _ => Err(CoreError::TypeError(format!(
                "no arithmetic {op} between money and money"
            ))),
        },
        (Value::Money(_), _) | (_, Value::Money(_)) => {
            // money scaled by int or real (Mul/Div per the typing table)
            let (m, scalar, money_is_left) = match (l, r) {
                (Value::Money(m), s) => (m, s, true),
                (s, Value::Money(m)) => (m, s, false),
                _ => unreachable!("outer match guarantees one money operand"),
            };
            if !matches!(scalar, Value::Int(_) | Value::Real(_)) {
                return Err(CoreError::TypeError(format!(
                    "no arithmetic {op} between {} and {}",
                    l.data_type(),
                    r.data_type()
                )));
            }
            let s = scalar.as_f64()?;
            let cents = m.0 as f64;
            let out = match op {
                Mul => cents * s,
                Div if money_is_left => {
                    if s == 0.0 {
                        return Err(CoreError::DivisionByZero);
                    }
                    cents / s
                }
                _ => {
                    return Err(CoreError::TypeError(format!(
                        "no arithmetic {op} between {} and {}",
                        l.data_type(),
                        r.data_type()
                    )))
                }
            };
            if !out.is_finite() || out.abs() >= i64::MAX as f64 {
                return Err(CoreError::Overflow("money arithmetic"));
            }
            Ok(Value::Money(Money(out.round() as i64)))
        }
        _ => {
            // remaining numeric mixes evaluate in f64
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(CoreError::DivisionByZero);
                    }
                    a / b
                }
                Mod => {
                    return Err(CoreError::TypeError(format!(
                        "no arithmetic % between {} and {}",
                        l.data_type(),
                        r.data_type()
                    )))
                }
            };
            Ok(Value::Real(Real::new(v).map_err(|_| {
                CoreError::Overflow("real arithmetic produced NaN")
            })?))
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Attr(i) => write!(f, "%{i}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::Neg(e) => write!(f, "(-{e})"),
            ScalarExpr::Cmp(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::And(l, r) => write!(f, "({l} and {r})"),
            ScalarExpr::Or(l, r) => write!(f, "({l} or {r})"),
            ScalarExpr::Not(e) => write!(f, "(not {e})"),
            ScalarExpr::Concat(l, r) => write!(f, "({l} || {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_core::tuple;

    fn schema() -> Schema {
        Schema::named(&[
            ("name", DataType::Str),
            ("alcperc", DataType::Real),
            ("year", DataType::Int),
        ])
    }

    fn row() -> Tuple {
        tuple!["Grolsch", 5.0_f64, 1615_i64]
    }

    #[test]
    fn attr_and_literal_eval() {
        assert_eq!(
            ScalarExpr::attr(1).eval(&row()).unwrap(),
            Value::str("Grolsch")
        );
        assert_eq!(ScalarExpr::int(9).eval(&row()).unwrap(), Value::Int(9));
        assert!(ScalarExpr::attr(4).eval(&row()).is_err());
    }

    #[test]
    fn arithmetic_int() {
        let e = ScalarExpr::attr(3).add(ScalarExpr::int(10));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(1625));
        let e = ScalarExpr::int(7).arith(ArithOp::Mod, ScalarExpr::int(3));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(1));
        let e = ScalarExpr::int(7).div(ScalarExpr::int(2));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(3));
    }

    #[test]
    fn arithmetic_real_and_mixed() {
        // the Guineken update: alcperc * 1.1
        let e = ScalarExpr::attr(2).mul(ScalarExpr::real(1.1));
        assert_eq!(e.eval(&row()).unwrap(), Value::real(5.5).unwrap());
        let e = ScalarExpr::attr(3).add(ScalarExpr::real(0.5));
        assert_eq!(e.eval(&row()).unwrap(), Value::real(1615.5).unwrap());
    }

    #[test]
    fn arithmetic_money() {
        let price = ScalarExpr::Literal(Value::Money(Money(250)));
        let e = price.clone().mul(ScalarExpr::int(3));
        assert_eq!(e.eval(&row()).unwrap(), Value::Money(Money(750)));
        let e = price.clone().mul(ScalarExpr::real(1.1));
        assert_eq!(e.eval(&row()).unwrap(), Value::Money(Money(275)));
        let e = price.clone().add(price.clone());
        assert_eq!(e.eval(&row()).unwrap(), Value::Money(Money(500)));
        let e = price.clone().div(price);
        assert_eq!(e.eval(&row()).unwrap(), Value::real(1.0).unwrap());
    }

    #[test]
    fn division_by_zero_detected() {
        let e = ScalarExpr::int(1).div(ScalarExpr::int(0));
        assert_eq!(e.eval(&row()).unwrap_err(), CoreError::DivisionByZero);
        let e = ScalarExpr::real(1.0).div(ScalarExpr::real(0.0));
        assert_eq!(e.eval(&row()).unwrap_err(), CoreError::DivisionByZero);
    }

    #[test]
    fn overflow_detected() {
        let e = ScalarExpr::int(i64::MAX).add(ScalarExpr::int(1));
        assert!(matches!(e.eval(&row()), Err(CoreError::Overflow(_))));
        let e = ScalarExpr::Neg(Arc::new(ScalarExpr::int(i64::MIN)));
        assert!(matches!(e.eval(&row()), Err(CoreError::Overflow(_))));
    }

    #[test]
    fn comparisons() {
        let e = ScalarExpr::attr(2).cmp(CmpOp::Ge, ScalarExpr::real(5.0));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = ScalarExpr::attr(1).eq(ScalarExpr::str("Grolsch"));
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        // cross-type comparison is a type error, not false
        let e = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        assert!(e.eval(&row()).is_err());
    }

    #[test]
    fn boolean_connectives_short_circuit() {
        // right side would error on eval; false AND short-circuits
        let bad = ScalarExpr::int(1)
            .div(ScalarExpr::int(0))
            .eq(ScalarExpr::int(1));
        let e = ScalarExpr::bool(false).and(bad.clone());
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(false));
        let e = ScalarExpr::bool(true).or(bad);
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(true));
        let e = ScalarExpr::bool(true).not();
        assert_eq!(e.eval(&row()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn string_concat() {
        let e = ScalarExpr::attr(1).concat_with(ScalarExpr::str("!"));
        assert_eq!(e.eval(&row()).unwrap(), Value::str("Grolsch!"));
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(
            ScalarExpr::attr(2)
                .mul(ScalarExpr::real(1.1))
                .infer_type(&s)
                .unwrap(),
            DataType::Real
        );
        assert_eq!(
            ScalarExpr::attr(3)
                .add(ScalarExpr::int(1))
                .infer_type(&s)
                .unwrap(),
            DataType::Int
        );
        assert_eq!(
            ScalarExpr::attr(3)
                .add(ScalarExpr::real(0.5))
                .infer_type(&s)
                .unwrap(),
            DataType::Real
        );
        assert_eq!(
            ScalarExpr::attr(1)
                .eq(ScalarExpr::str("x"))
                .infer_type(&s)
                .unwrap(),
            DataType::Bool
        );
        // ill-typed trees rejected statically
        assert!(ScalarExpr::attr(1)
            .add(ScalarExpr::int(1))
            .infer_type(&s)
            .is_err());
        assert!(ScalarExpr::attr(1)
            .cmp(CmpOp::Lt, ScalarExpr::int(1))
            .infer_type(&s)
            .is_err());
        assert!(ScalarExpr::attr(9).infer_type(&s).is_err());
        assert!(ScalarExpr::int(1)
            .and(ScalarExpr::bool(true))
            .infer_type(&s)
            .is_err());
        // bool has no order
        assert!(ScalarExpr::bool(true)
            .cmp(CmpOp::Lt, ScalarExpr::bool(false))
            .infer_type(&s)
            .is_err());
        // but bool equality is fine
        assert!(ScalarExpr::bool(true)
            .eq(ScalarExpr::bool(false))
            .infer_type(&s)
            .is_ok());
    }

    #[test]
    fn attrs_used_and_constant() {
        let e = ScalarExpr::attr(3)
            .add(ScalarExpr::int(1))
            .eq(ScalarExpr::attr(3));
        assert_eq!(e.attrs_used(), vec![3]);
        assert_eq!(e.max_attr(), 3);
        assert!(!e.is_constant());
        let e = ScalarExpr::attr(1)
            .eq(ScalarExpr::str("x"))
            .and(ScalarExpr::attr(5).eq(ScalarExpr::int(2)));
        assert_eq!(e.attrs_used(), vec![1, 5]);
        assert_eq!(e.max_attr(), 5);
        assert!(ScalarExpr::int(1).add(ScalarExpr::int(2)).is_constant());
        assert_eq!(ScalarExpr::int(1).max_attr(), 0);
    }

    #[test]
    fn map_attrs_rebases() {
        let e = ScalarExpr::attr(1).eq(ScalarExpr::attr(4));
        let shifted = e.map_attrs(&mut |i| Ok(i + 3)).unwrap();
        assert_eq!(shifted.attrs_used(), vec![4, 7]);
    }

    #[test]
    fn conjunct_roundtrip() {
        let a = ScalarExpr::attr(1).eq(ScalarExpr::str("x"));
        let b = ScalarExpr::attr(2).cmp(CmpOp::Gt, ScalarExpr::real(4.0));
        let c = ScalarExpr::attr(3).eq(ScalarExpr::int(1));
        let conj = ScalarExpr::conjoin(vec![a.clone(), b, c.clone()]);
        let parts = conj.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &a);
        assert_eq!(parts[2], &c);
        assert_eq!(ScalarExpr::conjoin(vec![]), ScalarExpr::bool(true));
        assert_eq!(ScalarExpr::conjoin(vec![a.clone()]), a);
    }

    #[test]
    fn display_renders_prefixed_attrs() {
        let e = ScalarExpr::attr(2).mul(ScalarExpr::real(1.1));
        assert_eq!(e.to_string(), "(%2 * 1.1)");
        let e = ScalarExpr::attr(1).eq(ScalarExpr::str("Guineken"));
        assert_eq!(e.to_string(), "(%1 = 'Guineken')");
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
    }
}
