//! Multi-set aggregate functions (Definition 3.3).
//!
//! Aggregates compute one value over a *bag* of attribute values — crucially
//! counting multiplicities:
//!
//! * `CNT_p E = Σ_x E(x)` — `p` is a dummy parameter kept "for reasons of
//!   syntactical uniformity",
//! * `SUM_p E = Σ_x x.p · E(x)` — numeric `p` only,
//! * `AVG_p E = SUM_p E / CNT_p E`,
//! * `MIN_p E`, `MAX_p E` over the support.
//!
//! AVG, MIN and MAX are *partial* functions: applying them to an empty
//! multi-set is an error ([`CoreError::AggregateOnEmpty`]), exactly as the
//! paper notes. CNT and SUM of an empty bag are 0.

use std::fmt;

use mera_core::prelude::*;
use mera_core::value::{Money, Real};

/// The multi-set aggregate functions: the five of Definition 3.3 plus
/// the statistical extensions its closing note invites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `CNT` — cardinality with multiplicity.
    Cnt,
    /// `SUM` — multiplicity-weighted sum of a numeric attribute.
    Sum,
    /// `AVG` — `SUM/CNT`; partial (empty input is an error).
    Avg,
    /// `MIN` — minimum over the support; partial.
    Min,
    /// `MAX` — maximum over the support; partial.
    Max,
    /// `STDDEV` — population standard deviation, multiplicity-weighted;
    /// partial. One of the "statistical aggregate functions" the
    /// definition's note explicitly allows as alternative choices.
    StdDev,
    /// `MEDIAN` — multiplicity-weighted median (mean of the two middle
    /// elements for even counts); partial.
    Median,
}

impl Aggregate {
    /// The name used by the textual language and `Display`.
    pub fn name(self) -> &'static str {
        match self {
            Aggregate::Cnt => "CNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
            Aggregate::StdDev => "STDDEV",
            Aggregate::Median => "MEDIAN",
        }
    }

    /// Parses an aggregate name (case-insensitive; accepts the common
    /// `COUNT` alias for `CNT`).
    pub fn parse(s: &str) -> Option<Aggregate> {
        match s.to_ascii_uppercase().as_str() {
            "CNT" | "COUNT" => Some(Aggregate::Cnt),
            "SUM" => Some(Aggregate::Sum),
            "AVG" => Some(Aggregate::Avg),
            "MIN" => Some(Aggregate::Min),
            "MAX" => Some(Aggregate::Max),
            "STDDEV" | "STD" => Some(Aggregate::StdDev),
            "MEDIAN" => Some(Aggregate::Median),
            _ => None,
        }
    }

    /// The domain of the aggregate's range `ran(f(×p→τ))` given the
    /// aggregated attribute's domain, or an error when the aggregate is not
    /// defined on it ("p must have a numeric domain" for SUM/AVG).
    pub fn result_type(self, input: DataType) -> CoreResult<DataType> {
        match self {
            Aggregate::Cnt => Ok(DataType::Int),
            Aggregate::Sum => {
                if input.is_numeric() {
                    Ok(input)
                } else {
                    Err(CoreError::TypeError(format!(
                        "SUM over non-numeric {input}"
                    )))
                }
            }
            Aggregate::Avg => {
                if input.is_numeric() {
                    Ok(DataType::Real)
                } else {
                    Err(CoreError::TypeError(format!(
                        "AVG over non-numeric {input}"
                    )))
                }
            }
            Aggregate::Min | Aggregate::Max => {
                if input.is_ordered() {
                    Ok(input)
                } else {
                    Err(CoreError::TypeError(format!(
                        "{} over unordered {input}",
                        self.name()
                    )))
                }
            }
            Aggregate::StdDev | Aggregate::Median => {
                if input.is_numeric() {
                    Ok(DataType::Real)
                } else {
                    Err(CoreError::TypeError(format!(
                        "{} over non-numeric {input}",
                        self.name()
                    )))
                }
            }
        }
    }

    /// True for the *partial* aggregates of Definition 3.4 — the ones
    /// undefined on the empty multi-set. `CNT` and `SUM` are total (they
    /// return 0 / the domain's zero); everything else aborts on empty
    /// input, which is what the static partiality lint warns about.
    pub fn is_partial(self) -> bool {
        !matches!(self, Aggregate::Cnt | Aggregate::Sum)
    }

    /// Computes the aggregate over `(value, multiplicity)` pairs.
    ///
    /// The pairs are the projections `x.p` of a group's tuples with their
    /// multiplicities; order is irrelevant. `input_type` is the domain of
    /// the aggregated attribute; it types SUM's neutral element so that
    /// `SUM` of an empty bag is the *zero of the attribute's domain*
    /// (`0`, `0.0` or `0.00`), keeping results schema-correct.
    pub fn compute<'a, I>(self, input_type: DataType, values: I) -> CoreResult<Value>
    where
        I: IntoIterator<Item = (&'a Value, u64)>,
    {
        match self {
            Aggregate::Cnt => {
                let mut n: u64 = 0;
                for (_, m) in values {
                    n = n.checked_add(m).ok_or(CoreError::Overflow("CNT"))?;
                }
                let n = i64::try_from(n).map_err(|_| CoreError::Overflow("CNT"))?;
                Ok(Value::Int(n))
            }
            Aggregate::Sum => compute_sum(input_type, values).map(|(sum, _)| sum),
            Aggregate::Avg => {
                let (sum, count) = compute_sum(input_type, values)?;
                if count == 0 {
                    return Err(CoreError::AggregateOnEmpty("AVG"));
                }
                let avg = sum.as_f64()? / count as f64;
                Ok(Value::Real(
                    Real::new(avg).map_err(|_| CoreError::Overflow("AVG produced NaN"))?,
                ))
            }
            Aggregate::Min | Aggregate::Max => {
                let mut best: Option<&Value> = None;
                for (v, m) in values {
                    if m == 0 {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = if self == Aggregate::Min { v < b } else { v > b };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best.cloned()
                    .ok_or(CoreError::AggregateOnEmpty(self.name()))
            }
            Aggregate::StdDev => {
                // two-pass population stddev, multiplicity-weighted
                let pairs: Vec<(f64, u64)> = collect_numeric(values)?;
                let count: u64 = pairs.iter().map(|&(_, m)| m).sum();
                if count == 0 {
                    return Err(CoreError::AggregateOnEmpty("STDDEV"));
                }
                let mean = pairs.iter().map(|&(v, m)| v * m as f64).sum::<f64>() / count as f64;
                let var = pairs
                    .iter()
                    .map(|&(v, m)| (v - mean).powi(2) * m as f64)
                    .sum::<f64>()
                    / count as f64;
                Ok(Value::Real(
                    Real::new(var.sqrt())
                        .map_err(|_| CoreError::Overflow("STDDEV produced NaN"))?,
                ))
            }
            Aggregate::Median => {
                let mut pairs: Vec<(f64, u64)> = collect_numeric(values)?;
                let count: u64 = pairs.iter().map(|&(_, m)| m).sum();
                if count == 0 {
                    return Err(CoreError::AggregateOnEmpty("MEDIAN"));
                }
                pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                // positions are 0-based into the multiplicity-expanded
                // sequence; even counts average the two middle elements
                let lo_pos = (count - 1) / 2;
                let hi_pos = count / 2;
                let at = |pos: u64| -> f64 {
                    let mut seen = 0u64;
                    for &(v, m) in &pairs {
                        seen += m;
                        if pos < seen {
                            return v;
                        }
                    }
                    pairs.last().expect("non-empty").0
                };
                let median = (at(lo_pos) + at(hi_pos)) / 2.0;
                Ok(Value::Real(
                    Real::new(median).map_err(|_| CoreError::Overflow("MEDIAN produced NaN"))?,
                ))
            }
        }
    }
}

/// Collects numeric `(value, multiplicity)` pairs as `f64`, rejecting
/// non-numeric domains.
fn collect_numeric<'a, I>(values: I) -> CoreResult<Vec<(f64, u64)>>
where
    I: IntoIterator<Item = (&'a Value, u64)>,
{
    values
        .into_iter()
        .filter(|&(_, m)| m > 0)
        .map(|(v, m)| Ok((v.as_f64()?, m)))
        .collect()
}

/// Multiplicity-weighted sum plus total count. Int sums stay exact in
/// `i128` then narrow; real sums accumulate in `f64`; money sums stay in
/// minor units. The empty sum is the typed zero of `input_type`.
fn compute_sum<'a, I>(input_type: DataType, values: I) -> CoreResult<(Value, u64)>
where
    I: IntoIterator<Item = (&'a Value, u64)>,
{
    enum Acc {
        Empty,
        Int(i128),
        Real(f64),
        Money(i128),
    }
    let mut acc = Acc::Empty;
    let mut count: u64 = 0;
    for (v, m) in values {
        if m == 0 {
            continue;
        }
        count = count
            .checked_add(m)
            .ok_or(CoreError::Overflow("SUM count"))?;
        match (&mut acc, v) {
            (Acc::Empty, Value::Int(i)) => acc = Acc::Int(i128::from(*i) * i128::from(m)),
            (Acc::Empty, Value::Real(r)) => acc = Acc::Real(r.get() * m as f64),
            (Acc::Empty, Value::Money(mo)) => acc = Acc::Money(i128::from(mo.0) * i128::from(m)),
            (Acc::Int(s), Value::Int(i)) => {
                *s = s
                    .checked_add(i128::from(*i) * i128::from(m))
                    .ok_or(CoreError::Overflow("SUM"))?;
            }
            (Acc::Real(s), Value::Real(r)) => *s += r.get() * m as f64,
            (Acc::Money(s), Value::Money(mo)) => {
                *s = s
                    .checked_add(i128::from(mo.0) * i128::from(m))
                    .ok_or(CoreError::Overflow("SUM"))?;
            }
            (_, other) => {
                return Err(CoreError::TypeError(format!(
                    "SUM over mixed or non-numeric domain ({})",
                    other.data_type()
                )))
            }
        }
    }
    let sum = match acc {
        // SUM of the empty bag is the typed zero of the attribute's domain
        Acc::Empty => match input_type {
            DataType::Int => Value::Int(0),
            DataType::Real => Value::Real(Real::new(0.0).expect("zero is not NaN")),
            DataType::Money => Value::Money(Money(0)),
            other => {
                return Err(CoreError::TypeError(format!(
                    "SUM over non-numeric {other}"
                )))
            }
        },
        Acc::Int(s) => Value::Int(i64::try_from(s).map_err(|_| CoreError::Overflow("SUM"))?),
        Acc::Real(s) => {
            Value::Real(Real::new(s).map_err(|_| CoreError::Overflow("SUM produced NaN"))?)
        }
        Acc::Money(s) => Value::Money(Money(
            i64::try_from(s).map_err(|_| CoreError::Overflow("SUM"))?,
        )),
    };
    Ok((sum, count))
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(pairs: &[(i64, u64)]) -> Vec<(Value, u64)> {
        pairs.iter().map(|&(v, m)| (Value::Int(v), m)).collect()
    }

    fn run(agg: Aggregate, pairs: &[(Value, u64)]) -> CoreResult<Value> {
        let t = pairs
            .first()
            .map(|(v, _)| v.data_type())
            .unwrap_or(DataType::Int);
        agg.compute(t, pairs.iter().map(|(v, m)| (v, *m)))
    }

    #[test]
    fn empty_sum_is_typed_zero() {
        let none: [(Value, u64); 0] = [];
        let go = |t| Aggregate::Sum.compute(t, none.iter().map(|(v, m)| (v, *m)));
        assert_eq!(go(DataType::Int).unwrap(), Value::Int(0));
        assert_eq!(go(DataType::Real).unwrap(), Value::real(0.0).unwrap());
        assert_eq!(go(DataType::Money).unwrap(), Value::Money(Money(0)));
        assert!(go(DataType::Str).is_err());
    }

    #[test]
    fn cnt_counts_with_multiplicity() {
        let v = vals(&[(10, 3), (20, 2)]);
        assert_eq!(run(Aggregate::Cnt, &v).unwrap(), Value::Int(5));
        assert_eq!(run(Aggregate::Cnt, &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn sum_weights_by_multiplicity() {
        let v = vals(&[(10, 3), (20, 2)]);
        assert_eq!(run(Aggregate::Sum, &v).unwrap(), Value::Int(70));
        assert_eq!(run(Aggregate::Sum, &[]).unwrap(), Value::Int(0));
    }

    #[test]
    fn sum_real_and_money() {
        let v = vec![
            (Value::real(1.5).unwrap(), 2),
            (Value::real(2.0).unwrap(), 1),
        ];
        assert_eq!(run(Aggregate::Sum, &v).unwrap(), Value::real(5.0).unwrap());
        let v = vec![(Value::Money(Money(150)), 3)];
        assert_eq!(run(Aggregate::Sum, &v).unwrap(), Value::Money(Money(450)));
    }

    #[test]
    fn avg_is_sum_over_cnt() {
        let v = vals(&[(10, 3), (20, 1)]);
        assert_eq!(run(Aggregate::Avg, &v).unwrap(), Value::real(12.5).unwrap());
    }

    #[test]
    fn avg_min_max_partial_on_empty() {
        assert_eq!(
            run(Aggregate::Avg, &[]).unwrap_err(),
            CoreError::AggregateOnEmpty("AVG")
        );
        assert_eq!(
            run(Aggregate::Min, &[]).unwrap_err(),
            CoreError::AggregateOnEmpty("MIN")
        );
        assert_eq!(
            run(Aggregate::Max, &[]).unwrap_err(),
            CoreError::AggregateOnEmpty("MAX")
        );
    }

    #[test]
    fn min_max_over_support() {
        let v = vals(&[(10, 1), (20, 5), (15, 2)]);
        assert_eq!(run(Aggregate::Min, &v).unwrap(), Value::Int(10));
        assert_eq!(run(Aggregate::Max, &v).unwrap(), Value::Int(20));
        // strings are ordered, so MIN/MAX apply
        let v = vec![(Value::str("pils"), 1), (Value::str("ale"), 2)];
        assert_eq!(run(Aggregate::Min, &v).unwrap(), Value::str("ale"));
        assert_eq!(run(Aggregate::Max, &v).unwrap(), Value::str("pils"));
    }

    #[test]
    fn zero_multiplicity_pairs_ignored() {
        let v = vals(&[(10, 0), (20, 1)]);
        assert_eq!(run(Aggregate::Min, &v).unwrap(), Value::Int(20));
        assert_eq!(run(Aggregate::Cnt, &v).unwrap(), Value::Int(1));
    }

    #[test]
    fn sum_rejects_mixed_domains() {
        let v = vec![(Value::Int(1), 1), (Value::real(1.0).unwrap(), 1)];
        assert!(run(Aggregate::Sum, &v).is_err());
        let v = vec![(Value::str("x"), 1)];
        assert!(run(Aggregate::Sum, &v).is_err());
    }

    #[test]
    fn result_types() {
        assert_eq!(
            Aggregate::Cnt.result_type(DataType::Str).unwrap(),
            DataType::Int
        );
        assert_eq!(
            Aggregate::Sum.result_type(DataType::Int).unwrap(),
            DataType::Int
        );
        assert_eq!(
            Aggregate::Sum.result_type(DataType::Money).unwrap(),
            DataType::Money
        );
        assert_eq!(
            Aggregate::Avg.result_type(DataType::Int).unwrap(),
            DataType::Real
        );
        assert_eq!(
            Aggregate::Min.result_type(DataType::Str).unwrap(),
            DataType::Str
        );
        assert!(Aggregate::Sum.result_type(DataType::Str).is_err());
        assert!(Aggregate::Avg.result_type(DataType::Date).is_err());
        assert!(Aggregate::Min.result_type(DataType::Bool).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(Aggregate::parse("avg"), Some(Aggregate::Avg));
        assert_eq!(Aggregate::parse("COUNT"), Some(Aggregate::Cnt));
        assert_eq!(Aggregate::parse("quartile"), None);
    }

    #[test]
    fn stddev_weighted() {
        // values 2,2,4,4 (via multiplicities): mean 3, variance 1
        let v = vals(&[(2, 2), (4, 2)]);
        assert_eq!(
            run(Aggregate::StdDev, &v).unwrap(),
            Value::real(1.0).unwrap()
        );
        // single value: stddev 0
        let v = vals(&[(7, 3)]);
        assert_eq!(
            run(Aggregate::StdDev, &v).unwrap(),
            Value::real(0.0).unwrap()
        );
        assert_eq!(
            run(Aggregate::StdDev, &[]).unwrap_err(),
            CoreError::AggregateOnEmpty("STDDEV")
        );
        assert!(run(Aggregate::StdDev, &[(Value::str("x"), 1)]).is_err());
    }

    #[test]
    fn median_weighted() {
        // expanded sequence 1,1,1,9 → median (1+1)/2 = 1
        let v = vals(&[(1, 3), (9, 1)]);
        assert_eq!(
            run(Aggregate::Median, &v).unwrap(),
            Value::real(1.0).unwrap()
        );
        // 1,2,3 → 2
        let v = vals(&[(1, 1), (2, 1), (3, 1)]);
        assert_eq!(
            run(Aggregate::Median, &v).unwrap(),
            Value::real(2.0).unwrap()
        );
        // 1,2,3,10 → (2+3)/2
        let v = vals(&[(1, 1), (2, 1), (3, 1), (10, 1)]);
        assert_eq!(
            run(Aggregate::Median, &v).unwrap(),
            Value::real(2.5).unwrap()
        );
        assert_eq!(
            run(Aggregate::Median, &[]).unwrap_err(),
            CoreError::AggregateOnEmpty("MEDIAN")
        );
    }

    #[test]
    fn statistical_result_types() {
        assert_eq!(
            Aggregate::StdDev.result_type(DataType::Int).unwrap(),
            DataType::Real
        );
        assert_eq!(
            Aggregate::Median.result_type(DataType::Money).unwrap(),
            DataType::Real
        );
        assert!(Aggregate::StdDev.result_type(DataType::Str).is_err());
        assert_eq!(Aggregate::parse("stddev"), Some(Aggregate::StdDev));
        assert_eq!(Aggregate::parse("median"), Some(Aggregate::Median));
    }

    #[test]
    fn cnt_overflow_guard() {
        let v = vec![(Value::Int(1), u64::MAX), (Value::Int(2), 2)];
        assert!(matches!(
            run(Aggregate::Cnt, &v),
            Err(CoreError::Overflow(_))
        ));
    }
}
