//! Rewrite soundness: every plan the optimizer produces must evaluate to
//! the *same multi-set* as the original, on arbitrary databases — including
//! plans whose evaluation errors (definedness must be preserved; see the
//! constant-folding rule's conservatism).
//!
//! Expressions are generated from flat index tuples and assembled in plain
//! code — deeply nested proptest combinators have large debug-mode stack
//! frames and overflow the 2 MiB test-thread stack.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_eval::eval;
use mera_expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use mera_opt::{reorder_joins, CatalogStats, Optimizer};
use proptest::prelude::*;

type RRows = Vec<(i64, u8, u64)>;
type SRows = Vec<(i64, i64, u64)>;

fn build_db(r_rows: RRows, s_rows: SRows) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("a", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let tags = ["x", "y", "z"];
    let r_schema = Arc::clone(db.schema().get("r").expect("declared"));
    db.replace(
        "r",
        Relation::from_counted(
            r_schema,
            r_rows
                .into_iter()
                .map(|(a, t, m)| (tuple![a, tags[(t % 3) as usize]], m)),
        )
        .expect("typed"),
    )
    .expect("replace");
    let s_schema = Arc::clone(db.schema().get("s").expect("declared"));
    db.replace(
        "s",
        Relation::from_counted(
            s_schema,
            s_rows.into_iter().map(|(k, v, m)| (tuple![k, v], m)),
        )
        .expect("typed"),
    )
    .expect("replace");
    db
}

/// Predicates over r's schema, selected by index.
fn pred_r(ix: u8, c: i64) -> ScalarExpr {
    match ix % 5 {
        0 => ScalarExpr::attr(1).eq(ScalarExpr::int(c)),
        1 => ScalarExpr::attr(2).eq(ScalarExpr::str("y")),
        2 => ScalarExpr::bool(true).and(ScalarExpr::attr(1).cmp(CmpOp::Ge, ScalarExpr::int(c))),
        3 => ScalarExpr::bool(false),
        _ => ScalarExpr::int(2)
            .add(ScalarExpr::int(2))
            .eq(ScalarExpr::attr(1)),
    }
}

/// Join predicates over `r ⊕ s`, selected by index.
fn join_pred(ix: u8) -> ScalarExpr {
    match ix % 5 {
        0 => ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        1 => ScalarExpr::attr(1)
            .eq(ScalarExpr::attr(3))
            .and(ScalarExpr::attr(2).eq(ScalarExpr::str("x"))),
        2 => ScalarExpr::attr(4)
            .cmp(CmpOp::Gt, ScalarExpr::int(3))
            .and(ScalarExpr::attr(1).eq(ScalarExpr::attr(3))),
        3 => ScalarExpr::attr(1).cmp(CmpOp::Le, ScalarExpr::attr(4)),
        _ => ScalarExpr::bool(true),
    }
}

/// Assembles an expression from flat selector indexes.
fn build_expr(shape: u8, base_ix: u8, p_ix: u8, q_ix: u8, j_ix: u8, c: i64) -> RelExpr {
    let r = RelExpr::scan("r");
    let base = match base_ix % 6 {
        0 => r,
        1 => r.select(pred_r(p_ix, c)),
        2 => r.select(pred_r(p_ix, c)).select(pred_r(q_ix, c + 1)),
        3 => r.union(RelExpr::scan("r")),
        4 => r.union(RelExpr::scan("r")).select(pred_r(p_ix, c)),
        _ => r.difference(RelExpr::scan("r")).distinct().distinct(),
    };
    match shape % 6 {
        0 => base,
        1 => base.join(RelExpr::scan("s"), join_pred(j_ix)),
        2 => base.product(RelExpr::scan("s")).select(join_pred(j_ix)),
        3 => base
            .join(RelExpr::scan("s"), join_pred(j_ix))
            .group_by(&[2], Aggregate::Cnt, 1),
        4 => base
            .join(RelExpr::scan("s"), join_pred(j_ix))
            .group_by(&[2, 4], Aggregate::Sum, 3),
        _ => base.project(&[2, 1]).distinct(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn optimized_plans_evaluate_identically(
        r_rows in proptest::collection::vec(((0i64..5), (0u8..3), (1u64..5)), 0..8),
        s_rows in proptest::collection::vec(((0i64..5), (0i64..9), (1u64..4)), 0..6),
        shape in 0u8..6,
        base_ix in 0u8..6,
        p_ix in 0u8..5,
        q_ix in 0u8..5,
        j_ix in 0u8..5,
        c in 0i64..5,
    ) {
        let db = build_db(r_rows, s_rows);
        let e = build_expr(shape, base_ix, p_ix, q_ix, j_ix, c);
        let opt = Optimizer::standard();
        let optimized = opt.optimize(&e, db.schema()).expect("optimize");
        let want = eval(&e, &db);
        let got = eval(&optimized.expr, &db);
        match (want, got) {
            (Ok(w), Ok(g)) => prop_assert_eq!(
                g, w,
                "rewrite changed semantics\noriginal:  {}\noptimized: {}",
                e, optimized.expr
            ),
            (Err(we), Err(ge)) => prop_assert_eq!(we, ge),
            (w, g) => prop_assert!(
                false,
                "definedness changed\noriginal:  {} -> {:?}\noptimized: {} -> {:?}",
                e, w, optimized.expr, g
            ),
        }
    }

    #[test]
    fn ablated_optimizers_also_sound(
        r_rows in proptest::collection::vec(((0i64..5), (0u8..3), (1u64..5)), 0..8),
        s_rows in proptest::collection::vec(((0i64..5), (0i64..9), (1u64..4)), 0..6),
        shape in 0u8..6,
        base_ix in 0u8..6,
        j_ix in 0u8..5,
        drop_rule in 0usize..9,
    ) {
        let db = build_db(r_rows, s_rows);
        let e = build_expr(shape, base_ix, 0, 1, j_ix, 2);
        let all = Optimizer::standard();
        let names = all.rule_names();
        let opt = Optimizer::standard_without(&[names[drop_rule % names.len()]]);
        let optimized = opt.optimize(&e, db.schema()).expect("optimize");
        let want = eval(&e, &db);
        let got = eval(&optimized.expr, &db);
        match (want, got) {
            (Ok(w), Ok(g)) => prop_assert_eq!(g, w),
            (Err(we), Err(ge)) => prop_assert_eq!(we, ge),
            _ => prop_assert!(false, "definedness changed under ablation"),
        }
    }

    #[test]
    fn join_reordering_preserves_semantics(
        r_rows in proptest::collection::vec(((0i64..5), (0u8..3), (1u64..5)), 0..8),
        s_rows in proptest::collection::vec(((0i64..5), (0i64..9), (1u64..4)), 0..6),
        j_ix in 0u8..5,
    ) {
        let db = build_db(r_rows, s_rows);
        // three-way chain: (r ⋈p1 s) ⋈ s with a fixed second predicate
        let e = RelExpr::scan("r")
            .join(RelExpr::scan("s"), join_pred(j_ix))
            .join(
                RelExpr::scan("s"),
                ScalarExpr::attr(3).eq(ScalarExpr::attr(5)),
            );
        let stats = CatalogStats::from_database(&db).expect("analyze");
        let reordered = reorder_joins(&e, &stats, db.schema()).expect("reorder");
        let want = eval(&e, &db).expect("three-way join evaluates");
        let got = eval(&reordered, &db).expect("reordered join evaluates");
        prop_assert_eq!(got, want, "reorder broke {} -> {}", e, reordered);
    }
}
