//! Estimator sanity: the cardinality estimator must never poison the cost
//! model. On arbitrary expressions over arbitrary databases — with real
//! statistics, synthetic statistics, or no statistics at all — every
//! estimate is finite and non-negative, and where the input carries its
//! cardinality literally (a `values` node, a bare scan with fresh
//! statistics) the estimate is exact.
//!
//! Expression shapes follow the flat-selector style of
//! `rewrite_soundness.rs` to keep proptest stack frames small.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_expr::{Aggregate, CmpOp, RelExpr, ScalarExpr};
use mera_opt::{estimate_rows, CatalogStats, TableStats};
use proptest::prelude::*;

type RRows = Vec<(i64, u8, u64)>;
type SRows = Vec<(i64, i64, u64)>;

fn build_db(r_rows: RRows, s_rows: SRows) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "r",
            Schema::named(&[("a", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh")
        .with(
            "s",
            Schema::named(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let tags = ["x", "y", "z"];
    let r_schema = Arc::clone(db.schema().get("r").expect("declared"));
    db.replace(
        "r",
        Relation::from_counted(
            r_schema,
            r_rows
                .into_iter()
                .map(|(a, t, m)| (tuple![a, tags[(t % 3) as usize]], m)),
        )
        .expect("typed"),
    )
    .expect("replace");
    let s_schema = Arc::clone(db.schema().get("s").expect("declared"));
    db.replace(
        "s",
        Relation::from_counted(
            s_schema,
            s_rows.into_iter().map(|(k, v, m)| (tuple![k, v], m)),
        )
        .expect("typed"),
    )
    .expect("replace");
    db
}

fn pred_r(ix: u8, c: i64) -> ScalarExpr {
    match ix % 5 {
        0 => ScalarExpr::attr(1).eq(ScalarExpr::int(c)),
        1 => ScalarExpr::attr(2).eq(ScalarExpr::str("y")),
        2 => ScalarExpr::attr(1).cmp(CmpOp::Ge, ScalarExpr::int(c)),
        3 => ScalarExpr::bool(false),
        _ => ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::int(c)),
    }
}

fn join_pred(ix: u8) -> ScalarExpr {
    match ix % 4 {
        0 => ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        1 => ScalarExpr::attr(1)
            .eq(ScalarExpr::attr(3))
            .and(ScalarExpr::attr(2).eq(ScalarExpr::str("x"))),
        2 => ScalarExpr::attr(1).cmp(CmpOp::Le, ScalarExpr::attr(4)),
        _ => ScalarExpr::bool(true),
    }
}

fn build_expr(shape: u8, base_ix: u8, p_ix: u8, j_ix: u8, c: i64) -> RelExpr {
    let r = RelExpr::scan("r");
    let base = match base_ix % 5 {
        0 => r,
        1 => r.select(pred_r(p_ix, c)),
        2 => r.union(RelExpr::scan("r")),
        3 => r.difference(RelExpr::scan("r")).distinct(),
        _ => r.select(pred_r(p_ix, c)).project(&[2, 1]),
    };
    match shape % 6 {
        0 => base,
        1 => base.join(RelExpr::scan("s"), join_pred(j_ix)),
        2 => base.product(RelExpr::scan("s")),
        3 => base
            .join(RelExpr::scan("s"), join_pred(j_ix))
            .group_by(&[2], Aggregate::Cnt, 1),
        4 => base.distinct(),
        _ => base.join(RelExpr::scan("s"), join_pred(j_ix)).join(
            RelExpr::scan("s"),
            ScalarExpr::attr(3).eq(ScalarExpr::attr(5)),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Estimates are always finite and non-negative — with real analyzed
    /// statistics and with an empty catalog (schema-only defaults).
    #[test]
    fn estimates_are_finite_and_non_negative(
        r_rows in proptest::collection::vec(((0i64..6), (0u8..3), (1u64..5)), 0..8),
        s_rows in proptest::collection::vec(((0i64..6), (0i64..9), (1u64..4)), 0..6),
        shape in 0u8..6,
        base_ix in 0u8..5,
        p_ix in 0u8..5,
        j_ix in 0u8..4,
        c in -2i64..8,
    ) {
        let db = build_db(r_rows, s_rows);
        let e = build_expr(shape, base_ix, p_ix, j_ix, c);
        let analyzed = CatalogStats::from_database(&db).expect("analyze");
        for stats in [&analyzed, &CatalogStats::new()] {
            let est = estimate_rows(&e, stats);
            prop_assert!(est.is_finite(), "non-finite estimate {est} for {e}");
            prop_assert!(est >= 0.0, "negative estimate {est} for {e}");
        }
    }

    /// Where the cardinality is written down literally, the estimate is
    /// exact: `values` nodes carry their own row count, and a bare scan
    /// under fresh statistics is the maintained row counter.
    #[test]
    fn literal_cardinalities_are_estimated_exactly(
        r_rows in proptest::collection::vec(((0i64..6), (0u8..3), (1u64..5)), 0..8),
        v_rows in proptest::collection::vec(((0i64..9), (1u64..4)), 0..6),
    ) {
        let db = build_db(r_rows, vec![]);
        let stats = CatalogStats::from_database(&db).expect("analyze");

        let scan = RelExpr::scan("r");
        let actual = db.relation("r").expect("present").len() as f64;
        prop_assert_eq!(estimate_rows(&scan, &stats), actual);

        let schema = Arc::new(Schema::anon(&[DataType::Int, DataType::Int]));
        let rel = Relation::from_counted(
            schema,
            v_rows.iter().map(|&(v, m)| (tuple![v, v + 1], m)),
        )
        .expect("typed");
        let expected = rel.len() as f64;
        let values = RelExpr::values(rel);
        // literal values need no statistics at all
        prop_assert_eq!(estimate_rows(&values, &stats), expected);
        prop_assert_eq!(estimate_rows(&values, &CatalogStats::new()), expected);
    }

    /// Synthetic statistics with extreme counters must not overflow the
    /// estimator into infinities or NaN.
    #[test]
    fn extreme_synthetic_statistics_stay_finite(
        rows in 0u64..u64::MAX / 4,
        distinct in 1u64..u64::MAX / 4,
        shape in 0u8..6,
        j_ix in 0u8..4,
    ) {
        let mut cs = CatalogStats::new();
        let d = distinct.min(rows.max(1));
        cs.insert("r", TableStats::synthetic(rows, d, &[d, 3]));
        cs.insert("s", TableStats::synthetic(rows / 2, d, &[d, d]));
        let e = build_expr(shape, 0, 0, j_ix, 1);
        let est = estimate_rows(&e, &cs);
        prop_assert!(est.is_finite(), "non-finite estimate {est} for {e}");
        prop_assert!(est >= 0.0);
    }
}
