//! Join-reorder differential: the cost-based plan must produce the same
//! multi-set as the canonical (unoptimized, reference-evaluated)
//! expression on every execution engine — serial, partition-parallel and
//! morsel-driven at partition counts {1, 3} — and on the physical engine
//! with index access paths and cost-model join hints attached.
//!
//! This is the end-to-end guarantee behind Theorem 3.3's reorder licence:
//! whatever order the statistics steer the planner into, and whatever
//! access path executes it, the bag that comes out is the one the paper's
//! definitions prescribe.

use std::sync::Arc;

use mera_core::prelude::*;
use mera_eval::{eval, Engine, IndexSet};
use mera_expr::{RelExpr, ScalarExpr};
use mera_opt::{choose_access_paths, CatalogStats, Optimizer};
use proptest::prelude::*;

type FactRows = Vec<(i64, i64, i64, u64)>;
type DimRows = Vec<(i64, u8, u64)>;

fn build_db(fact: FactRows, dim_a: DimRows, dim_b: DimRows) -> Database {
    let schema = DatabaseSchema::new()
        .with(
            "fact",
            Schema::named(&[
                ("ka", DataType::Int),
                ("kb", DataType::Int),
                ("m", DataType::Int),
            ]),
        )
        .expect("fresh")
        .with(
            "dim_a",
            Schema::named(&[("id", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh")
        .with(
            "dim_b",
            Schema::named(&[("id", DataType::Int), ("tag", DataType::Str)]),
        )
        .expect("fresh");
    let mut db = Database::new(schema);
    let tags = ["x", "y", "z"];
    let fact_schema = Arc::clone(db.schema().get("fact").expect("declared"));
    db.replace(
        "fact",
        Relation::from_counted(
            fact_schema,
            fact.into_iter().map(|(a, b, m, n)| (tuple![a, b, m], n)),
        )
        .expect("typed"),
    )
    .expect("replace");
    for (name, rows) in [("dim_a", dim_a), ("dim_b", dim_b)] {
        let schema = Arc::clone(db.schema().get(name).expect("declared"));
        db.replace(
            name,
            Relation::from_counted(
                schema,
                rows.into_iter()
                    .map(|(id, t, m)| (tuple![id, tags[(t % 3) as usize]], m)),
            )
            .expect("typed"),
        )
        .expect("replace");
    }
    db
}

/// The join shapes the reorderer works on: chains and stars over the
/// fact table and two dimensions, optionally restricted first.
fn build_join(shape: u8, restrict: bool, c: i64) -> RelExpr {
    let fact = if restrict {
        RelExpr::scan("fact")
            .select(ScalarExpr::attr(3).cmp(mera_expr::CmpOp::Gt, ScalarExpr::int(c)))
    } else {
        RelExpr::scan("fact")
    };
    match shape % 3 {
        // star, fact first: (fact ⋈ dim_a) ⋈ dim_b
        0 => fact
            .join(
                RelExpr::scan("dim_a"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(4)),
            )
            .join(
                RelExpr::scan("dim_b"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(6)),
            ),
        // star, dimension first: (dim_a ⋈ fact) ⋈ dim_b
        1 => RelExpr::scan("dim_a")
            .join(fact, ScalarExpr::attr(1).eq(ScalarExpr::attr(3)))
            .join(
                RelExpr::scan("dim_b"),
                ScalarExpr::attr(4).eq(ScalarExpr::attr(6)),
            ),
        // chain: dim_a ⋈ (fact ⋈ dim_b)
        _ => RelExpr::scan("dim_a").join(
            fact.join(
                RelExpr::scan("dim_b"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            ),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cost_based_plans_match_canonical_on_every_engine(
        fact in proptest::collection::vec(((0i64..5), (0i64..5), (0i64..9), (1u64..4)), 0..10),
        dim_a in proptest::collection::vec(((0i64..5), (0u8..3), (1u64..3)), 0..5),
        dim_b in proptest::collection::vec(((0i64..5), (0u8..3), (1u64..3)), 0..5),
        shape in 0u8..3,
        restrict in proptest::bool::ANY,
        c in 0i64..9,
    ) {
        let db = build_db(fact, dim_a, dim_b);
        let e = build_join(shape, restrict, c);
        let canonical = eval(&e, &db).expect("canonical evaluation");

        let stats = Arc::new(CatalogStats::from_database(&db).expect("analyze"));
        let optimized = Optimizer::standard()
            .with_stats(Arc::clone(&stats))
            .optimize(&e, db.schema())
            .expect("optimize")
            .expr;

        // indexes on both dimension keys plus the fact table's first key,
        // hinted by the same cost model the live engine consults
        let mut indexes = IndexSet::new();
        for rel in ["fact", "dim_a", "dim_b"] {
            indexes.create(&db, rel, &[1]).expect("index");
        }
        let hints = choose_access_paths(&optimized, &stats, &indexes.definitions(), db.schema())
            .expect("hints");

        let engines: Vec<(&str, Engine)> = vec![
            ("reference", Engine::reference()),
            ("physical", Engine::physical().with_batch_size(3)),
            (
                "physical+indexes",
                Engine::physical()
                    .with_batch_size(3)
                    .with_indexes(indexes)
                    .with_index_hints(hints),
            ),
            ("parallel p=1", Engine::parallel().with_partitions(1)),
            ("parallel p=3", Engine::parallel().with_partitions(3)),
            (
                "morsel p=1",
                Engine::morsel().with_partitions(1).with_batch_size(4),
            ),
            ("morsel p=3", Engine::morsel().with_partitions(3)),
        ];
        for (label, engine) in engines {
            let got = engine.run(&optimized, &db).expect("optimized evaluation");
            prop_assert_eq!(
                &got, &canonical,
                "engine `{}` diverged\ncanonical: {}\noptimized: {}",
                label, e, optimized
            );
        }
    }
}
