//! Cardinality estimation and a simple cost model.
//!
//! Standard System-R-style selectivities over the bag algebra, refined by
//! the incrementally-maintained [`CatalogStats`]: equality selections use
//! per-column distinct counts (KMV sketch estimates), range comparisons
//! interpolate against per-column min/max bounds, and heuristic point
//! estimates can be clamped into the *sound* cardinality interval computed
//! by `mera-analyze`'s range lattice ([`estimate_rows_bounded`]).
//! Estimates are heuristics — their only job is to rank alternative plans
//! (join orders, access paths, rule ablations), not to be accurate in
//! absolute terms.

use mera_analyze::{infer_props, range_of_plan, CardRange, KeyEnv, RangeEnv};
use mera_core::prelude::*;
use mera_expr::{CmpOp, RelExpr, ScalarExpr, SchemaProvider};

use crate::stats::CatalogStats;

/// Default row count assumed for relations without statistics.
const DEFAULT_ROWS: f64 = 1000.0;
/// Default selectivity of a predicate we cannot analyse.
const DEFAULT_SELECTIVITY: f64 = 0.1;
/// Selectivity of a range comparison when no column bounds are known.
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Relative cost of one index probe versus one streamed row — probes are
/// random-access into the hash index, streamed rows are sequential.
pub const INDEX_PROBE_FACTOR: f64 = 2.0;
/// Relative cost of one *built* row versus one probed row in a hash join:
/// the build side pays hashing plus table insertion/allocation per row,
/// the probe side only a lookup. The physical engine builds on the
/// **right** operand, so join costs are asymmetric and the join-order
/// search prefers plans that put the smaller input on the build side.
pub const HASH_BUILD_FACTOR: f64 = 2.0;

/// Estimated output cardinality of an expression.
pub fn estimate_rows(expr: &RelExpr, stats: &CatalogStats) -> f64 {
    match expr {
        RelExpr::Scan(name) => stats
            .get(name)
            .map(|t| t.rows as f64)
            .unwrap_or(DEFAULT_ROWS),
        RelExpr::Values(rel) => rel.len() as f64,
        RelExpr::Union(l, r) => estimate_rows(l, stats) + estimate_rows(r, stats),
        RelExpr::Difference(l, _) => estimate_rows(l, stats), // upper bound
        RelExpr::Intersect(l, r) => estimate_rows(l, stats).min(estimate_rows(r, stats)),
        RelExpr::Product(l, r) => estimate_rows(l, stats) * estimate_rows(r, stats),
        RelExpr::Select { input, predicate } => {
            estimate_rows(input, stats) * selectivity(predicate, input, stats)
        }
        RelExpr::Project { input, .. } | RelExpr::ExtProject { input, .. } => {
            estimate_rows(input, stats)
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let cross = estimate_rows(left, stats) * estimate_rows(right, stats);
            cross * join_selectivity(predicate, left, right, stats)
        }
        RelExpr::Distinct(input) => {
            // distinct keeps at most the input cardinality; assume a 2:1
            // duplication factor absent real statistics
            (estimate_rows(input, stats) / 2.0).max(1.0)
        }
        RelExpr::Closure(input) => {
            // closure of n distinct edges has between n and d² pairs where
            // d is the node count; assume modest fan-out
            let rows = estimate_rows(input, stats);
            (rows * 4.0).max(1.0)
        }
        RelExpr::GroupBy { input, keys, .. } => {
            if keys.is_empty() {
                1.0
            } else {
                // number of groups ≈ product of key distincts, capped by
                // the input size
                let rows = estimate_rows(input, stats);
                let groups = keys
                    .iter()
                    .map(|&k| column_distinct(input, k, stats))
                    .product::<f64>();
                groups.min(rows).max(1.0)
            }
        }
    }
}

/// Sound cardinality interval for a plan, derived from the stats catalog:
/// relation row counts are exact as of the catalog's logical time, so the
/// lattice's abstract transformers yield an interval the true output size
/// must fall in.
pub fn range_env_from_stats(stats: &CatalogStats) -> RangeEnv {
    let mut env = RangeEnv::new();
    for (name, t) in stats.tables() {
        env.insert(name.clone(), CardRange::exactly(t.rows));
    }
    env
}

/// [`estimate_rows`] clamped into the sound interval of `mera-analyze`'s
/// cardinality-range lattice — the heuristic point estimate can never
/// leave the provably-possible range (e.g. a selection under-estimate can
/// never go below a lower bound proved by a literal `values` operand).
pub fn estimate_rows_bounded(expr: &RelExpr, stats: &CatalogStats, env: &RangeEnv) -> f64 {
    range_of_plan(expr, env).clamp_estimate(estimate_rows(expr, stats))
}

/// [`estimate_distinct_rows`] strengthened by declared keys: when the
/// property inference proves the output duplicate-free (`key ⇒ distinct =
/// rowcount`), the distinct estimate *is* the row estimate — exact instead
/// of the sketch-based heuristic. Falls back to the plain estimator
/// otherwise.
pub fn estimate_distinct_rows_keyed<P: SchemaProvider>(
    expr: &RelExpr,
    stats: &CatalogStats,
    provider: &P,
    keys: &KeyEnv,
) -> f64 {
    if !keys.is_empty() && infer_props(expr, provider, keys).duplicate_free {
        return estimate_rows(expr, stats);
    }
    estimate_distinct_rows(expr, stats)
}

/// Estimated number of *distinct* output tuples — what a δ over the
/// expression would produce. Used to gate δ placement: pushing δ below a
/// join pays off exactly when inputs carry heavy duplication.
pub fn estimate_distinct_rows(expr: &RelExpr, stats: &CatalogStats) -> f64 {
    match expr {
        RelExpr::Scan(name) => stats
            .get(name)
            .map(|t| t.distinct_rows as f64)
            .unwrap_or(DEFAULT_ROWS / 2.0),
        RelExpr::Values(rel) => rel.distinct_len() as f64,
        RelExpr::Distinct(input) | RelExpr::GroupBy { input, .. } => {
            // already duplicate-free outputs
            estimate_rows(expr, stats).min(estimate_distinct_rows(input, stats).max(1.0))
        }
        RelExpr::Select { input, predicate } => {
            estimate_distinct_rows(input, stats) * selectivity(predicate, input, stats)
        }
        RelExpr::Product(l, r)
        | RelExpr::Join {
            left: l, right: r, ..
        } => {
            // distinct pairs multiply, capped by the (duplicated) output
            let d = estimate_distinct_rows(l, stats) * estimate_distinct_rows(r, stats);
            d.min(estimate_rows(expr, stats)).max(1.0)
        }
        _ => estimate_rows(expr, stats),
    }
    .max(1.0)
}

/// Estimated distinct count of a column of an expression's output.
fn column_distinct(expr: &RelExpr, attr: usize, stats: &CatalogStats) -> f64 {
    match expr {
        RelExpr::Scan(name) => stats
            .get(name)
            .map(|t| t.column_distinct(attr) as f64)
            .unwrap_or(DEFAULT_ROWS.sqrt()),
        RelExpr::Values(rel) => {
            // exact for literals
            let mut seen = std::collections::HashSet::new();
            for t in rel.support() {
                if let Ok(v) = t.attr(attr) {
                    seen.insert(v.clone());
                }
            }
            (seen.len() as f64).max(1.0)
        }
        RelExpr::Select { input, .. } | RelExpr::Distinct(input) => {
            column_distinct(input, attr, stats)
        }
        RelExpr::Project { input, attrs } => attrs
            .indexes()
            .get(attr.wrapping_sub(1))
            .map(|&orig| column_distinct(input, orig, stats))
            .unwrap_or(DEFAULT_ROWS.sqrt()),
        RelExpr::Product(l, r) | RelExpr::Union(l, r) => {
            // map through the left side when in range, else the right
            let la = arity_guess(l, stats);
            if attr <= la {
                column_distinct(l, attr, stats)
            } else {
                column_distinct(r, attr - la, stats)
            }
        }
        RelExpr::Join { left, right, .. } => {
            let la = arity_guess(left, stats);
            if attr <= la {
                column_distinct(left, attr, stats)
            } else {
                column_distinct(right, attr - la, stats)
            }
        }
        _ => estimate_rows(expr, stats).sqrt().max(1.0),
    }
}

/// Best-effort arity without a schema provider (estimation never fails).
fn arity_guess(expr: &RelExpr, stats: &CatalogStats) -> usize {
    match expr {
        RelExpr::Scan(name) => stats.get(name).map(|t| t.columns.len()).unwrap_or(1),
        RelExpr::Values(rel) => rel.schema().arity(),
        RelExpr::Select { input, .. } | RelExpr::Distinct(input) => arity_guess(input, stats),
        RelExpr::Project { attrs, .. } => attrs.len(),
        RelExpr::ExtProject { exprs, .. } => exprs.len(),
        RelExpr::Union(l, _) | RelExpr::Difference(l, _) | RelExpr::Intersect(l, _) => {
            arity_guess(l, stats)
        }
        RelExpr::Product(l, r) => arity_guess(l, stats) + arity_guess(r, stats),
        RelExpr::Join { left, right, .. } => arity_guess(left, stats) + arity_guess(right, stats),
        RelExpr::GroupBy { keys, .. } => keys.len() + 1,
        RelExpr::Closure(_) => 2,
    }
}

/// Selectivity of a selection predicate over its input.
fn selectivity(predicate: &ScalarExpr, input: &RelExpr, stats: &CatalogStats) -> f64 {
    predicate
        .conjuncts()
        .iter()
        .map(|c| conjunct_selectivity(c, input, stats))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

fn conjunct_selectivity(conj: &ScalarExpr, input: &RelExpr, stats: &CatalogStats) -> f64 {
    match conj {
        ScalarExpr::Literal(Value::Bool(true)) => 1.0,
        ScalarExpr::Literal(Value::Bool(false)) => 0.0,
        ScalarExpr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
            (ScalarExpr::Attr(i), ScalarExpr::Literal(_))
            | (ScalarExpr::Literal(_), ScalarExpr::Attr(i)) => {
                1.0 / column_distinct(input, *i, stats)
            }
            (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) => {
                1.0 / column_distinct(input, *i, stats).max(column_distinct(input, *j, stats))
            }
            _ => DEFAULT_SELECTIVITY,
        },
        ScalarExpr::Cmp(CmpOp::Ne, _, _) => 1.0 - DEFAULT_SELECTIVITY,
        ScalarExpr::Cmp(op, l, r) => match (l.as_ref(), r.as_ref()) {
            (ScalarExpr::Attr(i), ScalarExpr::Literal(v)) => {
                range_selectivity(input, *i, *op, v, stats)
            }
            // mirror `lit < %i` to `%i > lit` etc.
            (ScalarExpr::Literal(v), ScalarExpr::Attr(i)) => {
                range_selectivity(input, *i, mirror(*op), v, stats)
            }
            _ => RANGE_SELECTIVITY,
        },
        ScalarExpr::Not(inner) => 1.0 - conjunct_selectivity(inner, input, stats),
        ScalarExpr::Or(l, r) => {
            let a = conjunct_selectivity(l, input, stats);
            let b = conjunct_selectivity(r, input, stats);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Swaps the comparison direction (for `lit op %i` forms).
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// Numeric min/max bounds of a column of an expression's output, when the
/// underlying scan's maintained statistics know them.
fn column_bounds_f64(expr: &RelExpr, attr: usize, stats: &CatalogStats) -> Option<(f64, f64)> {
    let as_f64 = |v: &Value| match v {
        Value::Int(i) => Some(*i as f64),
        Value::Real(r) => Some(r.get()),
        _ => None,
    };
    match expr {
        RelExpr::Scan(name) => {
            let (min, max) = stats.get(name)?.column_bounds(attr)?;
            Some((as_f64(min)?, as_f64(max)?))
        }
        RelExpr::Select { input, .. } | RelExpr::Distinct(input) => {
            column_bounds_f64(input, attr, stats)
        }
        RelExpr::Project { input, attrs } => attrs
            .indexes()
            .get(attr.wrapping_sub(1))
            .and_then(|&orig| column_bounds_f64(input, orig, stats)),
        _ => None,
    }
}

/// Selectivity of `%attr op lit` — linear interpolation against the
/// column's maintained min/max when known, [`RANGE_SELECTIVITY`] otherwise.
fn range_selectivity(
    input: &RelExpr,
    attr: usize,
    op: CmpOp,
    lit: &Value,
    stats: &CatalogStats,
) -> f64 {
    let lit = match lit {
        Value::Int(i) => *i as f64,
        Value::Real(r) => r.get(),
        _ => return RANGE_SELECTIVITY,
    };
    let Some((min, max)) = column_bounds_f64(input, attr, stats) else {
        return RANGE_SELECTIVITY;
    };
    if max <= min {
        // single-valued column: the comparison is all-or-nothing
        return match op {
            CmpOp::Lt => (lit > min) as u8 as f64,
            CmpOp::Le => (lit >= min) as u8 as f64,
            CmpOp::Gt => (lit < min) as u8 as f64,
            CmpOp::Ge => (lit <= min) as u8 as f64,
            _ => RANGE_SELECTIVITY,
        };
    }
    let frac_below = ((lit - min) / (max - min)).clamp(0.0, 1.0);
    match op {
        CmpOp::Lt | CmpOp::Le => frac_below,
        CmpOp::Gt | CmpOp::Ge => 1.0 - frac_below,
        _ => RANGE_SELECTIVITY,
    }
    .clamp(0.0, 1.0)
}

/// Selectivity of a join predicate over `left ⊕ right`.
fn join_selectivity(
    predicate: &ScalarExpr,
    left: &RelExpr,
    right: &RelExpr,
    stats: &CatalogStats,
) -> f64 {
    let la = arity_guess(left, stats);
    predicate
        .conjuncts()
        .iter()
        .map(|c| {
            if let ScalarExpr::Cmp(CmpOp::Eq, a, b) = c {
                if let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) {
                    let (li, rj) = if *i <= la { (*i, *j) } else { (*j, *i) };
                    if li <= la && rj > la {
                        let dl = column_distinct(left, li, stats);
                        let dr = column_distinct(right, rj - la, stats);
                        return 1.0 / dl.max(dr);
                    }
                }
            }
            DEFAULT_SELECTIVITY
        })
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Estimated execution cost of a plan: tuples touched per operator, with
/// products paying for the full cross size and hash-joinable joins paying
/// build + probe + output.
pub fn estimate_cost(expr: &RelExpr, stats: &CatalogStats) -> f64 {
    let children_cost: f64 = expr
        .children()
        .iter()
        .map(|c| estimate_cost(c, stats))
        .sum();
    let own = match expr {
        RelExpr::Scan(_) | RelExpr::Values(_) => estimate_rows(expr, stats),
        RelExpr::Product(l, r) => estimate_rows(l, stats) * estimate_rows(r, stats),
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let lr = estimate_rows(left, stats);
            let rr = estimate_rows(right, stats);
            let la = arity_guess(left, stats);
            let ra = arity_guess(right, stats);
            let has_equi = predicate.conjuncts().iter().any(|c| {
                matches!(c, ScalarExpr::Cmp(CmpOp::Eq, a, b)
                    if matches!((a.as_ref(), b.as_ref()),
                        (ScalarExpr::Attr(i), ScalarExpr::Attr(j))
                        if (*i <= la && *j > la && *j <= la + ra)
                            || (*j <= la && *i > la && *i <= la + ra)))
            });
            if has_equi {
                // probe(left) + weighted build(right) + output
                lr + HASH_BUILD_FACTOR * rr + estimate_rows(expr, stats)
            } else {
                lr * rr
            }
        }
        _ => estimate_rows(expr, stats),
    };
    children_cost + own
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;

    fn stats() -> CatalogStats {
        let mut cs = CatalogStats::new();
        cs.insert("big", TableStats::synthetic(10_000, 10_000, &[100, 50]));
        cs.insert("small", TableStats::synthetic(10, 10, &[10]));
        cs
    }

    #[test]
    fn scan_and_values_cardinalities() {
        let cs = stats();
        assert_eq!(estimate_rows(&RelExpr::scan("big"), &cs), 10_000.0);
        assert_eq!(estimate_rows(&RelExpr::scan("unknown"), &cs), 1000.0);
    }

    #[test]
    fn equality_selection_uses_distinct() {
        let cs = stats();
        let e = RelExpr::scan("big").select(ScalarExpr::attr(1).eq(ScalarExpr::int(5)));
        // 10000 / 100 distinct = 100
        assert_eq!(estimate_rows(&e, &cs), 100.0);
    }

    #[test]
    fn range_selection_uses_third() {
        let cs = stats();
        let e = RelExpr::scan("big").select(ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::int(5)));
        assert!((estimate_rows(&e, &cs) - 10_000.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn join_cardinality_uses_key_distincts() {
        let cs = stats();
        let e = RelExpr::scan("big").join(
            RelExpr::scan("small"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        // 10000 * 10 / max(100, 10) = 1000
        assert_eq!(estimate_rows(&e, &cs), 1000.0);
    }

    #[test]
    fn product_cost_dominates_hash_join_cost() {
        let cs = stats();
        let join = RelExpr::scan("big").join(
            RelExpr::scan("small"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        let product = RelExpr::scan("big").product(RelExpr::scan("small"));
        assert!(estimate_cost(&join, &cs) < estimate_cost(&product, &cs));
    }

    #[test]
    fn selection_pushdown_lowers_cost() {
        let cs = stats();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        let outside = RelExpr::scan("big")
            .product(RelExpr::scan("small"))
            .select(pred.clone());
        let inside = RelExpr::scan("big")
            .select(pred)
            .product(RelExpr::scan("small"));
        assert!(estimate_cost(&inside, &cs) < estimate_cost(&outside, &cs));
    }

    #[test]
    fn group_by_groups_capped_by_rows() {
        let cs = stats();
        let e = RelExpr::scan("big").group_by(&[1], mera_expr::Aggregate::Cnt, 1);
        assert_eq!(estimate_rows(&e, &cs), 100.0);
        let e = RelExpr::scan("big").group_by(&[], mera_expr::Aggregate::Cnt, 1);
        assert_eq!(estimate_rows(&e, &cs), 1.0);
    }

    #[test]
    fn hash_join_cost_prefers_small_build_side() {
        // the physical engine builds on the right operand: big ⋈ small
        // (small build) must cost less than small ⋈ big (big build)
        let cs = stats();
        let small_build = RelExpr::scan("big").join(
            RelExpr::scan("small"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        let big_build = RelExpr::scan("small").join(
            RelExpr::scan("big"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(2)),
        );
        assert!(estimate_cost(&small_build, &cs) < estimate_cost(&big_build, &cs));
    }

    #[test]
    fn keyed_distinct_estimate_is_exact() {
        // `big` carries heavy duplication in the sketch (rows ≫ distinct),
        // but a declared key proves distinct = rowcount exactly
        let mut cs = CatalogStats::new();
        cs.insert("big", TableStats::synthetic(10_000, 5_000, &[100, 50]));
        let cat = DatabaseSchema::new()
            .with("big", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh");
        let e = RelExpr::scan("big");
        assert_eq!(estimate_distinct_rows(&e, &cs), 5_000.0);
        let keyed = KeyEnv::from_definitions(&[("big".to_owned(), vec![1])]);
        assert_eq!(
            estimate_distinct_rows_keyed(&e, &cs, &cat, &keyed),
            10_000.0
        );
        // without a key the fallback is the plain estimator
        let unkeyed = KeyEnv::new();
        assert_eq!(
            estimate_distinct_rows_keyed(&e, &cs, &cat, &unkeyed),
            5_000.0
        );
    }
}
