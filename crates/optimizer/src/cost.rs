//! Cardinality estimation and a simple cost model.
//!
//! Standard System-R-style selectivities over the bag algebra. Estimates
//! are heuristics — their only job is to rank alternative plans (join
//! orders, rule ablations), not to be accurate in absolute terms.

use mera_core::prelude::*;
use mera_expr::{CmpOp, RelExpr, ScalarExpr};

use crate::stats::CatalogStats;

/// Default row count assumed for relations without statistics.
const DEFAULT_ROWS: f64 = 1000.0;
/// Default selectivity of a predicate we cannot analyse.
const DEFAULT_SELECTIVITY: f64 = 0.1;
/// Selectivity of a range comparison.
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Estimated output cardinality of an expression.
pub fn estimate_rows(expr: &RelExpr, stats: &CatalogStats) -> f64 {
    match expr {
        RelExpr::Scan(name) => stats
            .get(name)
            .map(|t| t.rows as f64)
            .unwrap_or(DEFAULT_ROWS),
        RelExpr::Values(rel) => rel.len() as f64,
        RelExpr::Union(l, r) => estimate_rows(l, stats) + estimate_rows(r, stats),
        RelExpr::Difference(l, _) => estimate_rows(l, stats), // upper bound
        RelExpr::Intersect(l, r) => estimate_rows(l, stats).min(estimate_rows(r, stats)),
        RelExpr::Product(l, r) => estimate_rows(l, stats) * estimate_rows(r, stats),
        RelExpr::Select { input, predicate } => {
            estimate_rows(input, stats) * selectivity(predicate, input, stats)
        }
        RelExpr::Project { input, .. } | RelExpr::ExtProject { input, .. } => {
            estimate_rows(input, stats)
        }
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let cross = estimate_rows(left, stats) * estimate_rows(right, stats);
            cross * join_selectivity(predicate, left, right, stats)
        }
        RelExpr::Distinct(input) => {
            // distinct keeps at most the input cardinality; assume a 2:1
            // duplication factor absent real statistics
            (estimate_rows(input, stats) / 2.0).max(1.0)
        }
        RelExpr::Closure(input) => {
            // closure of n distinct edges has between n and d² pairs where
            // d is the node count; assume modest fan-out
            let rows = estimate_rows(input, stats);
            (rows * 4.0).max(1.0)
        }
        RelExpr::GroupBy { input, keys, .. } => {
            if keys.is_empty() {
                1.0
            } else {
                // number of groups ≈ product of key distincts, capped by
                // the input size
                let rows = estimate_rows(input, stats);
                let groups = keys
                    .iter()
                    .map(|&k| column_distinct(input, k, stats))
                    .product::<f64>();
                groups.min(rows).max(1.0)
            }
        }
    }
}

/// Estimated distinct count of a column of an expression's output.
fn column_distinct(expr: &RelExpr, attr: usize, stats: &CatalogStats) -> f64 {
    match expr {
        RelExpr::Scan(name) => stats
            .get(name)
            .map(|t| t.column_distinct(attr) as f64)
            .unwrap_or(DEFAULT_ROWS.sqrt()),
        RelExpr::Values(rel) => {
            // exact for literals
            let mut seen = std::collections::HashSet::new();
            for t in rel.support() {
                if let Ok(v) = t.attr(attr) {
                    seen.insert(v.clone());
                }
            }
            (seen.len() as f64).max(1.0)
        }
        RelExpr::Select { input, .. } | RelExpr::Distinct(input) => {
            column_distinct(input, attr, stats)
        }
        RelExpr::Project { input, attrs } => attrs
            .indexes()
            .get(attr.wrapping_sub(1))
            .map(|&orig| column_distinct(input, orig, stats))
            .unwrap_or(DEFAULT_ROWS.sqrt()),
        RelExpr::Product(l, r) | RelExpr::Union(l, r) => {
            // map through the left side when in range, else the right
            let la = arity_guess(l, stats);
            if attr <= la {
                column_distinct(l, attr, stats)
            } else {
                column_distinct(r, attr - la, stats)
            }
        }
        RelExpr::Join { left, right, .. } => {
            let la = arity_guess(left, stats);
            if attr <= la {
                column_distinct(left, attr, stats)
            } else {
                column_distinct(right, attr - la, stats)
            }
        }
        _ => estimate_rows(expr, stats).sqrt().max(1.0),
    }
}

/// Best-effort arity without a schema provider (estimation never fails).
fn arity_guess(expr: &RelExpr, stats: &CatalogStats) -> usize {
    match expr {
        RelExpr::Scan(name) => stats.get(name).map(|t| t.columns.len()).unwrap_or(1),
        RelExpr::Values(rel) => rel.schema().arity(),
        RelExpr::Select { input, .. } | RelExpr::Distinct(input) => arity_guess(input, stats),
        RelExpr::Project { attrs, .. } => attrs.len(),
        RelExpr::ExtProject { exprs, .. } => exprs.len(),
        RelExpr::Union(l, _) | RelExpr::Difference(l, _) | RelExpr::Intersect(l, _) => {
            arity_guess(l, stats)
        }
        RelExpr::Product(l, r) => arity_guess(l, stats) + arity_guess(r, stats),
        RelExpr::Join { left, right, .. } => arity_guess(left, stats) + arity_guess(right, stats),
        RelExpr::GroupBy { keys, .. } => keys.len() + 1,
        RelExpr::Closure(_) => 2,
    }
}

/// Selectivity of a selection predicate over its input.
fn selectivity(predicate: &ScalarExpr, input: &RelExpr, stats: &CatalogStats) -> f64 {
    predicate
        .conjuncts()
        .iter()
        .map(|c| conjunct_selectivity(c, input, stats))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

fn conjunct_selectivity(conj: &ScalarExpr, input: &RelExpr, stats: &CatalogStats) -> f64 {
    match conj {
        ScalarExpr::Literal(Value::Bool(true)) => 1.0,
        ScalarExpr::Literal(Value::Bool(false)) => 0.0,
        ScalarExpr::Cmp(CmpOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
            (ScalarExpr::Attr(i), ScalarExpr::Literal(_))
            | (ScalarExpr::Literal(_), ScalarExpr::Attr(i)) => {
                1.0 / column_distinct(input, *i, stats)
            }
            (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) => {
                1.0 / column_distinct(input, *i, stats).max(column_distinct(input, *j, stats))
            }
            _ => DEFAULT_SELECTIVITY,
        },
        ScalarExpr::Cmp(CmpOp::Ne, _, _) => 1.0 - DEFAULT_SELECTIVITY,
        ScalarExpr::Cmp(_, _, _) => RANGE_SELECTIVITY,
        ScalarExpr::Not(inner) => 1.0 - conjunct_selectivity(inner, input, stats),
        ScalarExpr::Or(l, r) => {
            let a = conjunct_selectivity(l, input, stats);
            let b = conjunct_selectivity(r, input, stats);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Selectivity of a join predicate over `left ⊕ right`.
fn join_selectivity(
    predicate: &ScalarExpr,
    left: &RelExpr,
    right: &RelExpr,
    stats: &CatalogStats,
) -> f64 {
    let la = arity_guess(left, stats);
    predicate
        .conjuncts()
        .iter()
        .map(|c| {
            if let ScalarExpr::Cmp(CmpOp::Eq, a, b) = c {
                if let (ScalarExpr::Attr(i), ScalarExpr::Attr(j)) = (a.as_ref(), b.as_ref()) {
                    let (li, rj) = if *i <= la { (*i, *j) } else { (*j, *i) };
                    if li <= la && rj > la {
                        let dl = column_distinct(left, li, stats);
                        let dr = column_distinct(right, rj - la, stats);
                        return 1.0 / dl.max(dr);
                    }
                }
            }
            DEFAULT_SELECTIVITY
        })
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Estimated execution cost of a plan: tuples touched per operator, with
/// products paying for the full cross size and hash-joinable joins paying
/// build + probe + output.
pub fn estimate_cost(expr: &RelExpr, stats: &CatalogStats) -> f64 {
    let children_cost: f64 = expr
        .children()
        .iter()
        .map(|c| estimate_cost(c, stats))
        .sum();
    let own = match expr {
        RelExpr::Scan(_) | RelExpr::Values(_) => estimate_rows(expr, stats),
        RelExpr::Product(l, r) => estimate_rows(l, stats) * estimate_rows(r, stats),
        RelExpr::Join {
            left,
            right,
            predicate,
        } => {
            let lr = estimate_rows(left, stats);
            let rr = estimate_rows(right, stats);
            let la = arity_guess(left, stats);
            let ra = arity_guess(right, stats);
            let has_equi = predicate.conjuncts().iter().any(|c| {
                matches!(c, ScalarExpr::Cmp(CmpOp::Eq, a, b)
                    if matches!((a.as_ref(), b.as_ref()),
                        (ScalarExpr::Attr(i), ScalarExpr::Attr(j))
                        if (*i <= la && *j > la && *j <= la + ra)
                            || (*j <= la && *i > la && *i <= la + ra)))
            });
            if has_equi {
                lr + rr + estimate_rows(expr, stats)
            } else {
                lr * rr
            }
        }
        _ => estimate_rows(expr, stats),
    };
    children_cost + own
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{ColumnStats, TableStats};

    fn stats() -> CatalogStats {
        let mut cs = CatalogStats::new();
        cs.insert(
            "big",
            TableStats {
                rows: 10_000,
                distinct_rows: 10_000,
                columns: vec![ColumnStats { distinct: 100 }, ColumnStats { distinct: 50 }],
            },
        );
        cs.insert(
            "small",
            TableStats {
                rows: 10,
                distinct_rows: 10,
                columns: vec![ColumnStats { distinct: 10 }],
            },
        );
        cs
    }

    #[test]
    fn scan_and_values_cardinalities() {
        let cs = stats();
        assert_eq!(estimate_rows(&RelExpr::scan("big"), &cs), 10_000.0);
        assert_eq!(estimate_rows(&RelExpr::scan("unknown"), &cs), 1000.0);
    }

    #[test]
    fn equality_selection_uses_distinct() {
        let cs = stats();
        let e = RelExpr::scan("big").select(ScalarExpr::attr(1).eq(ScalarExpr::int(5)));
        // 10000 / 100 distinct = 100
        assert_eq!(estimate_rows(&e, &cs), 100.0);
    }

    #[test]
    fn range_selection_uses_third() {
        let cs = stats();
        let e = RelExpr::scan("big").select(ScalarExpr::attr(1).cmp(CmpOp::Lt, ScalarExpr::int(5)));
        assert!((estimate_rows(&e, &cs) - 10_000.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn join_cardinality_uses_key_distincts() {
        let cs = stats();
        let e = RelExpr::scan("big").join(
            RelExpr::scan("small"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        // 10000 * 10 / max(100, 10) = 1000
        assert_eq!(estimate_rows(&e, &cs), 1000.0);
    }

    #[test]
    fn product_cost_dominates_hash_join_cost() {
        let cs = stats();
        let join = RelExpr::scan("big").join(
            RelExpr::scan("small"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
        );
        let product = RelExpr::scan("big").product(RelExpr::scan("small"));
        assert!(estimate_cost(&join, &cs) < estimate_cost(&product, &cs));
    }

    #[test]
    fn selection_pushdown_lowers_cost() {
        let cs = stats();
        let pred = ScalarExpr::attr(1).eq(ScalarExpr::int(1));
        let outside = RelExpr::scan("big")
            .product(RelExpr::scan("small"))
            .select(pred.clone());
        let inside = RelExpr::scan("big")
            .select(pred)
            .product(RelExpr::scan("small"));
        assert!(estimate_cost(&inside, &cs) < estimate_cost(&outside, &cs));
    }

    #[test]
    fn group_by_groups_capped_by_rows() {
        let cs = stats();
        let e = RelExpr::scan("big").group_by(&[1], mera_expr::Aggregate::Cnt, 1);
        assert_eq!(estimate_rows(&e, &cs), 100.0);
        let e = RelExpr::scan("big").group_by(&[], mera_expr::Aggregate::Cnt, 1);
        assert_eq!(estimate_rows(&e, &cs), 1.0);
    }
}
