//! The rewrite driver: applies rules bottom-up to a fixpoint.
//!
//! Soundness is enforced in two layers on **every** rule application:
//!
//! 1. the rule's declared [`Precondition`](crate::rules::Precondition) is
//!    discharged statically ([`mera_analyze::discharge`]) — schema
//!    preservation plus whatever obligations the rule owes;
//! 2. under [`VerifyMode::Differential`] (the default in debug builds)
//!    the original and the replacement are additionally evaluated on a
//!    few tiny randomized instances and must agree
//!    ([`mera_analyze::verify_rewrite`]).
//!
//! An application failing either layer is *refused*: the plan keeps its
//! old shape and the `E0201` diagnostic is recorded in
//! [`Optimized::refusals`], so a miswritten rule degrades performance,
//! never correctness.

use std::sync::{Arc, OnceLock};

use mera_analyze::Diagnostic;
use mera_core::prelude::*;
use mera_expr::{RelExpr, SchemaProvider};

use crate::rules::{
    ConstantFold, DistinctPruning, FuseSelections, Precondition, ProjectBeforeGroupBy,
    PushDistinctIntoJoin, PushProjectionIntoJoin, PushProjectionThroughUnion,
    PushSelectionIntoJoin, PushSelectionThroughBinary, Rule, RuleContext, SelectProductToJoin,
    SimplifyKeyedGroupBy,
};
use crate::stats::CatalogStats;

/// Hard cap on full rewrite passes; a correct rule set reaches its fixpoint
/// long before this, and the cap turns a non-terminating rule combination
/// into a visible error instead of a hang.
const MAX_PASSES: usize = 32;

/// How applied rewrites are cross-checked dynamically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Static precondition discharge only.
    Off,
    /// Precondition discharge plus differential evaluation of every
    /// application on `trials` tiny randomized instances.
    Differential {
        /// Randomized instances per application.
        trials: u32,
    },
}

impl VerifyMode {
    /// The process-wide default: differential with 2 trials in debug
    /// builds, off in release. `MERA_VERIFY_REWRITES` overrides — `0`,
    /// `off` or `false` disables, any number sets the trial count.
    pub fn from_env() -> VerifyMode {
        static MODE: OnceLock<VerifyMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("MERA_VERIFY_REWRITES") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "0" | "off" | "false" => VerifyMode::Off,
                s => VerifyMode::Differential {
                    trials: s.parse().unwrap_or(2).max(1),
                },
            },
            Err(_) => {
                if cfg!(debug_assertions) {
                    VerifyMode::Differential { trials: 2 }
                } else {
                    VerifyMode::Off
                }
            }
        })
    }
}

/// The outcome of an optimization run.
#[derive(Debug)]
pub struct Optimized {
    /// The rewritten expression.
    pub expr: RelExpr,
    /// `(rule name, application count)`, in rule order, zero-count rules
    /// omitted.
    pub applications: Vec<(String, usize)>,
    /// Number of bottom-up passes until the fixpoint.
    pub passes: usize,
    /// `E0201` diagnostics for applications the driver refused because a
    /// precondition could not be discharged or differential verification
    /// found a counterexample (deduplicated).
    pub refusals: Vec<Diagnostic>,
}

/// A rule-based optimizer over the multi-set algebra, optionally
/// cost-based when statistics are attached ([`Optimizer::with_stats`]).
pub struct Optimizer {
    rules: Vec<Box<dyn Rule>>,
    verify: VerifyMode,
    stats: Option<Arc<CatalogStats>>,
    keys: mera_analyze::KeyEnv,
}

impl Optimizer {
    /// The standard rule set, in application order:
    /// fold constants → fuse selections → push selections → recognise
    /// joins → push projections → prune distincts → prune group-by inputs.
    pub fn standard() -> Self {
        Optimizer {
            rules: vec![
                Box::new(ConstantFold),
                Box::new(FuseSelections),
                Box::new(PushSelectionThroughBinary),
                Box::new(PushSelectionIntoJoin),
                Box::new(SelectProductToJoin),
                Box::new(PushProjectionThroughUnion),
                Box::new(DistinctPruning),
                Box::new(SimplifyKeyedGroupBy),
                Box::new(ProjectBeforeGroupBy),
                Box::new(PushProjectionIntoJoin),
                Box::new(PushDistinctIntoJoin),
            ],
            verify: VerifyMode::from_env(),
            stats: None,
            keys: mera_analyze::KeyEnv::new(),
        }
    }

    /// An optimizer with an explicit rule list (used by the ablation
    /// benchmarks).
    pub fn with_rules(rules: Vec<Box<dyn Rule>>) -> Self {
        Optimizer {
            rules,
            verify: VerifyMode::from_env(),
            stats: None,
            keys: mera_analyze::KeyEnv::new(),
        }
    }

    /// Overrides the dynamic verification mode (tests; benchmarks that
    /// want rewrite cost without verification cost).
    pub fn with_verify_mode(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }

    /// Attaches maintained statistics, turning the optimizer cost-based:
    /// cost-gated rules (δ placement) see the statistics through their
    /// context, and every optimization run finishes with cost-based join
    /// reordering — admitted through the same precondition-discharge and
    /// differential-verification gate as every rule application.
    /// Accepts owned statistics or an [`Arc`] shared with the maintaining
    /// catalog (the transaction manager re-plans every statement without
    /// cloning sketches).
    pub fn with_stats(mut self, stats: impl Into<Arc<CatalogStats>>) -> Self {
        self.stats = Some(stats.into());
        self
    }

    /// The attached statistics, if any.
    pub fn stats(&self) -> Option<&CatalogStats> {
        self.stats.as_deref()
    }

    /// Attaches declared key constraints. Property-licensed rules
    /// (δ-elimination, keyed-γ simplification) may then discharge their
    /// duplicate-freeness obligations from inferred plan properties
    /// ([`mera_analyze::infer_props`]) instead of syntactic shape alone,
    /// and the admission gate uses the same key-aware discharge.
    pub fn with_keys(mut self, keys: mera_analyze::KeyEnv) -> Self {
        self.keys = keys;
        self
    }

    /// The attached key constraints (empty unless [`Optimizer::with_keys`]
    /// was called).
    pub fn keys(&self) -> &mera_analyze::KeyEnv {
        &self.keys
    }

    /// The standard rule set minus the named rules — ablation helper.
    pub fn standard_without(excluded: &[&str]) -> Self {
        let all = Self::standard();
        Optimizer {
            rules: all
                .rules
                .into_iter()
                .filter(|r| !excluded.contains(&r.name()))
                .collect(),
            verify: VerifyMode::from_env(),
            stats: None,
            keys: mera_analyze::KeyEnv::new(),
        }
    }

    /// Names of the active rules, in order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Rewrites `expr` to a fixpoint of the rule set. The input is
    /// validated first; every intermediate tree stays well-typed (each rule
    /// preserves typing), which the optimizer re-checks at the end as a
    /// safety net.
    pub fn optimize<P: SchemaProvider>(
        &self,
        expr: &RelExpr,
        provider: &P,
    ) -> CoreResult<Optimized> {
        expr.schema(provider)?; // reject ill-typed inputs up front
        let mut ctx = match &self.stats {
            Some(stats) => RuleContext::with_stats(provider, stats),
            None => RuleContext::new(provider),
        };
        if !self.keys.is_empty() {
            ctx = ctx.with_keys(&self.keys);
        }
        let mut current = expr.clone();
        let mut counts = vec![0usize; self.rules.len()];
        let mut refusals = Vec::new();
        let mut passes = 0;
        for _ in 0..MAX_PASSES {
            passes += 1;
            let (next, changed) = self.rewrite_pass(&current, &ctx, &mut counts, &mut refusals)?;
            current = next;
            if !changed {
                break;
            }
        }
        let mut applications: Vec<(String, usize)> = self
            .rules
            .iter()
            .zip(&counts)
            .filter(|(_, &c)| c > 0)
            .map(|(r, &c)| (r.name().to_owned(), c))
            .collect();
        // cost-based join reordering runs once, after the rule fixpoint has
        // normalised the tree (selections pushed, joins recognised) — and
        // through the same admission gate as any rule application
        if let Some(stats) = &self.stats {
            let reordered = crate::join_order::reorder_joins(&current, stats, provider)?;
            if reordered != current {
                let reorder_rule = CostBasedJoinOrder;
                match self.admit(&reorder_rule, &current, &reordered, &ctx) {
                    Ok(()) => {
                        current = reordered;
                        applications.push((reorder_rule.name().to_owned(), 1));
                    }
                    Err(d) => {
                        if !refusals.contains(&d) {
                            refusals.push(d);
                        }
                    }
                }
            }
        }
        current.schema(provider)?; // safety net: output must still type
        Ok(Optimized {
            expr: current,
            applications,
            passes,
            refusals,
        })
    }

    /// One bottom-up pass: children first, then this node, repeating rules
    /// at a node until none applies (a node rewrite can enable another).
    fn rewrite_pass(
        &self,
        expr: &RelExpr,
        ctx: &RuleContext<'_>,
        counts: &mut [usize],
        refusals: &mut Vec<Diagnostic>,
    ) -> CoreResult<(RelExpr, bool)> {
        let mut changed = false;
        // rewrite children
        let mut node = if expr.children().is_empty() {
            expr.clone()
        } else {
            let mut new_children = Vec::with_capacity(expr.children().len());
            for child in expr.children() {
                let (c, ch) = self.rewrite_pass(child, ctx, counts, refusals)?;
                changed |= ch;
                new_children.push(c);
            }
            if changed {
                expr.with_children(new_children)
            } else {
                expr.clone()
            }
        };
        // then apply rules at this node to a local fixpoint
        let mut local_budget = 16;
        'outer: while local_budget > 0 {
            local_budget -= 1;
            for (i, rule) in self.rules.iter().enumerate() {
                if let Some(next) = rule.apply(&node, ctx)? {
                    debug_assert_ne!(
                        next,
                        node,
                        "rule {} returned an identical tree",
                        rule.name()
                    );
                    if let Err(d) = self.admit(rule.as_ref(), &node, &next, ctx) {
                        // a refused application keeps the old plan shape;
                        // the same refusal recurs on later passes, so dedup
                        if !refusals.contains(&d) {
                            refusals.push(d);
                        }
                        continue; // try the remaining rules at this node
                    }
                    node = next;
                    counts[i] += 1;
                    changed = true;
                    continue 'outer;
                }
            }
            break;
        }
        Ok((node, changed))
    }

    /// The two-layer soundness gate for one application.
    fn admit(
        &self,
        rule: &dyn Rule,
        before: &RelExpr,
        after: &RelExpr,
        ctx: &RuleContext<'_>,
    ) -> Result<(), Diagnostic> {
        let provider = ctx.as_provider();
        mera_analyze::discharge_with(
            rule.name(),
            &rule.precondition(),
            before,
            after,
            &provider,
            &self.keys,
        )?;
        if let VerifyMode::Differential { trials } = self.verify {
            // key-licensed rewrites are claimed sound only on databases
            // satisfying the declared keys, so the generated instances must
            // satisfy them too
            mera_analyze::verify_rewrite_with(
                rule.name(),
                before,
                after,
                &provider,
                trials,
                verify_seed(rule.name(), before),
                &self.keys,
            )?;
        }
        Ok(())
    }
}

/// Marker rule carrying the soundness argument for cost-based join
/// reordering, so the reorder passes through the same [`Optimizer::admit`]
/// gate (precondition discharge → `E0201` refusal; differential
/// verification under `MERA_VERIFY_REWRITES`) as every local rule. The
/// rewrite itself lives in [`crate::join_order::reorder_joins`]; `apply`
/// is never called.
struct CostBasedJoinOrder;

impl Rule for CostBasedJoinOrder {
    fn name(&self) -> &'static str {
        "cost-based-join-order"
    }

    fn precondition(&self) -> Precondition {
        Precondition::schema_preserving(
            "⋈ and × are commutative and associative in the multi-set algebra \
             (Theorems 3.2 and 3.3), so any permutation of a join chain is \
             sound; the wrapping projection restoring the original attribute \
             order is a bijective tuple map, preserving multiplicities",
        )
    }

    fn apply(&self, _expr: &RelExpr, _ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
        Ok(None) // the driver invokes reorder_joins directly
    }
}

/// A deterministic per-application seed (FNV-1a of the rule name and the
/// rewritten node's size), so failures reproduce exactly.
fn verify_seed(rule_name: &str, before: &RelExpr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rule_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    (h ^ before.node_count() as u64).wrapping_mul(0x100_0000_01b3)
}

impl Default for Optimizer {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mera_expr::{Aggregate, ScalarExpr};

    fn catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with(
                "beer",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("brewery", DataType::Str),
                    ("alcperc", DataType::Real),
                ]),
            )
            .expect("fresh")
            .with(
                "brewery",
                Schema::named(&[
                    ("name", DataType::Str),
                    ("city", DataType::Str),
                    ("country", DataType::Str),
                ]),
            )
            .expect("fresh")
    }

    #[test]
    fn example_3_1_plan_normalises() {
        // the textbook form: π(σ(beer × brewery)) — the optimizer should
        // recognise the join and split the single-side conjunct
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .select(
                ScalarExpr::attr(2)
                    .eq(ScalarExpr::attr(4))
                    .and(ScalarExpr::attr(6).eq(ScalarExpr::str("NL"))),
            )
            .project(&[1]);
        let opt = Optimizer::standard();
        let out = opt.optimize(&e, &cat).expect("optimizes");
        // expected shape: the join recognised, the single-side conjunct
        // pushed into the brewery side, and both join inputs narrowed to
        // the attributes the projection and predicate need
        let want = RelExpr::scan("beer")
            .project(&[1, 2])
            .join(
                RelExpr::scan("brewery")
                    .select(ScalarExpr::attr(3).eq(ScalarExpr::str("NL")))
                    .project(&[1]),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(3)),
            )
            .project(&[1]);
        assert_eq!(out.expr, want, "got {}", out.expr);
        assert!(out.passes <= 5);
        assert!(!out.applications.is_empty());
    }

    #[test]
    fn example_3_2_projection_inserted_automatically() {
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .join(
                RelExpr::scan("brewery"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            )
            .group_by(&[6], Aggregate::Avg, 3);
        let opt = Optimizer::standard();
        let out = opt.optimize(&e, &cat).expect("optimizes");
        assert!(
            out.applications
                .iter()
                .any(|(n, _)| n == "project-before-group-by"),
            "applications: {:?}",
            out.applications
        );
        // resulting group-by must read a 2-wide input
        if let RelExpr::GroupBy { input, .. } = &out.expr {
            assert_eq!(input.schema(&cat).expect("types").arity(), 2);
        } else {
            panic!("expected group-by at root, got {}", out.expr);
        }
    }

    #[test]
    fn fixpoint_reached_and_idempotent() {
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .select(ScalarExpr::bool(true))
            .select(ScalarExpr::attr(3).eq(ScalarExpr::real(5.0)))
            .distinct()
            .distinct();
        let opt = Optimizer::standard();
        let once = opt.optimize(&e, &cat).expect("optimizes");
        let twice = opt.optimize(&once.expr, &cat).expect("optimizes");
        assert_eq!(once.expr, twice.expr);
        assert!(twice.applications.is_empty());
    }

    #[test]
    fn ablation_excludes_rules() {
        let opt = Optimizer::standard_without(&["project-before-group-by"]);
        assert!(!opt.rule_names().contains(&"project-before-group-by"));
        let cat = catalog();
        let e = RelExpr::scan("beer").group_by(&[2], Aggregate::Avg, 3);
        let out = opt.optimize(&e, &cat).expect("optimizes");
        assert_eq!(out.expr, e); // nothing else applies
    }

    #[test]
    fn optimizer_rejects_ill_typed_input() {
        let cat = catalog();
        let bad = RelExpr::scan("beer").union(RelExpr::scan("brewery"));
        assert!(Optimizer::standard().optimize(&bad, &cat).is_err());
    }

    #[test]
    fn standard_rules_never_refused() {
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .product(RelExpr::scan("brewery"))
            .select(
                ScalarExpr::attr(2)
                    .eq(ScalarExpr::attr(4))
                    .and(ScalarExpr::attr(6).eq(ScalarExpr::str("NL"))),
            )
            .project(&[1])
            .distinct()
            .distinct();
        let out = Optimizer::standard()
            .with_verify_mode(VerifyMode::Differential { trials: 3 })
            .optimize(&e, &cat)
            .expect("optimizes");
        assert!(out.refusals.is_empty(), "refusals: {:?}", out.refusals);
        assert!(!out.applications.is_empty());
    }

    fn chain_catalog() -> DatabaseSchema {
        DatabaseSchema::new()
            .with("a", Schema::anon(&[DataType::Int, DataType::Int]))
            .expect("fresh")
            .with("b", Schema::anon(&[DataType::Int]))
            .expect("fresh")
            .with("c", Schema::anon(&[DataType::Int]))
            .expect("fresh")
    }

    #[test]
    fn with_stats_reorders_join_chains_through_admission() {
        let cat = chain_catalog();
        let mut cs = crate::stats::CatalogStats::new();
        cs.insert(
            "a",
            crate::stats::TableStats::synthetic(10_000, 10_000, &[1000, 1000]),
        );
        cs.insert("b", crate::stats::TableStats::synthetic(10, 10, &[10]));
        cs.insert("c", crate::stats::TableStats::synthetic(100, 100, &[100]));
        // written in a poor order: the big×medium cross product first,
        // with the selective join to tiny `b` left for last
        let e = RelExpr::scan("a").product(RelExpr::scan("c")).join(
            RelExpr::scan("b"),
            ScalarExpr::attr(1).eq(ScalarExpr::attr(4)),
        );
        let out = Optimizer::standard()
            .with_stats(cs)
            .with_verify_mode(VerifyMode::Differential { trials: 3 })
            .optimize(&e, &cat)
            .expect("optimizes");
        assert!(out.refusals.is_empty(), "refusals: {:?}", out.refusals);
        assert!(
            out.applications
                .iter()
                .any(|(n, _)| n == "cost-based-join-order"),
            "applications: {:?}",
            out.applications
        );
        // the reordered plan must still produce the original schema
        let s_in = e.schema(&cat).expect("types");
        let s_out = out.expr.schema(&cat).expect("types");
        assert!(s_in.same_types(&s_out));
    }

    #[test]
    fn stats_free_optimizer_never_reorders() {
        let cat = chain_catalog();
        let e = RelExpr::scan("a")
            .join(
                RelExpr::scan("b"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .join(
                RelExpr::scan("c"),
                ScalarExpr::attr(2).eq(ScalarExpr::attr(4)),
            );
        let out = Optimizer::standard().optimize(&e, &cat).expect("optimizes");
        assert!(out
            .applications
            .iter()
            .all(|(n, _)| n != "cost-based-join-order"));
    }

    #[test]
    fn distinct_push_gated_on_estimated_duplication() {
        let cat = chain_catalog();
        let e = RelExpr::scan("a")
            .join(
                RelExpr::scan("b"),
                ScalarExpr::attr(1).eq(ScalarExpr::attr(3)),
            )
            .distinct();

        // heavy duplication: 10 copies per distinct row on `a` → push fires
        let mut dup = crate::stats::CatalogStats::new();
        dup.insert(
            "a",
            crate::stats::TableStats::synthetic(1000, 100, &[100, 100]),
        );
        dup.insert("b", crate::stats::TableStats::synthetic(10, 10, &[10]));
        let out = Optimizer::standard()
            .with_stats(dup)
            .with_verify_mode(VerifyMode::Differential { trials: 3 })
            .optimize(&e, &cat)
            .expect("optimizes");
        assert!(out.refusals.is_empty(), "refusals: {:?}", out.refusals);
        assert!(
            out.applications
                .iter()
                .any(|(n, _)| n == "push-distinct-into-join"),
            "applications: {:?}",
            out.applications
        );

        // duplicate-free inputs: the push would only add work → declined
        let mut flat = crate::stats::CatalogStats::new();
        flat.insert(
            "a",
            crate::stats::TableStats::synthetic(1000, 1000, &[100, 100]),
        );
        flat.insert("b", crate::stats::TableStats::synthetic(10, 10, &[10]));
        let out = Optimizer::standard()
            .with_stats(flat)
            .optimize(&e, &cat)
            .expect("optimizes");
        assert!(out
            .applications
            .iter()
            .all(|(n, _)| n != "push-distinct-into-join"));
    }

    /// The canonical misrewrite of Theorem 3.3: `δ(E₁ ⊎ E₂) → δE₁ ⊎ δE₂`.
    /// Honestly declares the disjointness obligation it cannot discharge.
    struct UnsoundDeltaOverUnion;

    impl Rule for UnsoundDeltaOverUnion {
        fn name(&self) -> &'static str {
            "unsound-delta-over-union"
        }

        fn precondition(&self) -> crate::rules::Precondition {
            crate::rules::Precondition::schema_preserving(
                "δ distributes over ⊎ only for disjoint operands (Theorem 3.3)",
            )
            .with(crate::rules::Condition::DisjointUnionOperands)
        }

        fn apply(&self, expr: &RelExpr, _ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
            let RelExpr::Distinct(input) = expr else {
                return Ok(None);
            };
            let RelExpr::Union(l, r) = input.as_ref() else {
                return Ok(None);
            };
            Ok(Some(
                l.as_ref()
                    .clone()
                    .distinct()
                    .union(r.as_ref().clone().distinct()),
            ))
        }
    }

    /// The same misrewrite, but *lying* about its obligations (baseline
    /// schema preservation only) — static discharge passes, so only the
    /// differential layer can catch it.
    struct LyingDeltaOverUnion;

    impl Rule for LyingDeltaOverUnion {
        fn name(&self) -> &'static str {
            "lying-delta-over-union"
        }

        fn apply(&self, expr: &RelExpr, ctx: &RuleContext<'_>) -> CoreResult<Option<RelExpr>> {
            UnsoundDeltaOverUnion.apply(expr, ctx)
        }
    }

    #[test]
    fn unsound_rule_refused_by_precondition_discharge() {
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .union(RelExpr::scan("beer"))
            .distinct();
        let out = Optimizer::with_rules(vec![Box::new(UnsoundDeltaOverUnion)])
            .with_verify_mode(VerifyMode::Off)
            .optimize(&e, &cat)
            .expect("optimizes (by refusing)");
        assert_eq!(out.expr, e, "the unsound rewrite must not be applied");
        assert!(out.applications.is_empty());
        assert_eq!(out.refusals.len(), 1);
        let d = &out.refusals[0];
        assert_eq!(d.code, mera_analyze::Code::UnsoundRewrite);
        assert_eq!(d.code.as_str(), "E0201");
        assert!(
            d.message.contains("unsound-delta-over-union"),
            "{}",
            d.message
        );
    }

    #[test]
    fn unsound_rule_with_dishonest_precondition_caught_differentially() {
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .union(RelExpr::scan("beer"))
            .distinct();
        let out = Optimizer::with_rules(vec![Box::new(LyingDeltaOverUnion)])
            .with_verify_mode(VerifyMode::Differential { trials: 8 })
            .optimize(&e, &cat)
            .expect("optimizes (by refusing)");
        assert_eq!(out.expr, e);
        assert_eq!(out.refusals.len(), 1);
        assert_eq!(out.refusals[0].code, mera_analyze::Code::UnsoundRewrite);
        assert!(
            out.refusals[0].message.contains("differential"),
            "{}",
            out.refusals[0].message
        );
        // ...and with verification off, the lying rule slips through —
        // exactly the gap the debug-mode verifier closes
        let out = Optimizer::with_rules(vec![Box::new(LyingDeltaOverUnion)])
            .with_verify_mode(VerifyMode::Off)
            .optimize(&e, &cat)
            .expect("optimizes");
        assert_ne!(out.expr, e);
        assert!(out.refusals.is_empty());
    }

    #[test]
    fn disjoint_operands_discharge_the_unsound_rule() {
        // δ(beer ⊎ σ_false(beer)): the right operand is provably empty, so
        // the operands are disjoint and the distribution is actually sound
        let cat = catalog();
        let e = RelExpr::scan("beer")
            .union(RelExpr::scan("beer").select(ScalarExpr::bool(false)))
            .distinct();
        let out = Optimizer::with_rules(vec![Box::new(UnsoundDeltaOverUnion)])
            .with_verify_mode(VerifyMode::Differential { trials: 4 })
            .optimize(&e, &cat)
            .expect("optimizes");
        assert!(out.refusals.is_empty(), "refusals: {:?}", out.refusals);
        assert_eq!(
            out.applications,
            vec![("unsound-delta-over-union".to_owned(), 1)]
        );
    }

    #[test]
    fn with_keys_licenses_delta_elimination_end_to_end() {
        // δ(σ_p(beer)) with beer keyed on name: the full pipeline —
        // property inference, key-aware precondition discharge, AND
        // key-respecting differential verification — must agree to drop δ
        let cat = catalog();
        let mut keys = mera_analyze::KeyEnv::new();
        keys.declare("beer", vec![1]);
        let inner = RelExpr::scan("beer").select(ScalarExpr::attr(3).eq(ScalarExpr::attr(3)));
        let e = inner.clone().distinct();
        let out = Optimizer::standard()
            .with_keys(keys)
            .with_verify_mode(VerifyMode::Differential { trials: 8 })
            .optimize(&e, &cat)
            .expect("optimizes");
        assert!(out.refusals.is_empty(), "refusals: {:?}", out.refusals);
        assert_eq!(out.expr, inner, "got {}", out.expr);
        // the same plan without keys keeps its δ (and records no refusal:
        // the rule declines rather than misapplies)
        let out = Optimizer::standard()
            .with_verify_mode(VerifyMode::Differential { trials: 8 })
            .optimize(&e, &cat)
            .expect("optimizes");
        assert_eq!(out.expr, e);
    }

    #[test]
    fn with_keys_simplifies_keyed_group_by_end_to_end() {
        // γ_{name; cnt}(beer) with beer keyed on name → π̂_{name, 1}(beer)
        let cat = catalog();
        let mut keys = mera_analyze::KeyEnv::new();
        keys.declare("beer", vec![1]);
        let e = RelExpr::scan("beer").group_by(&[1], Aggregate::Cnt, 2);
        let out = Optimizer::standard()
            .with_keys(keys)
            .with_verify_mode(VerifyMode::Differential { trials: 8 })
            .optimize(&e, &cat)
            .expect("optimizes");
        assert!(out.refusals.is_empty(), "refusals: {:?}", out.refusals);
        let want = RelExpr::scan("beer").ext_project(vec![ScalarExpr::attr(1), ScalarExpr::int(1)]);
        assert_eq!(out.expr, want, "got {}", out.expr);
        assert!(out
            .applications
            .iter()
            .any(|(n, _)| n == "simplify-keyed-group-by"));
    }
}
